//! E2 (Example 2): location-tracking write reduction vs movement rate.
//! Paper expectation: DB rows = location changes, not readings.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslev_bench::e2_tracking;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_tracking");
    for move_prob in [0.01f64, 0.1, 0.5] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("move{move_prob}")),
            &move_prob,
            |b, &p| b.iter(|| e2_tracking(p)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
