//! E7: sliding windows on the SEQ operator — match counts and history
//! growth vs window size. Paper expectation: UNRESTRICTED grows with the
//! window, RECENT stays flat.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslev_bench::{e6_feed, e7_window};

fn bench(c: &mut Criterion) {
    let feed = e6_feed(40);
    let mut g = c.benchmark_group("e7_seq_window");
    for window_secs in [30u64, 120, 600] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{window_secs}s")),
            &window_secs,
            |b, &w| b.iter(|| e7_window(w, &feed)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
