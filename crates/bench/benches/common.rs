//! Shared Criterion configuration: experiments are deterministic, so a
//! small sample budget keeps the full suite fast while still reporting
//! stable medians.

use criterion::Criterion;

pub fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}
