//! E6 (§3.1.1 worked example + Example 6): per-mode detection cost over
//! the same interleaved QC feed. Paper expectation: UNRESTRICTED ≫
//! RECENT ≈ CHRONICLE ≥ CONSECUTIVE in both events and history.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eslev_bench::{e6_feed, e6_mode};
use eslev_core::prelude::PairingMode;

fn bench(c: &mut Criterion) {
    let feed = e6_feed(40);
    let mut g = c.benchmark_group("e6_modes");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for mode in PairingMode::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(mode.keyword()),
            &mode,
            |b, &m| b.iter(|| e6_mode(m, &feed)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
