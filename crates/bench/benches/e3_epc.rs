//! E3 (Example 3): EPC-pattern aggregation — verbatim LIKE+UDF query vs
//! the compiled epc_match pattern, plus the raw matcher microbenchmarks.
//! Paper expectation: identical counts; compiled ≥ LIKE+UDF throughput.

mod common;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eslev_bench::e3_setup;
use eslev_rfid::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_epc");
    let n = 5_000;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("like_plus_udf_query", |b| {
        b.iter_batched(
            || e3_setup(n, 0.3),
            |(mut engine, readings, _, like, _)| {
                for r in &readings {
                    engine.push("readings", r.to_values()).unwrap();
                }
                like.take().len()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    // Microbenchmarks of the two matching strategies on raw strings.
    let pattern: EpcPattern = "20.*.[5000-9999]".parse().unwrap();
    let epcs: Vec<String> = (0..n)
        .map(|i| format!("{}.{}.{}", 15 + i % 10, i % 100, 4000 + i % 8000))
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("compiled_pattern_matcher", |b| {
        b.iter(|| epcs.iter().filter(|e| pattern.matches_str(e)).count());
    });
    g.bench_function("parse_per_call_matcher", |b| {
        b.iter(|| {
            epcs.iter()
                .filter(|e| {
                    "20.*.[5000-9999]"
                        .parse::<EpcPattern>()
                        .unwrap()
                        .matches_str(e)
                })
                .count()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
