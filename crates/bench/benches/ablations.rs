//! Ablation benches for the design choices DESIGN.md calls out:
//! A1 — lifting equality conjuncts into partition keys vs residual
//! filtering; A2 — the planner's specialized Dedup operator vs the
//! generic windowed NOT EXISTS plan for Example 1.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eslev_bench::{a1_partitioning, a2_dedup_generic, a2_dedup_specialized, a2_workload, e9_feed};

fn bench(c: &mut Criterion) {
    let feed = e9_feed(60);
    let mut g = c.benchmark_group("a1_partitioning");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for partitioned in [true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if partitioned {
                "partitioned"
            } else {
                "residual"
            }),
            &partitioned,
            |b, &p| b.iter(|| a1_partitioning(&feed, p)),
        );
    }
    g.finish();

    let w = a2_workload(2_000);
    let mut g = c.benchmark_group("a2_dedup_plans");
    g.throughput(Throughput::Elements(w.len() as u64));
    g.bench_function("specialized_dedup", |b| b.iter(|| a2_dedup_specialized(&w)));
    g.bench_function("generic_window_exists", |b| b.iter(|| a2_dedup_generic(&w)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
