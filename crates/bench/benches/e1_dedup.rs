//! E1 (Example 1): duplicate-elimination throughput vs duplicate rate.
//! Paper expectation: output ≈ physical presences; cost ~linear in input.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eslev_bench::e1_setup;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_dedup");
    for dup_prob in [0.1f64, 0.5, 0.9] {
        let (_, readings) = e1_setup(dup_prob, 2_000);
        g.throughput(Throughput::Elements(readings.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("dup{dup_prob}")),
            &dup_prob,
            |b, &p| {
                b.iter_batched(
                    || e1_setup(p, 2_000),
                    |(mut engine, readings)| {
                        for r in &readings {
                            engine.push("readings", r.to_values()).unwrap();
                        }
                        engine.stream_pushed("cleaned_readings").unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
