//! E8 (Example 8): PRECEDING AND FOLLOWING theft detection. Paper
//! expectation: exact alerts; latency fixed at the FOLLOWING half (τ).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslev_bench::e8_door;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_door");
    for theft in [0.01f64, 0.1, 0.5] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("theft{theft}")),
            &theft,
            |b, &t| b.iter(|| e8_door(t, 300)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
