//! E5 (Example 5 / §3.1.3): EXCEPTION_SEQ detection over the clinic
//! workflow. Paper expectation: every violation detected exactly once,
//! timeouts via active expiration.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslev_bench::e5_clinic;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_exceptions");
    for runs in [100usize, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(runs), &runs, |b, &n| {
            b.iter(|| e5_clinic(n))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
