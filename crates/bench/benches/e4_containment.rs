//! E4 (Figure 1 / Examples 4 & 7): containment detection throughput vs
//! products-per-case, and accuracy across the gap-tightness sweep.
//! Paper expectation: exact detection while gaps respect t0/t1.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslev_bench::e4_containment;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_containment");
    for (label, tight, overlap) in [
        ("loose_gaps", 0.3f64, false),
        ("near_threshold", 0.95, false),
        ("overlapping_cases", 0.6, true),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(tight, overlap),
            |b, &(t, o)| b.iter(|| e4_containment(t, o, 100)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
