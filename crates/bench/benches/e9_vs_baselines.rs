//! E9: ESL-EV vs the standalone event engine (RCEDA) and the naive
//! k-way join on the same QC feed. Paper expectation: the DSMS-native
//! operators sustain higher throughput with bounded memory.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eslev_bench::{e9_eslev_chronicle, e9_eslev_recent, e9_feed, e9_naive_join, e9_rceda};

fn bench(c: &mut Criterion) {
    let feed = e9_feed(60);
    let mut g = c.benchmark_group("e9_vs_baselines");
    g.throughput(Throughput::Elements(feed.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("eslev_recent"), &(), |b, _| {
        b.iter(|| e9_eslev_recent(&feed))
    });
    g.bench_with_input(
        BenchmarkId::from_parameter("eslev_chronicle"),
        &(),
        |b, _| b.iter(|| e9_eslev_chronicle(&feed)),
    );
    g.bench_with_input(BenchmarkId::from_parameter("rceda_graph"), &(), |b, _| {
        b.iter(|| e9_rceda(&feed))
    });
    g.bench_with_input(BenchmarkId::from_parameter("naive_join"), &(), |b, _| {
        b.iter(|| e9_naive_join(&feed))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
