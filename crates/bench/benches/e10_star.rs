//! E10 (§3.1.2): star-sequence semantics — longest match per run and
//! online trailing-star emission, across run lengths.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eslev_bench::e10_star;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_star");
    for run_len in [2usize, 10, 50] {
        let runs = 500 / run_len;
        g.throughput(Throughput::Elements((run_len * runs + runs) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("runlen{run_len}")),
            &run_len,
            |b, &l| b.iter(|| e10_star(l, 500 / l)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench
}
criterion_main!(benches);
