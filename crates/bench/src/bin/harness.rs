//! The experiment harness: runs every experiment (E1–E10) and prints the
//! tables recorded in EXPERIMENTS.md, including wall-clock throughput
//! measured inline (best-of-N; use `cargo bench` for the rigorous
//! Criterion numbers).
//!
//! Run with: `cargo run --release -p eslev-bench --bin harness`

use eslev_bench::table::TextTable;
use eslev_bench::*;
use eslev_core::prelude::PairingMode;
use std::time::Instant;

fn timed<T>(f: impl Fn() -> T, reps: usize) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("reps >= 1"), best)
}

fn main() {
    println!("# ESL-EV experiment harness\n");

    // ------------------------------------------------------------- E1
    println!("## E1 — duplicate elimination (Example 1)\n");
    let mut t = TextTable::new(&[
        "dup_prob", "raw", "cleaned", "truth", "cleaned_err", "kreads/s",
    ]);
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let (row, secs) = timed(|| e1_dedup(p, 5_000), 3);
        t.row(vec![
            format!("{p:.1}"),
            row.raw.to_string(),
            row.cleaned.to_string(),
            row.truth.to_string(),
            format!("{:.4}", (row.cleaned as f64 - row.truth as f64).abs() / row.truth as f64),
            format!("{:.0}", row.raw as f64 / secs / 1e3),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E2
    println!("## E2 — location tracking (Example 2)\n");
    let mut t = TextTable::new(&["move_prob", "readings", "persisted", "truth", "write_reduction"]);
    for p in [0.01, 0.05, 0.1, 0.25, 0.5] {
        let r = e2_tracking(p);
        t.row(vec![
            format!("{p:.2}"),
            r.readings.to_string(),
            r.persisted.to_string(),
            r.truth.to_string(),
            format!("{:.1}x", r.reduction),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E3
    println!("## E3 — EPC pattern aggregation (Example 3)\n");
    let mut t = TextTable::new(&[
        "readings", "match_frac", "truth", "LIKE+UDF", "compiled", "kreads/s",
    ]);
    for frac in [0.1, 0.3, 0.7] {
        let (row, secs) = timed(|| e3_epc(10_000, frac), 3);
        t.row(vec![
            row.readings.to_string(),
            format!("{frac:.1}"),
            row.truth.to_string(),
            row.like_udf.to_string(),
            row.compiled.to_string(),
            format!("{:.0}", row.readings as f64 / secs / 1e3),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E4
    println!("## E4 — containment detection (Figure 1, Examples 4/7)\n");
    let mut t = TextTable::new(&[
        "gap_tightness", "overlap", "cases", "detected", "exact", "accuracy",
    ]);
    for (tight, overlap) in [(0.3, false), (0.6, false), (0.95, false), (0.6, true), (0.95, true)] {
        let r = e4_containment(tight, overlap, 200);
        t.row(vec![
            format!("{tight:.2}"),
            overlap.to_string(),
            r.cases.to_string(),
            r.detected.to_string(),
            r.exact.to_string(),
            format!("{:.3}", r.exact as f64 / r.cases as f64),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E5
    println!("## E5 — workflow exceptions (Example 5, §3.1.3)\n");
    let mut t = TextTable::new(&[
        "runs",
        "violations",
        "alerts",
        "timeouts",
        "expiry_alerts",
        "expiry_without_heartbeat",
    ]);
    for runs in [100, 300, 1000] {
        let r = e5_clinic(runs);
        t.row(vec![
            r.runs.to_string(),
            r.violations.to_string(),
            r.alerts.to_string(),
            r.timeouts.to_string(),
            r.expiry_alerts.to_string(),
            r.expiry_alerts_without_expiration.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E6
    println!("## E6 — tuple pairing modes (§3.1.1 worked example + Example 6)\n");
    let feed = e6_feed(40);
    let mut t = TextTable::new(&[
        "mode",
        "worked_example_events",
        "scaled_events",
        "peak_retained",
        "kelem/s",
    ]);
    for mode in PairingMode::ALL {
        let (row, secs) = timed(|| e6_mode(mode, &feed), 3);
        t.row(vec![
            mode.keyword().to_string(),
            row.worked_example.to_string(),
            row.scaled_matches.to_string(),
            row.peak_retained.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E7
    println!("## E7 — windows on SEQ (§3.1.1)\n");
    let mut t = TextTable::new(&[
        "window",
        "unrestricted_matches",
        "recent_matches",
        "unrestricted_retained",
        "recent_retained",
    ]);
    for w in [30, 60, 120, 300, 600] {
        let r = e7_window(w, &feed);
        t.row(vec![
            format!("{w}s"),
            r.unrestricted_matches.to_string(),
            r.recent_matches.to_string(),
            r.unrestricted_retained.to_string(),
            r.recent_retained.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E8
    println!("## E8 — door security (Example 8, §3.2)\n");
    let mut t = TextTable::new(&[
        "theft_frac", "exits", "thefts", "alerts", "true_pos", "latency_s",
    ]);
    for frac in [0.01, 0.05, 0.1, 0.3] {
        let r = e8_door(frac, 500);
        t.row(vec![
            format!("{frac:.2}"),
            r.exits.to_string(),
            r.thefts.to_string(),
            r.alerts.to_string(),
            r.true_positives.to_string(),
            format!("{:.1}", r.mean_latency_secs),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------- E9
    println!("## E9 — ESL-EV vs standalone engines (§1 claim)\n");
    let mut t = TextTable::new(&["system", "events", "retained", "enumerated", "kelem/s"]);
    let feed = e9_feed(60);
    let runners: Vec<Box<dyn Fn() -> E9Row>> = vec![
        Box::new({
            let f = feed.clone();
            move || e9_eslev_recent(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_eslev_chronicle(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_rceda(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_naive_join(&f)
        }),
    ];
    for run in &runners {
        let (row, secs) = timed(run, 3);
        t.row(vec![
            row.system.to_string(),
            row.events.to_string(),
            row.retained.to_string(),
            row.enumerated.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------------ E10
    println!("## E10 — star-sequence semantics (§3.1.2)\n");
    let mut t = TextTable::new(&[
        "run_len", "runs", "matches", "longest_match_exact", "trailing_online_emissions",
    ]);
    for len in [1usize, 5, 20, 100] {
        let r = e10_star(len, 1000 / len.max(1));
        t.row(vec![
            r.run_len.to_string(),
            r.runs.to_string(),
            r.matches.to_string(),
            r.groups_exact.to_string(),
            r.trailing_emissions.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    // ------------------------------------------------------ ablations
    println!("## A1 — equality lifting: partition key vs residual filter\n");
    let feed = e9_feed(60);
    let mut t = TextTable::new(&["arm", "events", "retained", "kelem/s"]);
    for partitioned in [true, false] {
        let (row, secs) = timed(|| a1_partitioning(&feed, partitioned), 3);
        t.row(vec![
            if partitioned { "partition key" } else { "residual filter" }.to_string(),
            row.events.to_string(),
            row.retained.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
    }
    println!("{}", t.to_markdown());

    println!("## A2 — Example 1 plans: specialized Dedup vs generic NOT EXISTS\n");
    let w = a2_workload(5_000);
    let mut t = TextTable::new(&["plan", "cleaned", "peak_retained", "kreads/s"]);
    let (fast, fast_s) = timed(|| a2_dedup_specialized(&w), 3);
    t.row(vec![
        fast.plan.to_string(),
        fast.cleaned.to_string(),
        fast.peak_retained.to_string(),
        format!("{:.0}", w.len() as f64 / fast_s / 1e3),
    ]);
    let (slow, slow_s) = timed(|| a2_dedup_generic(&w), 3);
    t.row(vec![
        slow.plan.to_string(),
        slow.cleaned.to_string(),
        slow.peak_retained.to_string(),
        format!("{:.0}", w.len() as f64 / slow_s / 1e3),
    ]);
    println!("{}", t.to_markdown());

    println!("(Wall-clock columns are best-of-3 inline timings; run `cargo bench` for Criterion medians.)");
}
