//! The experiment harness: runs every experiment (E1–E10) and prints the
//! tables recorded in EXPERIMENTS.md, including wall-clock throughput
//! measured inline (best-of-N; use `cargo bench` for the rigorous
//! Criterion numbers).
//!
//! Run with: `cargo run --release -p eslev-bench --bin harness`
//!
//! With `--json <path>` the harness additionally writes every table as a
//! machine-readable JSON document — per-row fields plus best-of-N wall
//! seconds, the engine's full metrics snapshot for a representative E1
//! run, and the detector match/prune counters for E6/E10. If `<path>` is
//! a directory the file is named `BENCH_<yyyy-mm-dd>.json` inside it.
//!
//! The R1 representation sweep always runs: E1/E6/E10 replayed through
//! a single engine under both row representations (interned symbols +
//! compact state keys vs. the seed `Vec<Value>` layout), recording
//! feed-phase throughput, end-of-feed state-key bytes, and interner
//! dictionary size.
//!
//! With `--shards <n>` the harness additionally replays E1/E6/E10
//! through the EPC-partitioned `ShardedEngine` at shard counts
//! 1, 2, 4, … up to `n` (the scaling curve), recording merged-output
//! cardinality, per-shard routing balance, and — at the widest
//! configuration — the full `shard`-labeled metrics snapshot.
//!
//! With `--faults <seed>` (or `--faults seed=<n>`) the harness runs the
//! F1 crash-recovery sweep: E1/E6/E10 through the sharded engine under
//! the seeded fault plan (worker panics, a malformed row, a stale
//! watermark, a mid-feed checkpoint), differentially checked against the
//! uninterrupted single-engine reference. The JSON export carries the
//! recovery counters (`restarts`, `replayed_tuples`, `checkpoints`) and
//! the rendered fault schedule; a divergent recovery fails the run.
//!
//! With `--latency` the harness runs the L1 ingest→emit latency sweep:
//! E1/E6/E10 through the single engine and the sharded engine at
//! 1/2/4/8 workers, batch sizes 1 and 64, reporting the sampled
//! p50/p90/p99 tuple latency (1 in 64 admitted tuples is stamped).
//! With `--trace <path>` it additionally writes a chrome://tracing JSON
//! dump of a flight-recorded E1 run.
//!
//! With `--columnar` the harness runs the C1 columnar sweep — E1/E6/E10
//! replayed down the row path and the SoA columnar batch path at batch
//! sizes 1 and 64, reporting feed-phase tuples/sec and (via the
//! counting-allocator hook) allocations per tuple — and adds a columnar
//! arm to the B1 and R1 tables. `--help` prints the full flag list.
//!
//! The JSON export carries a `build` header (git revision, rustc
//! version, sweep configuration) so numbers are comparable across PRs.

use eslev_bench::table::TextTable;
use eslev_bench::*;
use eslev_core::prelude::PairingMode;
use eslev_dsms::prelude::Representation;
use std::fmt::Write as _;
use std::time::Instant;

// Counting-allocator hook for the C1 allocs/tuple column: pass-through
// (one relaxed load per allocation) except inside a
// `count_alloc::measure` window.
#[global_allocator]
static ALLOCATOR: eslev_bench::count_alloc::CountingAlloc = eslev_bench::count_alloc::CountingAlloc;

fn timed<T>(f: impl Fn() -> T, reps: usize) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("reps >= 1"), best)
}

// ------------------------------------------------------- JSON plumbing

/// Minimal JSON object from pre-rendered values (no external deps; the
/// same approach as `MetricsSnapshot::to_json` in eslev-dsms).
fn obj(fields: &[(&str, String)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{k}\":{v}");
    }
    s.push('}');
    s
}

fn jstr(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn arr(items: Vec<String>) -> String {
    format!("[{}]", items.join(","))
}

/// Today's UTC civil date from the system clock (no date crate in the
/// tree; this is the standard days-to-civil conversion).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

struct Args {
    json_path: Option<std::path::PathBuf>,
    shards: Option<usize>,
    batches: Vec<usize>,
    fault_seed: Option<u64>,
    /// Run the L1 ingest→emit latency sweep.
    latency: bool,
    /// Run the M1 multi-query shared-execution sweep up to this many
    /// registered queries.
    multi: Option<usize>,
    /// Dump a chrome://tracing JSON of a traced E1 run to this path.
    trace_path: Option<std::path::PathBuf>,
    /// Run the O1 out-of-order sweep with this (seed, delay bound in
    /// seconds).
    disorder: Option<(u64, u64)>,
    /// Run the C1 columnar sweep and add the columnar arm to B1/R1.
    columnar: bool,
}

/// The full usage screen — printed verbatim by `--help` (exit 0) and
/// pointed at by every flag error (the single `bad` exit path).
const USAGE: &str = "\
usage: harness [FLAGS]

Runs every experiment (E1-E10) plus the always-on sweeps (B1 batched
ingestion, R1 row representation) and prints the tables recorded in
EXPERIMENTS.md. Optional flags add sweeps or exports:

  --json <path>       write every table as machine-readable JSON; if
                      <path> is a directory the file is named
                      BENCH_<yyyy-mm-dd>.json inside it
  --shards <n>        S1 shard-scaling sweep: replay E1/E6/E10 through
                      the EPC-partitioned ShardedEngine at 1,2,4,..,n
                      workers
  --batch <n,n,...>   batch sizes for the B1 ingestion sweep
                      (default 1,8,64,512; size 1 is always included
                      as the baseline)
  --faults <seed>     F1 crash-recovery sweep under the seeded fault
                      plan (also accepts `seed=<n>`), differentially
                      checked against an uninterrupted reference
  --latency           L1 ingest->emit latency sweep (single engine and
                      1/2/4/8 shards, batch 1 and 64, sampled
                      p50/p90/p99)
  --multi <n>         M1 multi-query shared-execution sweep up to n
                      registered queries
  --trace <path>      write a chrome://tracing JSON dump of a
                      flight-recorded E1 run to <path>
  --disorder <seed>[,<delay_secs>]
                      O1 out-of-order sweep: perturb feeds by up to
                      <delay_secs> (default 2) and replay through the
                      reorder buffer
  --columnar          C1 columnar sweep: E1/E6/E10 row vs columnar at
                      batch 1 and 64 (tuples/sec and allocs/tuple),
                      plus a columnar arm in the B1 and R1 tables
  --help              print this screen and exit
";

/// The one exit path for a bad invocation: message, pointer to
/// `--help`, exit 2.
fn bad(msg: &str) -> ! {
    eprintln!("{msg}\nrun `harness --help` for the full flag list");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut json_path = None;
    let mut shards = None;
    let mut fault_seed = None;
    let mut latency = false;
    let mut trace_path = None;
    let mut multi = None;
    let mut disorder = None;
    let mut columnar = false;
    // The B1 ingestion sweep always includes size 1 as the baseline.
    let mut batches = vec![1, 8, 64, 512];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--json" => match args.next() {
                Some(p) => json_path = Some(std::path::PathBuf::from(p)),
                None => bad("--json requires a path"),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => bad("--shards needs a positive integer"),
            },
            "--batch" => {
                let parsed = args.next().map(|v| {
                    v.split(',')
                        .map(|s| s.trim().parse::<usize>().ok().filter(|n| *n > 0))
                        .collect::<Option<Vec<usize>>>()
                });
                match parsed {
                    Some(Some(mut sizes)) if !sizes.is_empty() => {
                        if !sizes.contains(&1) {
                            sizes.insert(0, 1);
                        }
                        batches = sizes;
                    }
                    _ => bad("--batch needs a comma-separated list of positive sizes"),
                }
            }
            "--faults" => {
                // Accepts `--faults 42` or `--faults seed=42`.
                let parsed = args
                    .next()
                    .map(|v| v.strip_prefix("seed=").unwrap_or(&v).parse::<u64>().ok());
                match parsed {
                    Some(Some(seed)) => fault_seed = Some(seed),
                    _ => bad("--faults needs a seed (e.g. `--faults 42` or `--faults seed=42`)"),
                }
            }
            "--latency" => latency = true,
            "--multi" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => multi = Some(n),
                _ => bad("--multi needs a positive query count"),
            },
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(std::path::PathBuf::from(p)),
                None => bad("--trace requires a path"),
            },
            "--disorder" => {
                // Accepts `--disorder 42` (2s delay bound) or
                // `--disorder 42,4` (4s delay bound).
                let parsed = args.next().map(|v| {
                    let mut it = v.split(',');
                    let seed = it.next().and_then(|s| s.trim().parse::<u64>().ok());
                    let delay = match it.next() {
                        None => Some(2u64),
                        Some(s) => s.trim().parse::<u64>().ok().filter(|d| *d > 0),
                    };
                    seed.zip(delay).filter(|_| it.next().is_none())
                });
                match parsed {
                    Some(Some(pair)) => disorder = Some(pair),
                    _ => bad(
                        "--disorder needs `<seed>` or `<seed>,<delay_secs>` (e.g. `--disorder 42,2`)",
                    ),
                }
            }
            "--columnar" => columnar = true,
            other => bad(&format!("unknown argument: {other}")),
        }
    }
    Args {
        json_path,
        shards,
        batches,
        fault_seed,
        latency,
        trace_path,
        multi,
        disorder,
        columnar,
    }
}

/// Build metadata for the JSON header: the short git revision and the
/// rustc version, each "unknown" when the tool is unavailable (e.g. a
/// source tarball without `.git`).
fn build_metadata() -> (String, String) {
    let run = |cmd: &str, args: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd).args(args).output().ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    let git_rev = run("git", &["rev-parse", "--short", "HEAD"])
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let rustc = run(
        &std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string()),
        &["--version"],
    )
    .filter(|s| !s.is_empty())
    .unwrap_or_else(|| "unknown".to_string());
    (git_rev, rustc)
}

fn main() {
    let args = parse_args();
    let (json_path, shards_flag, batch_sizes, fault_seed) =
        (args.json_path, args.shards, args.batches, args.fault_seed);
    // (experiment key, JSON value) — filled as each table is printed.
    let mut sections: Vec<(&str, String)> = Vec::new();

    println!("# ESL-EV experiment harness\n");

    // ------------------------------------------------------------- E1
    println!("## E1 — duplicate elimination (Example 1)\n");
    let mut t = TextTable::new(&[
        "dup_prob",
        "raw",
        "cleaned",
        "truth",
        "cleaned_err",
        "kreads/s",
    ]);
    let mut rows = Vec::new();
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let (row, secs) = timed(|| e1_dedup(p, 5_000), 3);
        t.row(vec![
            format!("{p:.1}"),
            row.raw.to_string(),
            row.cleaned.to_string(),
            row.truth.to_string(),
            format!(
                "{:.4}",
                (row.cleaned as f64 - row.truth as f64).abs() / row.truth as f64
            ),
            format!("{:.0}", row.raw as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("dup_prob", jf(p)),
            ("raw", row.raw.to_string()),
            ("cleaned", row.cleaned.to_string()),
            ("truth", row.truth.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    // One representative instrumented run: the engine's own metrics
    // snapshot (per-stream, per-query and per-stage counters +
    // latency histograms) embedded verbatim.
    let (mut engine, readings) = e1_setup(0.5, 5_000);
    for r in &readings {
        engine.push("readings", r.to_values()).expect("feed");
    }
    sections.push((
        "E1",
        obj(&[
            ("rows", arr(rows)),
            ("metrics", engine.metrics_snapshot().to_json()),
        ]),
    ));

    // ------------------------------------------------------------- B1
    println!("## B1 — batched ingestion sweep (E1 feed via push_batch)\n");
    let mut headers = vec!["batch", "raw", "cleaned", "kreads/s", "vs_batch_1"];
    if args.columnar {
        headers.extend(["col_kreads/s", "col_vs_row"]);
    }
    let mut t = TextTable::new(&headers);
    let mut rows = Vec::new();
    let mut baseline_kps = None;
    // Interleave reps across batch sizes (rather than finishing one
    // size before starting the next) so transient machine noise hits
    // every size equally; report best-of-7 feed-phase time per size.
    let mut best: Vec<Option<(eslev_bench::experiments::E1Row, f64)>> =
        vec![None; batch_sizes.len()];
    let mut best_col: Vec<Option<(eslev_bench::experiments::E1Row, f64)>> =
        vec![None; batch_sizes.len()];
    for _ in 0..7 {
        for (i, &b) in batch_sizes.iter().enumerate() {
            let cur = e1_dedup_batched(0.5, 20_000, b);
            if best[i].as_ref().is_none_or(|prev| cur.1 < prev.1) {
                best[i] = Some(cur);
            }
            if args.columnar {
                let cur = e1_dedup_batched_on(0.5, 20_000, b, true);
                if best_col[i].as_ref().is_none_or(|prev| cur.1 < prev.1) {
                    best_col[i] = Some(cur);
                }
            }
        }
    }
    let mut columnar_batch64_multiple = None;
    for (i, &b) in batch_sizes.iter().enumerate() {
        let (row, secs) = best[i].clone().expect("seven reps");
        let kps = row.raw as f64 / secs / 1e3;
        let base = *baseline_kps.get_or_insert(kps);
        let mut cells = vec![
            b.to_string(),
            row.raw.to_string(),
            row.cleaned.to_string(),
            format!("{kps:.0}"),
            format!("{:.2}x", kps / base),
        ];
        let mut fields = vec![
            ("batch", b.to_string()),
            ("raw", row.raw.to_string()),
            ("cleaned", row.cleaned.to_string()),
            ("kreads_per_sec", jf(kps)),
            ("speedup_vs_batch_1", jf(kps / base)),
        ];
        if args.columnar {
            let (crow, csecs) = best_col[i].clone().expect("seven reps");
            // The columnar arm must stay a pure execution strategy.
            assert_eq!(
                crow.cleaned, row.cleaned,
                "columnar B1 arm diverged from the row output"
            );
            let ckps = crow.raw as f64 / csecs / 1e3;
            let multiple = ckps / kps;
            if b == 64 {
                columnar_batch64_multiple = Some(multiple);
            }
            cells.push(format!("{ckps:.0}"));
            cells.push(format!("{multiple:.2}x"));
            fields.push(("columnar_kreads_per_sec", jf(ckps)));
            fields.push(("columnar_vs_row", jf(multiple)));
        }
        t.row(cells);
        rows.push(obj(&fields));
    }
    println!("{}", t.to_markdown());
    if let Some(m) = columnar_batch64_multiple {
        println!("columnar vs row at batch 64: {m:.2}x the row feed rate\n");
    }
    let mut b1_fields = vec![("rows", arr(rows))];
    if let Some(m) = columnar_batch64_multiple {
        b1_fields.push(("columnar_vs_row_batch64", jf(m)));
    }
    sections.push(("B1", obj(&b1_fields)));

    // ------------------------------------------------------------- E2
    println!("## E2 — location tracking (Example 2)\n");
    let mut t = TextTable::new(&[
        "move_prob",
        "readings",
        "persisted",
        "truth",
        "write_reduction",
    ]);
    let mut rows = Vec::new();
    for p in [0.01, 0.05, 0.1, 0.25, 0.5] {
        let r = e2_tracking(p);
        t.row(vec![
            format!("{p:.2}"),
            r.readings.to_string(),
            r.persisted.to_string(),
            r.truth.to_string(),
            format!("{:.1}x", r.reduction),
        ]);
        rows.push(obj(&[
            ("move_prob", jf(p)),
            ("readings", r.readings.to_string()),
            ("persisted", r.persisted.to_string()),
            ("truth", r.truth.to_string()),
            ("write_reduction", jf(r.reduction)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E2", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E3
    println!("## E3 — EPC pattern aggregation (Example 3)\n");
    let mut t = TextTable::new(&[
        "readings",
        "match_frac",
        "truth",
        "LIKE+UDF",
        "compiled",
        "kreads/s",
    ]);
    let mut rows = Vec::new();
    for frac in [0.1, 0.3, 0.7] {
        let (row, secs) = timed(|| e3_epc(10_000, frac), 3);
        t.row(vec![
            row.readings.to_string(),
            format!("{frac:.1}"),
            row.truth.to_string(),
            row.like_udf.to_string(),
            row.compiled.to_string(),
            format!("{:.0}", row.readings as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("readings", row.readings.to_string()),
            ("match_frac", jf(frac)),
            ("truth", row.truth.to_string()),
            ("like_udf", row.like_udf.to_string()),
            ("compiled", row.compiled.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E3", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E4
    println!("## E4 — containment detection (Figure 1, Examples 4/7)\n");
    let mut t = TextTable::new(&[
        "gap_tightness",
        "overlap",
        "cases",
        "detected",
        "exact",
        "accuracy",
    ]);
    let mut rows = Vec::new();
    for (tight, overlap) in [
        (0.3, false),
        (0.6, false),
        (0.95, false),
        (0.6, true),
        (0.95, true),
    ] {
        let r = e4_containment(tight, overlap, 200);
        t.row(vec![
            format!("{tight:.2}"),
            overlap.to_string(),
            r.cases.to_string(),
            r.detected.to_string(),
            r.exact.to_string(),
            format!("{:.3}", r.exact as f64 / r.cases as f64),
        ]);
        rows.push(obj(&[
            ("gap_tightness", jf(tight)),
            ("overlap", overlap.to_string()),
            ("cases", r.cases.to_string()),
            ("detected", r.detected.to_string()),
            ("exact", r.exact.to_string()),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E4", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E5
    println!("## E5 — workflow exceptions (Example 5, §3.1.3)\n");
    let mut t = TextTable::new(&[
        "runs",
        "violations",
        "alerts",
        "timeouts",
        "expiry_alerts",
        "expiry_without_heartbeat",
    ]);
    let mut rows = Vec::new();
    for runs in [100, 300, 1000] {
        let r = e5_clinic(runs);
        t.row(vec![
            r.runs.to_string(),
            r.violations.to_string(),
            r.alerts.to_string(),
            r.timeouts.to_string(),
            r.expiry_alerts.to_string(),
            r.expiry_alerts_without_expiration.to_string(),
        ]);
        rows.push(obj(&[
            ("runs", r.runs.to_string()),
            ("violations", r.violations.to_string()),
            ("alerts", r.alerts.to_string()),
            ("timeouts", r.timeouts.to_string()),
            ("expiry_alerts", r.expiry_alerts.to_string()),
            (
                "expiry_without_heartbeat",
                r.expiry_alerts_without_expiration.to_string(),
            ),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E5", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E6
    println!("## E6 — tuple pairing modes (§3.1.1 worked example + Example 6)\n");
    let feed = e6_feed(40);
    let mut t = TextTable::new(&[
        "mode",
        "worked_example_events",
        "scaled_events",
        "peak_retained",
        "prunes",
        "kelem/s",
    ]);
    let mut rows = Vec::new();
    for mode in PairingMode::ALL {
        let (row, secs) = timed(|| e6_mode(mode, &feed), 3);
        t.row(vec![
            mode.keyword().to_string(),
            row.worked_example.to_string(),
            row.scaled_matches.to_string(),
            row.peak_retained.to_string(),
            row.prunes.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("mode", jstr(mode.keyword())),
            ("worked_example_events", row.worked_example.to_string()),
            ("scaled_events", row.scaled_matches.to_string()),
            ("peak_retained", row.peak_retained.to_string()),
            ("matches_emitted", row.matches_emitted.to_string()),
            ("prunes", row.prunes.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E6", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E7
    println!("## E7 — windows on SEQ (§3.1.1)\n");
    let mut t = TextTable::new(&[
        "window",
        "unrestricted_matches",
        "recent_matches",
        "unrestricted_retained",
        "recent_retained",
    ]);
    let mut rows = Vec::new();
    for w in [30, 60, 120, 300, 600] {
        let r = e7_window(w, &feed);
        t.row(vec![
            format!("{w}s"),
            r.unrestricted_matches.to_string(),
            r.recent_matches.to_string(),
            r.unrestricted_retained.to_string(),
            r.recent_retained.to_string(),
        ]);
        rows.push(obj(&[
            ("window_secs", w.to_string()),
            ("unrestricted_matches", r.unrestricted_matches.to_string()),
            ("recent_matches", r.recent_matches.to_string()),
            ("unrestricted_retained", r.unrestricted_retained.to_string()),
            ("recent_retained", r.recent_retained.to_string()),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E7", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E8
    println!("## E8 — door security (Example 8, §3.2)\n");
    let mut t = TextTable::new(&[
        "theft_frac",
        "exits",
        "thefts",
        "alerts",
        "true_pos",
        "latency_s",
    ]);
    let mut rows = Vec::new();
    for frac in [0.01, 0.05, 0.1, 0.3] {
        let r = e8_door(frac, 500);
        t.row(vec![
            format!("{frac:.2}"),
            r.exits.to_string(),
            r.thefts.to_string(),
            r.alerts.to_string(),
            r.true_positives.to_string(),
            format!("{:.1}", r.mean_latency_secs),
        ]);
        rows.push(obj(&[
            ("theft_frac", jf(frac)),
            ("exits", r.exits.to_string()),
            ("thefts", r.thefts.to_string()),
            ("alerts", r.alerts.to_string()),
            ("true_positives", r.true_positives.to_string()),
            ("mean_latency_secs", jf(r.mean_latency_secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E8", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------- E9
    println!("## E9 — ESL-EV vs standalone engines (§1 claim)\n");
    let mut t = TextTable::new(&["system", "events", "retained", "enumerated", "kelem/s"]);
    let feed = e9_feed(60);
    let runners: Vec<Box<dyn Fn() -> E9Row>> = vec![
        Box::new({
            let f = feed.clone();
            move || e9_eslev_recent(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_eslev_chronicle(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_rceda(&f)
        }),
        Box::new({
            let f = feed.clone();
            move || e9_naive_join(&f)
        }),
    ];
    let mut rows = Vec::new();
    for run in &runners {
        let (row, secs) = timed(run, 3);
        t.row(vec![
            row.system.to_string(),
            row.events.to_string(),
            row.retained.to_string(),
            row.enumerated.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("system", jstr(row.system)),
            ("events", row.events.to_string()),
            ("retained", row.retained.to_string()),
            ("enumerated", row.enumerated.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E9", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------------ E10
    println!("## E10 — star-sequence semantics (§3.1.2)\n");
    let mut t = TextTable::new(&[
        "run_len",
        "runs",
        "matches",
        "longest_match_exact",
        "trailing_online_emissions",
        "trailing_prunes",
    ]);
    let mut rows = Vec::new();
    for len in [1usize, 5, 20, 100] {
        let r = e10_star(len, 1000 / len.max(1));
        t.row(vec![
            r.run_len.to_string(),
            r.runs.to_string(),
            r.matches.to_string(),
            r.groups_exact.to_string(),
            r.trailing_emissions.to_string(),
            r.trailing_prunes.to_string(),
        ]);
        rows.push(obj(&[
            ("run_len", r.run_len.to_string()),
            ("runs", r.runs.to_string()),
            ("matches", r.matches.to_string()),
            ("longest_match_exact", r.groups_exact.to_string()),
            (
                "trailing_online_emissions",
                r.trailing_emissions.to_string(),
            ),
            ("matches_emitted", r.matches_emitted.to_string()),
            ("trailing_prunes", r.trailing_prunes.to_string()),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("E10", obj(&[("rows", arr(rows))])));

    // ------------------------------------------------------ ablations
    println!("## A1 — equality lifting: partition key vs residual filter\n");
    let feed = e9_feed(60);
    let mut t = TextTable::new(&["arm", "events", "retained", "kelem/s"]);
    let mut rows = Vec::new();
    for partitioned in [true, false] {
        let (row, secs) = timed(|| a1_partitioning(&feed, partitioned), 3);
        let arm = if partitioned {
            "partition key"
        } else {
            "residual filter"
        };
        t.row(vec![
            arm.to_string(),
            row.events.to_string(),
            row.retained.to_string(),
            format!("{:.1}", feed.len() as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("arm", jstr(arm)),
            ("events", row.events.to_string()),
            ("retained", row.retained.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("A1", obj(&[("rows", arr(rows))])));

    println!("## A2 — Example 1 plans: specialized Dedup vs generic NOT EXISTS\n");
    let w = a2_workload(5_000);
    let mut t = TextTable::new(&["plan", "cleaned", "peak_retained", "kreads/s"]);
    let mut rows = Vec::new();
    for (r, secs) in [
        timed(|| a2_dedup_specialized(&w), 3),
        timed(|| a2_dedup_generic(&w), 3),
    ] {
        t.row(vec![
            r.plan.to_string(),
            r.cleaned.to_string(),
            r.peak_retained.to_string(),
            format!("{:.0}", w.len() as f64 / secs / 1e3),
        ]);
        rows.push(obj(&[
            ("plan", jstr(r.plan)),
            ("cleaned", r.cleaned.to_string()),
            ("peak_retained", r.peak_retained.to_string()),
            ("best_secs", jf(secs)),
        ]));
    }
    println!("{}", t.to_markdown());
    sections.push(("A2", obj(&[("rows", arr(rows))])));

    // -------------------------------------------- representation sweep
    {
        println!("## R1 — row representation: interned symbols vs seed Vec<Value>\n");
        let workloads = [
            shard_workload_e1(4_000),
            shard_workload_e6(60),
            shard_workload_e10(16, 12, 4),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "representation",
            "rows_in",
            "rows_out",
            "kreads/s",
            "state_key_bytes",
            "interner_entries",
            "interner_bytes",
        ]);
        let mut rows = Vec::new();
        {
            let mut add = |row: eslev_bench::experiments::ReprSweepRow, secs: f64| {
                t.row(vec![
                    row.experiment.to_string(),
                    row.representation.to_string(),
                    row.rows_in.to_string(),
                    row.rows_out.to_string(),
                    format!("{:.0}", row.rows_in as f64 / secs / 1e3),
                    row.state_key_bytes.to_string(),
                    row.interner_entries.to_string(),
                    row.interner_bytes.to_string(),
                ]);
                rows.push(obj(&[
                    ("experiment", jstr(row.experiment)),
                    ("representation", jstr(row.representation)),
                    ("rows_in", row.rows_in.to_string()),
                    ("rows_out", row.rows_out.to_string()),
                    ("best_secs", jf(secs)),
                    ("feed_secs", jf(row.feed_secs)),
                    ("state_key_bytes", row.state_key_bytes.to_string()),
                    ("interner_entries", row.interner_entries.to_string()),
                    ("interner_bytes", row.interner_bytes.to_string()),
                ]));
            };
            for w in &workloads {
                for rep in [Representation::Seed, Representation::Interned] {
                    let (row, secs) = timed(|| run_repr_sweep(w, rep), 3);
                    add(row, secs);
                }
                if args.columnar {
                    // Third arm: interned + columnar dispatch, fed
                    // identically (row-at-a-time), so the delta against
                    // plain interned is pure dispatch cost at batch 1.
                    let (row, secs) = timed(|| run_repr_sweep_columnar(w), 3);
                    add(row, secs);
                }
            }
        }
        println!("{}", t.to_markdown());
        sections.push(("R1", obj(&[("rows", arr(rows))])));
    }

    // ----------------------------------------------------- columnar C1
    if args.columnar {
        println!("## C1 — columnar (SoA) batch path: row vs columnar\n");
        let workloads = [
            shard_workload_e1(4_000),
            shard_workload_e6(60),
            shard_workload_e10(16, 12, 4),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "path",
            "batch",
            "rows_in",
            "rows_out",
            "ktuples/s",
            "allocs/tuple",
        ]);
        let mut rows = Vec::new();
        for w in &workloads {
            for batch in [1usize, 64] {
                let mut row_out = None;
                for columnar in [false, true] {
                    // Best-of-3 on the feed-phase clock (setup, planning
                    // and chunk materialization excluded by the runner).
                    let mut best: Option<eslev_bench::experiments::ColumnarSweepRow> = None;
                    for _ in 0..3 {
                        let row = run_columnar_sweep(w, batch, columnar);
                        if best.as_ref().is_none_or(|p| row.feed_secs < p.feed_secs) {
                            best = Some(row);
                        }
                    }
                    let row = best.expect("three reps");
                    match row_out {
                        None => row_out = Some(row.rows_out),
                        Some(expect) => assert_eq!(
                            row.rows_out, expect,
                            "C1 columnar arm diverged from the row output"
                        ),
                    }
                    let kps = row.rows_in as f64 / row.feed_secs / 1e3;
                    t.row(vec![
                        row.experiment.to_string(),
                        row.path.to_string(),
                        batch.to_string(),
                        row.rows_in.to_string(),
                        row.rows_out.to_string(),
                        format!("{kps:.0}"),
                        row.allocs_per_tuple
                            .map_or("n/a".to_string(), |a| format!("{a:.2}")),
                    ]);
                    rows.push(obj(&[
                        ("experiment", jstr(row.experiment)),
                        ("path", jstr(row.path)),
                        ("batch", batch.to_string()),
                        ("rows_in", row.rows_in.to_string()),
                        ("rows_out", row.rows_out.to_string()),
                        ("feed_secs", jf(row.feed_secs)),
                        ("tuples_per_sec", jf(row.rows_in as f64 / row.feed_secs)),
                        (
                            "allocs_per_tuple",
                            row.allocs_per_tuple.map_or("null".to_string(), jf),
                        ),
                    ]));
                }
            }
        }
        println!("{}", t.to_markdown());
        sections.push(("C1", obj(&[("rows", arr(rows))])));
    }

    // --------------------------------------------------- shard scaling
    if let Some(max_shards) = shards_flag {
        println!("## S1 — shard scaling (--shards {max_shards})\n");
        let mut counts: Vec<usize> = Vec::new();
        let mut c = 1;
        while c < max_shards {
            counts.push(c);
            c *= 2;
        }
        counts.push(max_shards);
        let workloads = [
            shard_workload_e1(4_000),
            shard_workload_e6(60),
            shard_workload_e10(16, 12, 4),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "shards",
            "rows_in",
            "rows_out",
            "kreads/s",
            "per_shard_routed",
        ]);
        let mut rows = Vec::new();
        let mut shard_metrics: Vec<(String, String)> = Vec::new();
        for w in &workloads {
            for &n in &counts {
                let ((row, metrics), secs) = timed(|| run_shard_scale(w, n), 3);
                t.row(vec![
                    row.experiment.to_string(),
                    n.to_string(),
                    row.rows_in.to_string(),
                    row.rows_out.to_string(),
                    format!("{:.0}", row.rows_in as f64 / secs / 1e3),
                    format!("{:?}", row.per_shard_routed),
                ]);
                rows.push(obj(&[
                    ("experiment", jstr(row.experiment)),
                    ("shards", n.to_string()),
                    ("rows_in", row.rows_in.to_string()),
                    ("rows_out", row.rows_out.to_string()),
                    ("best_secs", jf(secs)),
                    (
                        "per_shard_routed",
                        arr(row.per_shard_routed.iter().map(|r| r.to_string()).collect()),
                    ),
                ]));
                // Full per-shard metrics for the widest configuration —
                // the `shard`-labeled router + engine counters.
                if n == max_shards {
                    shard_metrics.push((format!("{}_metrics", row.experiment), metrics.to_json()));
                }
            }
        }
        println!("{}", t.to_markdown());
        let mut fields = vec![("rows", arr(rows))];
        for (k, v) in &shard_metrics {
            fields.push((k.as_str(), v.clone()));
        }
        sections.push(("S1", obj(&fields)));
    }

    // ----------------------------------------------------- fault sweep
    if let Some(seed) = fault_seed {
        println!("## F1 — crash-recovery fault sweep (--faults {seed})\n");
        let workloads = [
            shard_workload_e1(600),
            shard_workload_e6(60),
            shard_workload_e10(8, 6, 3),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "shards",
            "rows_in",
            "rows_out",
            "matches_ref",
            "restarts",
            "replayed",
            "checkpoints",
        ]);
        let mut rows = Vec::new();
        let mut all_match = true;
        for w in &workloads {
            for shards in [2usize, 4] {
                let row = run_fault_sweep(w, shards, seed);
                all_match &= row.matches_reference;
                t.row(vec![
                    row.experiment.to_string(),
                    row.shards.to_string(),
                    row.rows_in.to_string(),
                    row.rows_out.to_string(),
                    row.matches_reference.to_string(),
                    row.restarts.to_string(),
                    row.replayed.to_string(),
                    row.checkpoints.to_string(),
                ]);
                rows.push(obj(&[
                    ("experiment", jstr(row.experiment)),
                    ("shards", row.shards.to_string()),
                    ("seed", row.seed.to_string()),
                    ("rows_in", row.rows_in.to_string()),
                    ("rows_out", row.rows_out.to_string()),
                    ("matches_reference", row.matches_reference.to_string()),
                    ("faults", arr(row.faults.iter().map(|f| jstr(f)).collect())),
                    ("restarts", row.restarts.to_string()),
                    ("replayed_tuples", row.replayed.to_string()),
                    ("checkpoints", row.checkpoints.to_string()),
                ]));
            }
        }
        println!("{}", t.to_markdown());
        sections.push((
            "F1",
            obj(&[("seed", seed.to_string()), ("rows", arr(rows))]),
        ));
        if !all_match {
            eprintln!("F1: recovered output diverged from the uninterrupted reference");
            std::process::exit(1);
        }
    }

    // ---------------------------------------------------- latency sweep
    if args.latency {
        println!("## L1 — sampled ingest→emit tuple latency (--latency)\n");
        let workloads = [
            shard_workload_e1(4_000),
            shard_workload_e6(60),
            shard_workload_e10(16, 12, 4),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "engine",
            "batch",
            "rows_in",
            "rows_out",
            "samples",
            "p50_us",
            "p90_us",
            "p99_us",
        ]);
        let mut rows = Vec::new();
        let emit = |t: &mut TextTable, rows: &mut Vec<String>, r: &LatencySweepRow| {
            let engine = if r.shards == 0 {
                "single".to_string()
            } else {
                format!("sharded({})", r.shards)
            };
            t.row(vec![
                r.experiment.to_string(),
                engine,
                r.batch.to_string(),
                r.rows_in.to_string(),
                r.rows_out.to_string(),
                r.samples.to_string(),
                format!("{:.1}", r.p50_ns as f64 / 1e3),
                format!("{:.1}", r.p90_ns as f64 / 1e3),
                format!("{:.1}", r.p99_ns as f64 / 1e3),
            ]);
            rows.push(obj(&[
                ("experiment", jstr(r.experiment)),
                ("shards", r.shards.to_string()),
                ("batch", r.batch.to_string()),
                ("rows_in", r.rows_in.to_string()),
                ("rows_out", r.rows_out.to_string()),
                ("samples", r.samples.to_string()),
                ("p50_ns", r.p50_ns.to_string()),
                ("p90_ns", r.p90_ns.to_string()),
                ("p99_ns", r.p99_ns.to_string()),
                ("feed_secs", jf(r.feed_secs)),
            ]));
        };
        for w in &workloads {
            for &batch in &[1usize, 64] {
                let row = run_latency_single(w, batch);
                emit(&mut t, &mut rows, &row);
                for &n in &[1usize, 2, 4, 8] {
                    let row = run_latency_sharded(w, n, batch);
                    emit(&mut t, &mut rows, &row);
                }
            }
        }
        println!("{}", t.to_markdown());
        sections.push(("L1", obj(&[("rows", arr(rows))])));
    }

    // ------------------------------------------------- multi-query sweep
    if let Some(max_queries) = args.multi {
        println!("## M1 — multi-query shared execution (--multi {max_queries})\n");
        // Shared arm scales to the full count; the independent arm is
        // capped at 1000 queries (each one is a full private chain).
        let sizes: Vec<usize> = [1usize, 10, 100, 1_000, 10_000]
            .into_iter()
            .filter(|&s| s <= max_queries)
            .chain((![1, 10, 100, 1_000, 10_000].contains(&max_queries)).then_some(max_queries))
            .collect();
        let indep_cap = max_queries.min(1_000);
        let feed = m1_feed(500);
        let mut t = TextTable::new(&[
            "arm",
            "queries",
            "chains",
            "rows_in",
            "register_s",
            "feed_s",
            "marginal_us_per_query_row",
            "state_key_bytes",
            "memo_hits",
        ]);
        let mut rows = Vec::new();
        // Per-row marginal cost of one extra query: the slope from the
        // single-query baseline of the same arm.
        let mut baselines: [Option<f64>; 2] = [None, None];
        let mut marginals: Vec<(bool, usize, f64)> = Vec::new();
        for &shared in &[true, false] {
            for &n in &sizes {
                if !shared && n > indep_cap {
                    continue;
                }
                let row = run_multi_sweep(n, shared, &feed);
                let per_row = row.feed_secs / row.rows_in as f64;
                let base = *baselines[shared as usize].get_or_insert(per_row);
                let marginal_us = if n > 1 {
                    (per_row - base).max(0.0) * 1e6 / (n - 1) as f64
                } else {
                    f64::NAN
                };
                marginals.push((shared, n, marginal_us));
                t.row(vec![
                    row.arm.to_string(),
                    row.queries.to_string(),
                    row.chains.to_string(),
                    row.rows_in.to_string(),
                    format!("{:.3}", row.register_secs),
                    format!("{:.3}", row.feed_secs),
                    if marginal_us.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{marginal_us:.3}")
                    },
                    row.state_key_bytes.to_string(),
                    row.memo_hits.to_string(),
                ]);
                rows.push(obj(&[
                    ("arm", jstr(row.arm)),
                    ("queries", row.queries.to_string()),
                    ("chains", row.chains.to_string()),
                    ("rows_in", row.rows_in.to_string()),
                    ("register_secs", jf(row.register_secs)),
                    ("feed_secs", jf(row.feed_secs)),
                    ("marginal_us_per_query_row", jf(marginal_us)),
                    ("state_key_bytes", row.state_key_bytes.to_string()),
                    ("memo_hits", row.memo_hits.to_string()),
                ]));
            }
        }
        println!("{}", t.to_markdown());
        // Headline ratio: shared marginal cost at the widest shared
        // size vs independent marginal cost at the widest independent
        // size (the chains-vs-chains slope the design targets).
        let widest = |shared: bool| {
            marginals
                .iter()
                .filter(|(s, n, m)| *s == shared && *n > 1 && m.is_finite())
                .max_by_key(|(_, n, _)| *n)
                .copied()
        };
        let mut fields = vec![("rows", arr(rows))];
        if let (Some((_, sn, sm)), Some((_, in_, im))) = (widest(true), widest(false)) {
            let ratio = im / sm.max(f64::EPSILON);
            println!(
                "shared marginal cost at {sn} queries: {sm:.3} us/query/row; \
                 independent at {in_}: {im:.3} us/query/row ({ratio:.1}x)\n"
            );
            fields.push(("shared_vs_independent_marginal", jf(ratio)));
        }
        sections.push(("M1", obj(&fields)));
    }

    // ---------------------------------------------------- disorder sweep
    if let Some((seed, delay_secs)) = args.disorder {
        println!("## O1 — out-of-order ingestion sweep (--disorder {seed},{delay_secs})\n");
        let delay = eslev_dsms::prelude::Duration::from_secs(delay_secs);
        let workloads = [
            disorder_workload_e1(4_000),
            shard_workload_e6(60),
            shard_workload_e10(16, 12, 4),
        ];
        let mut t = TextTable::new(&[
            "experiment",
            "slack_s",
            "rows_in",
            "rows_out",
            "late",
            "matches_ref",
            "retractions",
            "fast_ok",
            "ktuples/s",
            "p99_us",
        ]);
        let mut rows = Vec::new();
        let mut lossless_ok = true;
        for w in &workloads {
            for slack_s in [0u64, 1, 2, 4, 8] {
                let slack = eslev_dsms::prelude::Duration::from_secs(slack_s);
                let row = run_disorder_sweep(w, seed, delay, slack);
                if slack_s >= delay_secs {
                    // Slack covers the perturbation bound: both levels
                    // must restore the in-order output exactly.
                    lossless_ok &= row.matches_reference && row.fast_reconciles && row.late == 0;
                }
                t.row(vec![
                    row.experiment.to_string(),
                    slack_s.to_string(),
                    row.rows_in.to_string(),
                    row.rows_out.to_string(),
                    row.late.to_string(),
                    row.matches_reference.to_string(),
                    row.retractions.to_string(),
                    row.fast_reconciles.to_string(),
                    format!("{:.0}", row.rows_in as f64 / row.feed_secs / 1e3),
                    format!("{:.1}", row.p99_ns as f64 / 1e3),
                ]);
                rows.push(obj(&[
                    ("experiment", jstr(row.experiment)),
                    ("seed", row.seed.to_string()),
                    ("slack_ms", row.slack_ms.to_string()),
                    ("max_delay_ms", row.max_delay_ms.to_string()),
                    ("rows_in", row.rows_in.to_string()),
                    ("rows_out", row.rows_out.to_string()),
                    ("late", row.late.to_string()),
                    ("matches_reference", row.matches_reference.to_string()),
                    ("retractions", row.retractions.to_string()),
                    ("fast_reconciles", row.fast_reconciles.to_string()),
                    ("feed_secs", jf(row.feed_secs)),
                    (
                        "ktuples_per_sec",
                        jf(row.rows_in as f64 / row.feed_secs / 1e3),
                    ),
                    ("p99_ns", row.p99_ns.to_string()),
                ]));
            }
        }
        println!("{}", t.to_markdown());
        sections.push((
            "O1",
            obj(&[
                ("seed", seed.to_string()),
                ("max_delay_secs", delay_secs.to_string()),
                ("rows", arr(rows)),
            ]),
        ));
        if !lossless_ok {
            eprintln!("O1: output diverged from the in-order reference at slack >= delay bound");
            std::process::exit(1);
        }
    }

    // ------------------------------------------------------- trace dump
    if let Some(path) = &args.trace_path {
        // A traced E1 run: flight recorder on, feed, dump the merged
        // event buffer as chrome://tracing JSON.
        let (mut engine, readings) = e1_setup(0.5, 5_000);
        engine.set_tracing(true);
        for r in &readings {
            engine.push("readings", r.to_values()).expect("feed");
        }
        let events = engine.take_trace();
        let json = eslev_dsms::prelude::chrome_trace_json(&events);
        match std::fs::write(path, json) {
            Ok(()) => println!(
                "chrome://tracing dump of a traced E1 run ({} events) written to {}",
                events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    println!("(Wall-clock columns are best-of-3 inline timings; run `cargo bench` for Criterion medians.)");

    if let Some(path) = json_path {
        let experiments = obj(&sections
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect::<Vec<_>>());
        // Build metadata makes sweeps comparable across PRs: which
        // commit, which compiler, and which knobs produced the numbers.
        let (git_rev, rustc) = build_metadata();
        let build = obj(&[
            ("git_rev", jstr(&git_rev)),
            ("rustc", jstr(&rustc)),
            (
                "shards",
                shards_flag.map_or("null".to_string(), |n| n.to_string()),
            ),
            (
                "batch_sizes",
                arr(batch_sizes.iter().map(|b| b.to_string()).collect()),
            ),
            ("latency_sweep", args.latency.to_string()),
            (
                "fault_seed",
                fault_seed.map_or("null".to_string(), |s| s.to_string()),
            ),
            (
                "multi",
                args.multi.map_or("null".to_string(), |n| n.to_string()),
            ),
            (
                "disorder",
                args.disorder.map_or("null".to_string(), |(seed, delay)| {
                    obj(&[
                        ("seed", seed.to_string()),
                        ("delay_secs", delay.to_string()),
                    ])
                }),
            ),
            ("columnar", args.columnar.to_string()),
        ]);
        let doc = obj(&[
            ("generated", jstr(&today_utc())),
            ("best_of", "3".to_string()),
            ("build", build),
            ("experiments", experiments),
        ]);
        let file = if path.is_dir() {
            path.join(format!("BENCH_{}.json", today_utc()))
        } else {
            path
        };
        match std::fs::write(&file, doc + "\n") {
            Ok(()) => println!("\nJSON results written to {}", file.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", file.display());
                std::process::exit(1);
            }
        }
    }
}
