//! # eslev-bench — the experiment harness
//!
//! One runner per experiment in `EXPERIMENTS.md` (E1–E10). Each runner
//! builds its workload, executes the system under test, and returns a
//! measured row: correctness numbers against ground truth plus work/state
//! metrics. The Criterion benches (in `benches/`) wrap the same runners
//! for wall-clock measurement; the `harness` binary prints the tables
//! recorded in `EXPERIMENTS.md`.
//!
//! The paper itself is a language-design paper with worked examples
//! rather than numeric tables; each experiment regenerates one example
//! (or one claim) as a measurable artifact — see `DESIGN.md` §4.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod count_alloc;
pub mod experiments;
pub mod table;

pub use experiments::*;
