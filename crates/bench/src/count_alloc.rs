//! A counting global allocator shared by the alloc-budget tests and
//! the harness's columnar sweep.
//!
//! Each binary that wants counts declares its own hook:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: eslev_bench::count_alloc::CountingAlloc =
//!     eslev_bench::count_alloc::CountingAlloc;
//! ```
//!
//! Counting is gated on [`COUNTING`] so setup/teardown allocations are
//! free; only the window inside [`measure`] is charged. Deallocations
//! are deliberately not counted — the budget is about allocator
//! round-trips on the hot path, and frees mirror the allocs.
//!
//! The counter is process-global, so tests that use [`measure`] must
//! not run concurrently with each other; keep one measuring `#[test]`
//! per test process (each integration-test *file* is its own process).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations observed while [`COUNTING`] was set.
pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Gate: when `false` the allocator is a pass-through to [`System`].
pub static COUNTING: AtomicBool = AtomicBool::new(false);

/// [`System`]-backed allocator that counts `alloc`, `alloc_zeroed` and
/// `realloc` calls while [`COUNTING`] is set.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn tick() {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::tick();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::tick();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::tick();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Run `f` with counting enabled and return its result plus the number
/// of allocations the window saw, or `None` for the count if no
/// [`CountingAlloc`] hook is installed in this process (a missing hook
/// would otherwise read as "zero allocations").
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    // Probe: this Box must be seen by the hook if one is installed.
    let probe = Box::new(0u64);
    std::hint::black_box(&probe);
    let installed = ALLOCS.load(Ordering::SeqCst) > 0;
    drop(probe);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst).saturating_sub(1); // minus the probe
    (out, installed.then_some(n))
}
