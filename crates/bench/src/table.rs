//! Minimal fixed-width table printer for the harness output (kept
//! dependency-free; the harness writes plain text that is pasted into
//! EXPERIMENTS.md).

/// A printable table: header + rows of equal arity.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new(&["name", "n"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| name  | n     |"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("| b     | 10000 |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
