//! Experiment runners E1–E10 (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Runners are deterministic (seeded workloads) and return correctness +
//! state metrics; wall-clock numbers come from the Criterion benches that
//! wrap these same functions.

use eslev_baseline::prelude::*;
use eslev_core::prelude::*;
use eslev_dsms::prelude::*;
use eslev_lang::prelude::*;
use eslev_rfid::prelude::*;
use eslev_rfid::scenario::{clinic, dedup, door, epc_population, packing, qc_line, tracking};

// ------------------------------------------------------------------ E1

/// E1 (Example 1): duplicate elimination.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Duplicate probability of the simulated reader.
    pub dup_prob: f64,
    /// Raw readings fed.
    pub raw: usize,
    /// Cleaned readings emitted.
    pub cleaned: usize,
    /// Ground-truth physical presences.
    pub truth: usize,
    /// Keys retained by the dedup operator at the end.
    pub retained: usize,
}

/// Build the E1 engine + query; returns the engine and the raw feed.
pub fn e1_setup(dup_prob: f64, presences: usize) -> (Engine, Vec<Reading>) {
    let w = dedup::generate(&dedup::DedupConfig {
        presences,
        duplicate_prob: dup_prob,
        ..dedup::DedupConfig::default()
    });
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         INSERT INTO cleaned_readings
         SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);",
    )
    .expect("static script plans");
    (engine, w.readings)
}

/// Run E1 for one duplicate probability.
pub fn e1_dedup(dup_prob: f64, presences: usize) -> E1Row {
    let (mut engine, readings) = e1_setup(dup_prob, presences);
    let raw = readings.len();
    for r in &readings {
        engine.push("readings", r.to_values()).expect("feed");
    }
    E1Row {
        dup_prob,
        raw,
        cleaned: engine.stream_pushed("cleaned_readings").expect("stream") as usize,
        truth: presences,
        retained: 0,
    }
}

/// Run E1 feeding through [`Engine::push_batch`] in `batch`-sized
/// chunks (the B1 ingestion sweep). Output is identical to `e1_dedup`;
/// only the watermark schedule changes. Returns the row plus the
/// feed-phase wall time in seconds: workload generation, query
/// planning and row materialization happen before the clock starts —
/// B1 measures ingestion, not setup.
pub fn e1_dedup_batched(dup_prob: f64, presences: usize, batch: usize) -> (E1Row, f64) {
    e1_dedup_batched_on(dup_prob, presences, batch, false)
}

/// [`e1_dedup_batched`] with an explicit execution path: `columnar`
/// turns the SoA batch path on before the timed feed, so B1 can report
/// row vs columnar ingestion on otherwise identical engines.
pub fn e1_dedup_batched_on(
    dup_prob: f64,
    presences: usize,
    batch: usize,
    columnar: bool,
) -> (E1Row, f64) {
    let (mut engine, readings) = e1_setup(dup_prob, presences);
    engine.set_columnar(columnar);
    let raw = readings.len();
    let mut rows: std::collections::VecDeque<Vec<Value>> =
        readings.iter().map(|r| r.to_values()).collect();
    let batch = batch.max(1);
    let start = std::time::Instant::now();
    while !rows.is_empty() {
        let take = rows.len().min(batch);
        engine
            .push_batch_to("readings", rows.drain(..take))
            .expect("feed");
    }
    let feed_secs = start.elapsed().as_secs_f64();
    (
        E1Row {
            dup_prob,
            raw,
            cleaned: engine.stream_pushed("cleaned_readings").expect("stream") as usize,
            truth: presences,
            retained: 0,
        },
        feed_secs,
    )
}

// ------------------------------------------------------------------ E2

/// E2 (Example 2): location tracking into a persistent table.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Probability of movement per reading.
    pub move_prob: f64,
    /// Location readings fed.
    pub readings: usize,
    /// Rows persisted by the query.
    pub persisted: usize,
    /// Ground truth: distinct (tag, location) pairs.
    pub truth: usize,
    /// Write amplification avoided: readings / persisted.
    pub reduction: f64,
}

/// Run E2 for one movement probability.
pub fn e2_tracking(move_prob: f64) -> E2Row {
    let w = tracking::generate(&tracking::TrackingConfig {
        move_prob,
        ..tracking::TrackingConfig::default()
    });
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR);
         CREATE TABLE object_movement (tagid VARCHAR, location VARCHAR, start_time TIMESTAMP);
         INSERT INTO object_movement
         SELECT tid, loc, tagtime
         FROM tag_locations WHERE NOT EXISTS
           (SELECT tagid FROM object_movement
            WHERE tagid = tid AND location = loc);",
    )
    .expect("static script plans");
    for r in &w.readings {
        engine.push("tag_locations", r.to_values()).expect("feed");
    }
    let persisted = engine.table("object_movement").expect("table").len();
    E2Row {
        move_prob,
        readings: w.readings.len(),
        persisted,
        truth: w.distinct_pairs,
        reduction: w.readings.len() as f64 / persisted.max(1) as f64,
    }
}

// ------------------------------------------------------------------ E3

/// E3 (Example 3): EPC-pattern aggregation, LIKE+UDF vs compiled.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Readings fed.
    pub readings: usize,
    /// Ground-truth matches.
    pub truth: usize,
    /// Count from the verbatim LIKE + extract_serial query.
    pub like_udf: i64,
    /// Count from the compiled `epc_match` query.
    pub compiled: i64,
}

/// The two E3 query variants, pre-planned over a shared engine.
pub fn e3_setup(n: usize, fraction: f64) -> (Engine, Vec<Reading>, usize, Collector, Collector) {
    let w = epc_population::generate(&epc_population::EpcConfig {
        readings: n,
        match_fraction: fraction,
        pattern: "20.*.[5001-9998]".parse().expect("pattern"),
        ..epc_population::EpcConfig::default()
    });
    let mut engine = Engine::new();
    register_epc_udfs(engine.functions_mut());
    register_epc_match_udf(engine.functions_mut());
    execute(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tid VARCHAR, read_time TIMESTAMP)",
    )
    .expect("ddl");
    let like = execute(
        &mut engine,
        "SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
         AND extract_serial(tid) > 5000
         AND extract_serial(tid) < 9999",
    )
    .expect("like query");
    let like_c = like.collector().expect("collector").clone();
    let compiled = execute(
        &mut engine,
        "SELECT count(tid) FROM readings WHERE epc_match('20.*.[5001-9998]', tid)",
    )
    .expect("compiled query");
    let compiled_c = compiled.collector().expect("collector").clone();
    (engine, w.readings, w.matching, like_c, compiled_c)
}

/// Run E3 once.
pub fn e3_epc(n: usize, fraction: f64) -> E3Row {
    let (mut engine, readings, truth, like_c, compiled_c) = e3_setup(n, fraction);
    for r in &readings {
        engine.push("readings", r.to_values()).expect("feed");
    }
    let last = |c: &Collector| {
        c.take()
            .last()
            .and_then(|t| t.value(0).as_int())
            .unwrap_or(0)
    };
    E3Row {
        readings: readings.len(),
        truth,
        like_udf: last(&like_c),
        compiled: last(&compiled_c),
    }
}

// ------------------------------------------------------------------ E4

/// E4 (Figure 1 / Examples 4, 7): containment detection accuracy.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Fraction of `t1` that intra-burst gaps may reach.
    pub gap_tightness: f64,
    /// Whether bursts overlap the previous case read (Figure 1(b)).
    pub overlap: bool,
    /// Cases in the workload.
    pub cases: usize,
    /// Containments detected.
    pub detected: usize,
    /// Detections with exact case tag + product count.
    pub exact: usize,
}

/// Run E4 for one gap-tightness setting.
pub fn e4_containment(gap_tightness: f64, overlap: bool, cases: usize) -> E4Row {
    let cfg = packing::PackingConfig {
        cases,
        gap_tightness,
        overlap,
        ..packing::PackingConfig::default()
    };
    let w = packing::generate(&cfg);
    let pat = SeqPattern::new(
        vec![
            Element::star(0).with_star_gap(cfg.t1),
            Element::new(1).with_max_gap(cfg.t0),
        ],
        None,
        PairingMode::Chronicle,
    )
    .expect("pattern");
    let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
    let feed = merge_feeds(vec![
        ("p".into(), w.products.clone()),
        ("c".into(), w.cases.clone()),
    ]);
    let mut detected = Vec::new();
    for (i, item) in feed.iter().enumerate() {
        let port = usize::from(item.stream == "c");
        let t = Tuple::new(item.reading.to_values(), item.reading.ts, i as u64);
        for o in det.on_tuple(port, &t).expect("detect") {
            if let DetectorOutput::Match(m) = o {
                detected.push((
                    m.binding(1)
                        .first()
                        .value(1)
                        .as_str()
                        .expect("tag")
                        .to_string(),
                    m.binding(0).count(),
                ));
            }
        }
    }
    let exact = detected
        .iter()
        .zip(&w.truth)
        .filter(|((tag, count), truth)| {
            *tag == truth.case_tag && *count == truth.product_tags.len()
        })
        .count();
    E4Row {
        gap_tightness,
        overlap,
        cases: w.truth.len(),
        detected: detected.len(),
        exact,
    }
}

// ------------------------------------------------------------------ E5

/// E5 (Example 5 / §3.1.3): exception detection.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Test runs simulated.
    pub runs: usize,
    /// Violations in the ground truth.
    pub violations: usize,
    /// Alerts raised with active expiration (punctuations on).
    pub alerts: usize,
    /// Alerts with the WindowExpiry cause — the timeouts, each detected
    /// *at its deadline*.
    pub expiry_alerts: usize,
    /// WindowExpiry alerts when the engine never punctuates (ablation):
    /// always 0 — without a heartbeat a timeout is only noticed (late,
    /// and mislabeled as a wrong extension) at the next arrival, or never.
    pub expiry_alerts_without_expiration: usize,
    /// Ground-truth timeout violations.
    pub timeouts: usize,
}

/// Run E5 (with and without active expiration).
pub fn e5_clinic(runs: usize) -> E5Row {
    let cfg = clinic::ClinicConfig {
        runs,
        ..clinic::ClinicConfig::default()
    };
    let w = clinic::generate(&cfg);
    let run = |active_expiration: bool| -> (usize, usize) {
        let pat = SeqPattern::new(
            (0..clinic::OPS).map(Element::new).collect(),
            Some(EventWindow::following(cfg.limit, 0)),
            PairingMode::Consecutive,
        )
        .expect("pattern");
        let mut det = Detector::new(DetectorConfig::exception(pat)).expect("detector");
        let mut alerts = 0;
        let mut expiries = 0;
        let count = |outs: &[DetectorOutput], alerts: &mut usize, expiries: &mut usize| {
            for o in outs {
                if let Some(e) = o.as_exception() {
                    *alerts += 1;
                    if matches!(e.cause, ExceptionCause::WindowExpiry) {
                        *expiries += 1;
                    }
                }
            }
        };
        for (i, (port, reading)) in w.feed.iter().enumerate() {
            let t = Tuple::new(
                vec![
                    Value::str(&reading.reader),
                    Value::str(&reading.tag),
                    Value::Ts(reading.ts),
                ],
                reading.ts,
                i as u64,
            );
            if active_expiration {
                let outs = det.on_punctuation(reading.ts).expect("punctuate");
                count(&outs, &mut alerts, &mut expiries);
            }
            let outs = det.on_tuple(*port, &t).expect("detect");
            count(&outs, &mut alerts, &mut expiries);
        }
        if active_expiration {
            let horizon = w.feed.last().map(|(_, r)| r.ts).unwrap_or(Timestamp::ZERO)
                + cfg.limit
                + Duration::from_secs(1);
            let outs = det.on_punctuation(horizon).expect("punctuate");
            count(&outs, &mut alerts, &mut expiries);
        }
        (alerts, expiries)
    };
    let timeouts = w
        .truth
        .iter()
        .filter(|r| r.kind == clinic::RunKind::Timeout)
        .count();
    let (alerts, expiry_alerts) = run(true);
    let (_, expiry_without) = run(false);
    E5Row {
        runs,
        violations: w.violations,
        alerts,
        expiry_alerts,
        expiry_alerts_without_expiration: expiry_without,
        timeouts,
    }
}

// ------------------------------------------------------------------ E6

/// E6 (§3.1.1 worked example + Example 6): pairing-mode comparison.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// The mode.
    pub mode: PairingMode,
    /// Events on the literal worked history (paper: 4 / 1 / 1 / 0).
    pub worked_example: usize,
    /// Events on a scaled interleaved QC feed (2-minute window).
    pub scaled_matches: usize,
    /// Peak tuples retained during the scaled run.
    pub peak_retained: usize,
    /// Matches the scaled detector counted (== `scaled_matches`).
    pub matches_emitted: u64,
    /// Runs/bindings pruned during the scaled run — the per-mode
    /// operational signature the observability layer surfaces.
    pub prunes: u64,
}

/// The scaled E6 feed: an interleaved QC line, single shared tag space,
/// bounded by a 2-minute PRECEDING window so UNRESTRICTED stays finite.
pub fn e6_feed(products: usize) -> Vec<(usize, Tuple)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products,
        dropout_prob: 0.0,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("{i}"), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let port: usize = item.stream.parse().expect("port name");
            (
                port,
                Tuple::new(item.reading.to_values(), item.reading.ts, i as u64),
            )
        })
        .collect()
}

/// Run one mode over the worked history and the scaled feed.
pub fn e6_mode(mode: PairingMode, feed: &[(usize, Tuple)]) -> E6Row {
    // Worked history.
    let pat = SeqPattern::new((0..4).map(Element::new).collect(), None, mode).expect("pattern");
    let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
    let mut worked = 0;
    for (i, (port, reading)) in qc_line::worked_history().iter().enumerate() {
        let t = Tuple::new(Vec::new(), reading.ts, i as u64);
        worked += det
            .on_tuple(*port, &t)
            .expect("detect")
            .iter()
            .filter(|o| o.as_match().is_some())
            .count();
    }
    // Scaled feed with a window to bound UNRESTRICTED.
    let pat = SeqPattern::new(
        (0..4).map(Element::new).collect(),
        Some(EventWindow::preceding(Duration::from_mins(2), 3)),
        mode,
    )
    .expect("pattern");
    let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
    let mut matches = 0;
    let mut peak = 0;
    for (port, t) in feed {
        det.on_punctuation(t.ts()).expect("punctuate");
        matches += det
            .on_tuple(*port, t)
            .expect("detect")
            .iter()
            .filter(|o| o.as_match().is_some())
            .count();
        peak = peak.max(det.retained());
    }
    E6Row {
        mode,
        worked_example: worked,
        scaled_matches: matches,
        peak_retained: peak,
        matches_emitted: det.matches_emitted(),
        prunes: det.prunes(),
    }
}

// ------------------------------------------------------------------ E7

/// E7: window sweep over the SEQ operator.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Window length in seconds.
    pub window_secs: u64,
    /// UNRESTRICTED matches.
    pub unrestricted_matches: usize,
    /// RECENT matches.
    pub recent_matches: usize,
    /// UNRESTRICTED peak retained tuples.
    pub unrestricted_retained: usize,
    /// RECENT peak retained tuples.
    pub recent_retained: usize,
}

/// Run E7 for one window length over a shared feed.
pub fn e7_window(window_secs: u64, feed: &[(usize, Tuple)]) -> E7Row {
    let run = |mode: PairingMode| -> (usize, usize) {
        let pat = SeqPattern::new(
            (0..4).map(Element::new).collect(),
            Some(EventWindow::preceding(Duration::from_secs(window_secs), 3)),
            mode,
        )
        .expect("pattern");
        let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
        let mut matches = 0;
        let mut peak = 0;
        for (port, t) in feed {
            det.on_punctuation(t.ts()).expect("punctuate");
            matches += det
                .on_tuple(*port, t)
                .expect("detect")
                .iter()
                .filter(|o| o.as_match().is_some())
                .count();
            peak = peak.max(det.retained());
        }
        (matches, peak)
    };
    let (u_m, u_r) = run(PairingMode::Unrestricted);
    let (r_m, r_r) = run(PairingMode::Recent);
    E7Row {
        window_secs,
        unrestricted_matches: u_m,
        recent_matches: r_m,
        unrestricted_retained: u_r,
        recent_retained: r_r,
    }
}

// ------------------------------------------------------------------ E8

/// E8 (Example 8): door security.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Theft fraction configured.
    pub theft_fraction: f64,
    /// Item exits.
    pub exits: usize,
    /// Ground-truth thefts.
    pub thefts: usize,
    /// Alerts raised.
    pub alerts: usize,
    /// Correct alerts.
    pub true_positives: usize,
    /// Mean alert latency in seconds (alert time − item time); the
    /// FOLLOWING half of the window forces latency ≈ τ.
    pub mean_latency_secs: f64,
}

/// Run E8 for one theft fraction.
pub fn e8_door(theft_fraction: f64, exits: usize) -> E8Row {
    let cfg = door::DoorConfig {
        item_exits: exits,
        theft_fraction,
        ..door::DoorConfig::default()
    };
    let w = door::generate(&cfg);
    let mut engine = Engine::new();
    execute(
        &mut engine,
        "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
    )
    .expect("ddl");
    let q = execute(
        &mut engine,
        "SELECT item.tagid, item.tagtime
         FROM tag_readings AS item
         WHERE item.tagtype = 'item' AND NOT EXISTS
           (SELECT * FROM tag_readings AS person
            OVER [1 MINUTES PRECEDING AND FOLLOWING item]
            WHERE person.tagtype = 'person')",
    )
    .expect("query");
    let alerts = q.collector().expect("collector").clone();
    for r in &w.readings {
        engine.push("tag_readings", r.to_values()).expect("feed");
    }
    let horizon =
        w.readings.last().map(|r| r.ts).unwrap_or(Timestamp::ZERO) + Duration::from_mins(5);
    engine.advance_to(horizon).expect("punctuate");
    let rows = alerts.take();
    let truth: std::collections::BTreeSet<&str> = w.thefts.iter().map(|s| s.as_str()).collect();
    let mut true_positives = 0;
    let mut latency_sum = 0.0;
    for r in &rows {
        let tag = r.value(0).as_str().expect("tag");
        if truth.contains(tag) {
            true_positives += 1;
        }
        let item_ts = r.value(1).as_ts().expect("item time");
        latency_sum += (r.ts() - item_ts).as_micros() as f64 / 1e6;
    }
    E8Row {
        theft_fraction,
        exits,
        thefts: truth.len(),
        alerts: rows.len(),
        true_positives,
        mean_latency_secs: if rows.is_empty() {
            0.0
        } else {
            latency_sum / rows.len() as f64
        },
    }
}

// ------------------------------------------------------------------ E9

/// E9: ESL-EV vs the baseline architectures on the fixed-length QC
/// sequence.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// System label.
    pub system: &'static str,
    /// Events produced.
    pub events: usize,
    /// Tuples/instances retained at the end of the run.
    pub retained: usize,
    /// Combinations enumerated (join) — 0 where not applicable.
    pub enumerated: u64,
}

/// The E9 feed: an interleaved multi-product QC line with per-product
/// tags (so partitioned detection has real work to do).
pub fn e9_feed(products: usize) -> Vec<(usize, Tuple)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products,
        dropout_prob: 0.0,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("{i}"), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let port: usize = item.stream.parse().expect("port");
            (
                port,
                Tuple::new(item.reading.to_values(), item.reading.ts, i as u64),
            )
        })
        .collect()
}

/// ESL-EV partitioned RECENT (the paper's recommended shape for Ex. 6).
pub fn e9_eslev_recent(feed: &[(usize, Tuple)]) -> E9Row {
    let pat = SeqPattern::new(
        (0..4).map(Element::new).collect(),
        None,
        PairingMode::Recent,
    )
    .expect("pattern");
    let cfg = DetectorConfig::seq(pat).with_partition(vec![Expr::col(1); 4]);
    let mut det = Detector::new(cfg).expect("detector");
    let mut events = 0;
    for (port, t) in feed {
        events += det.on_tuple(*port, t).expect("detect").len();
    }
    E9Row {
        system: "eslev SEQ RECENT (partitioned)",
        events,
        retained: det.retained(),
        enumerated: 0,
    }
}

/// ESL-EV partitioned CHRONICLE.
pub fn e9_eslev_chronicle(feed: &[(usize, Tuple)]) -> E9Row {
    let pat = SeqPattern::new(
        (0..4).map(Element::new).collect(),
        None,
        PairingMode::Chronicle,
    )
    .expect("pattern");
    let cfg = DetectorConfig::seq(pat).with_partition(vec![Expr::col(1); 4]);
    let mut det = Detector::new(cfg).expect("detector");
    let mut events = 0;
    for (port, t) in feed {
        events += det.on_tuple(*port, t).expect("detect").len();
    }
    E9Row {
        system: "eslev SEQ CHRONICLE (partitioned)",
        events,
        retained: det.retained(),
        enumerated: 0,
    }
}

/// RCEDA-style graph engine: equality as a post-hoc predicate, no
/// partitioning, no windows.
pub fn e9_rceda(feed: &[(usize, Tuple)]) -> E9Row {
    let pred: RootPredicate = std::sync::Arc::new(|i: &EventInstance| {
        let tag = i.tuples[0].value(1).clone();
        i.tuples.iter().all(|t| t.value(1) == &tag)
    });
    let mut eng = RcedaEngine::new(&EventExpr::seq_chain(4), Context::Unrestricted, Some(pred))
        .expect("graph");
    let mut events = 0;
    for (port, t) in feed {
        events += eng.on_tuple(*port, t).len();
    }
    E9Row {
        system: "RCEDA graph (post-hoc predicate)",
        events,
        retained: eng.retained(),
        enumerated: 0,
    }
}

/// Naive 4-way self-join with the tag-equality predicate per combination.
pub fn e9_naive_join(feed: &[(usize, Tuple)]) -> E9Row {
    let mut nj = NaiveJoinSeq::new(4, Some(1), None).expect("join");
    let mut events = 0;
    for (port, t) in feed {
        events += nj.on_tuple(*port, t).expect("join").len();
    }
    E9Row {
        system: "naive 4-way join",
        events,
        retained: nj.retained(),
        enumerated: nj.enumerated(),
    }
}

/// All four E9 systems over a shared feed.
pub fn e9_compare(products: usize) -> Vec<E9Row> {
    let feed = e9_feed(products);
    vec![
        e9_eslev_recent(&feed),
        e9_eslev_chronicle(&feed),
        e9_rceda(&feed),
        e9_naive_join(&feed),
    ]
}

// ----------------------------------------------------------------- E10

/// E10 (§3.1.2): star-sequence semantics.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Length of each `a+` run.
    pub run_len: usize,
    /// Number of runs.
    pub runs: usize,
    /// Matches emitted (must equal `runs` — longest match only).
    pub matches: usize,
    /// All groups had exactly `run_len` tuples.
    pub groups_exact: bool,
    /// Online emissions from the trailing-star variant `SEQ(b, a*)`
    /// (must equal `runs × run_len` — one per arrival).
    pub trailing_emissions: usize,
    /// Matches counted by the closed-star detector.
    pub matches_emitted: u64,
    /// Runs pruned by the trailing-star (CONSECUTIVE) detector — each
    /// new `b` breaks the previous open group.
    pub trailing_prunes: u64,
}

/// Run E10 for one run length.
pub fn e10_star(run_len: usize, runs: usize) -> E10Row {
    // Closed star: SEQ(A*, B).
    let pat = SeqPattern::new(
        vec![Element::star(0), Element::new(1)],
        None,
        PairingMode::Chronicle,
    )
    .expect("pattern");
    let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
    let mut seq = 0u64;
    let mut ts = 0u64;
    let mut matches = 0;
    let mut groups_exact = true;
    for _ in 0..runs {
        for _ in 0..run_len {
            ts += 1;
            det.on_tuple(0, &Tuple::new(vec![], Timestamp::from_secs(ts), seq))
                .expect("detect");
            seq += 1;
        }
        ts += 1;
        for o in det
            .on_tuple(1, &Tuple::new(vec![], Timestamp::from_secs(ts), seq))
            .expect("detect")
        {
            if let DetectorOutput::Match(m) = o {
                matches += 1;
                groups_exact &= m.binding(0).count() == run_len;
            }
        }
        seq += 1;
    }
    let closed_matches = det.matches_emitted();
    // Trailing star: SEQ(B, A*) — online emission per arrival.
    let pat = SeqPattern::new(
        vec![Element::new(1), Element::star(0)],
        None,
        PairingMode::Consecutive,
    )
    .expect("pattern");
    let mut det = Detector::new(DetectorConfig::seq(pat)).expect("detector");
    let mut trailing = 0;
    let mut ts = 0u64;
    let mut seq = 0u64;
    for _ in 0..runs {
        ts += 1;
        det.on_tuple(1, &Tuple::new(vec![], Timestamp::from_secs(ts), seq))
            .expect("detect");
        seq += 1;
        for _ in 0..run_len {
            ts += 1;
            trailing += det
                .on_tuple(0, &Tuple::new(vec![], Timestamp::from_secs(ts), seq))
                .expect("detect")
                .len();
            seq += 1;
        }
    }
    E10Row {
        run_len,
        runs,
        matches,
        groups_exact,
        trailing_emissions: trailing,
        matches_emitted: closed_matches,
        trailing_prunes: det.prunes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_cleans_exactly() {
        let r = e1_dedup(0.5, 300);
        assert_eq!(r.cleaned, r.truth);
        assert!(r.raw > r.truth);
    }

    #[test]
    fn e2_persists_truth() {
        let r = e2_tracking(0.1);
        assert_eq!(r.persisted, r.truth);
        assert!(r.reduction > 5.0);
    }

    #[test]
    fn e3_counts_agree() {
        let r = e3_epc(2000, 0.3);
        assert_eq!(r.like_udf as usize, r.truth);
        assert_eq!(r.compiled as usize, r.truth);
    }

    #[test]
    fn e4_perfect_under_threshold() {
        let r = e4_containment(0.6, false, 50);
        assert_eq!(r.detected, r.cases);
        assert_eq!(r.exact, r.cases);
    }

    #[test]
    fn e5_alerts_match_and_ablation_misses_timeouts() {
        let r = e5_clinic(80);
        assert_eq!(r.alerts, r.violations);
        assert_eq!(
            r.expiry_alerts, r.timeouts,
            "each timeout fires at its deadline"
        );
        assert_eq!(r.expiry_alerts_without_expiration, 0);
        assert!(r.timeouts > 0, "workload must include timeouts");
    }

    #[test]
    fn e6_worked_example_counts() {
        let feed = e6_feed(20);
        let rows: Vec<E6Row> = PairingMode::ALL
            .iter()
            .map(|m| e6_mode(*m, &feed))
            .collect();
        let worked: Vec<usize> = rows.iter().map(|r| r.worked_example).collect();
        assert_eq!(worked, vec![4, 1, 1, 0]);
        // History ordering claim: UNRESTRICTED retains the most.
        assert!(rows[0].peak_retained >= rows[1].peak_retained);
        assert!(rows[0].peak_retained >= rows[3].peak_retained);
    }

    #[test]
    fn e7_monotone_in_window() {
        let feed = e6_feed(30);
        let narrow = e7_window(30, &feed);
        let wide = e7_window(600, &feed);
        assert!(wide.unrestricted_matches >= narrow.unrestricted_matches);
        assert!(wide.unrestricted_retained >= narrow.unrestricted_retained);
        assert!(
            wide.recent_retained <= 12,
            "RECENT state is O(pattern), got {}",
            wide.recent_retained
        );
    }

    #[test]
    fn e8_exact_alerts_with_tau_latency() {
        let r = e8_door(0.1, 150);
        assert_eq!(r.alerts, r.thefts);
        assert_eq!(r.true_positives, r.thefts);
        assert!(
            (r.mean_latency_secs - 60.0).abs() < 1.0,
            "latency {}",
            r.mean_latency_secs
        );
    }

    #[test]
    fn e9_systems_agree_on_events_but_not_cost() {
        let rows = e9_compare(40);
        // Completion counts: partitioned RECENT/CHRONICLE find one event
        // per product; RCEDA/naive (unrestricted semantics) find at least
        // as many.
        assert_eq!(rows[0].events, 40);
        assert_eq!(rows[1].events, 40);
        assert!(rows[2].events >= 40);
        assert!(rows[3].events >= 40);
        // Memory: the graph engine and join retain far more than the
        // consuming/partitioned detectors.
        assert!(rows[2].retained > rows[1].retained * 5);
        assert!(rows[3].retained > rows[1].retained * 5);
        assert!(rows[3].enumerated > 0);
    }

    #[test]
    fn e10_longest_match_and_online() {
        let r = e10_star(5, 20);
        assert_eq!(r.matches, 20);
        assert!(r.groups_exact);
        assert_eq!(r.trailing_emissions, 100);
    }
}

// ------------------------------------------------------------ ablations

/// A1: partition lifting on/off — the same RECENT pattern over the E9
/// feed with the tag-equality either lifted into the partition key (the
/// planner's choice) or left as a residual filter over candidate
/// matches.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Whether equality was lifted into the partition key.
    pub partitioned: bool,
    /// Events emitted.
    pub events: usize,
    /// Final retained tuples.
    pub retained: usize,
}

/// Run one arm of A1.
pub fn a1_partitioning(feed: &[(usize, Tuple)], partitioned: bool) -> A1Row {
    let pat = SeqPattern::new(
        (0..4).map(Element::new).collect(),
        None,
        PairingMode::Recent,
    )
    .expect("pattern");
    let cfg = if partitioned {
        DetectorConfig::seq(pat).with_partition(vec![Expr::col(1); 4])
    } else {
        // Residual check: all four bound tuples carry the same tag.
        DetectorConfig::seq(pat).with_filter(std::sync::Arc::new(|m: &SeqMatch| {
            let tag = m.binding(0).first().value(1).clone();
            Ok(m.bindings.iter().all(|b| b.first().value(1) == &tag))
        }))
    };
    let mut det = Detector::new(cfg).expect("detector");
    let mut events = 0;
    for (port, t) in feed {
        events += det.on_tuple(*port, t).expect("detect").len();
    }
    A1Row {
        partitioned,
        events,
        retained: det.retained(),
    }
}

/// A2: Example 1's two physical plans — the planner's specialized
/// [`Dedup`] operator vs the generic windowed `NOT EXISTS`
/// ([`WindowExists`]) that a naive planner would produce.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Plan label.
    pub plan: &'static str,
    /// Cleaned readings emitted.
    pub cleaned: usize,
    /// Peak retained state.
    pub peak_retained: usize,
}

/// Run the specialized-Dedup arm.
pub fn a2_dedup_specialized(readings: &[Reading]) -> A2Row {
    use eslev_dsms::ops::{Dedup, Operator};
    let mut op = Dedup::new(vec![Expr::col(0), Expr::col(1)], Duration::from_secs(1));
    let mut out = Vec::new();
    let mut cleaned = 0;
    let mut peak = 0;
    for (i, r) in readings.iter().enumerate() {
        out.clear();
        let t = Tuple::new(r.to_values(), r.ts, i as u64);
        op.on_tuple(0, &t, &mut out).expect("dedup");
        cleaned += out.len();
        peak = peak.max(op.retained());
    }
    A2Row {
        plan: "specialized Dedup",
        cleaned,
        peak_retained: peak,
    }
}

/// Run the generic-WindowExists arm (outer and inner are the same feed).
pub fn a2_dedup_generic(readings: &[Reading]) -> A2Row {
    use eslev_dsms::ops::{Operator, SemiJoinKind, WindowExists};
    use eslev_dsms::window::WindowExtent;
    let pred = Expr::and(
        Expr::eq(Expr::qcol(1, 0), Expr::qcol(0, 0)),
        Expr::eq(Expr::qcol(1, 1), Expr::qcol(0, 1)),
    );
    let mut op = WindowExists::new(
        SemiJoinKind::NotExists,
        WindowExtent::Preceding(Duration::from_secs(1)),
        pred,
        None,
    );
    let mut out = Vec::new();
    let mut cleaned = 0;
    let mut peak = 0;
    for (i, r) in readings.iter().enumerate() {
        out.clear();
        let t = Tuple::new(r.to_values(), r.ts, i as u64);
        op.on_tuple(0, &t, &mut out).expect("outer");
        op.on_tuple(1, &t, &mut out).expect("inner");
        cleaned += out.len();
        peak = peak.max(op.retained());
    }
    // Close trailing windows.
    if let Some(last) = readings.last() {
        out.clear();
        op.on_punctuation(last.ts + Duration::from_secs(2), &mut out)
            .expect("punctuate");
        cleaned += out.len();
    }
    A2Row {
        plan: "generic WindowExists",
        cleaned,
        peak_retained: peak,
    }
}

/// Shared A2 workload.
pub fn a2_workload(presences: usize) -> Vec<Reading> {
    dedup::generate(&dedup::DedupConfig {
        presences,
        duplicate_prob: 0.5,
        ..dedup::DedupConfig::default()
    })
    .readings
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn a1_same_events_different_state() {
        let feed = e9_feed(40);
        let part = a1_partitioning(&feed, true);
        let unpart = a1_partitioning(&feed, false);
        // Partitioned RECENT finds one completion per product. The
        // unpartitioned residual variant uses a single global chain, so
        // cross-tag interleavings break chains and some completions are
        // missed — the correctness argument for lifting equalities.
        assert_eq!(part.events, 40);
        assert!(unpart.events <= part.events);
    }

    #[test]
    fn a2_plans_agree_on_output() {
        let w = a2_workload(400);
        let fast = a2_dedup_specialized(&w);
        let slow = a2_dedup_generic(&w);
        assert_eq!(fast.cleaned, 400);
        assert_eq!(slow.cleaned, 400);
        // The generic plan buffers pending outers + the inner window; the
        // specialized one keeps a key map.
        assert!(slow.peak_retained >= fast.peak_retained);
    }
}

// --------------------------------------------------------- shard scaling

/// A paper workload packaged for the shard router: DDL, one collected
/// continuous query, and a globally time-ordered feed.
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// Experiment label (E1 / E6 / E10).
    pub experiment: &'static str,
    /// `CREATE STREAM` (+ derived `INSERT INTO`) script, executed on
    /// every shard.
    pub ddl: String,
    /// The collected query whose merged output is measured.
    pub query: String,
    /// `(stream, values)` rows in timestamp order.
    pub feed: Vec<(String, Vec<Value>)>,
}

/// One sharded-scaling measurement.
#[derive(Debug, Clone)]
pub struct ShardScaleRow {
    /// Experiment label.
    pub experiment: &'static str,
    /// Worker shards.
    pub shards: usize,
    /// Tuples routed in.
    pub rows_in: usize,
    /// Tuples in the merged output.
    pub rows_out: usize,
    /// Routed-tuple count per shard (length == `shards`) — the balance
    /// of the EPC hash partitioning.
    pub per_shard_routed: Vec<u64>,
}

/// E1 duplicate elimination as a sharded workload (the same script as
/// [`e1_setup`], EPC-keyed on `tag_id`).
pub fn shard_workload_e1(presences: usize) -> ShardWorkload {
    let w = dedup::generate(&dedup::DedupConfig {
        presences,
        duplicate_prob: 0.5,
        ..dedup::DedupConfig::default()
    });
    ShardWorkload {
        experiment: "E1",
        ddl: "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
              CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
              INSERT INTO cleaned_readings
              SELECT * FROM readings AS r1
              WHERE NOT EXISTS
                (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
                 WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);"
            .to_string(),
        query: "SELECT * FROM cleaned_readings".to_string(),
        feed: w
            .readings
            .iter()
            .map(|r| ("readings".to_string(), r.to_values()))
            .collect(),
    }
}

/// E6 pairing-mode `SEQ` over the interleaved QC line, tag-partitioned
/// by the planner's lifted equalities.
pub fn shard_workload_e6(products: usize) -> ShardWorkload {
    let w = qc_line::generate(&qc_line::QcConfig {
        products,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    ShardWorkload {
        experiment: "E6",
        ddl: "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
              CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
              CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
              CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);"
            .to_string(),
        query: "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
                WHERE SEQ(C1, C2, C3, C4) MODE RECENT
                AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
            .to_string(),
        feed: merge_feeds(feeds)
            .into_iter()
            .map(|item| (item.stream, item.reading.to_values()))
            .collect(),
    }
}

/// E10 star sequence over tag-interleaved runs: each tag cycles
/// `run_len` R1 readings then one R2 boundary, rounds interleaved across
/// tags so adjacent timestamps belong to different tags.
pub fn shard_workload_e10(tags: usize, runs_per_tag: usize, run_len: usize) -> ShardWorkload {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    ShardWorkload {
        experiment: "E10",
        ddl: "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
              CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);"
            .to_string(),
        query: "SELECT COUNT(R1*), R2.tagid FROM R1, R2
                WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid"
            .to_string(),
        feed,
    }
}

/// One row of the R1 representation sweep: a paper workload replayed
/// through a single engine under one row representation (interned
/// symbols + compact state keys vs. the seed `Vec<Value>` layout).
#[derive(Debug, Clone)]
pub struct ReprSweepRow {
    /// Experiment label.
    pub experiment: &'static str,
    /// Representation label (`interned` / `seed`).
    pub representation: &'static str,
    /// Tuples fed.
    pub rows_in: usize,
    /// Tuples the collected query produced.
    pub rows_out: usize,
    /// Feed-phase wall time in seconds (planning and workload
    /// generation excluded, mirroring `e1_dedup_batched`).
    pub feed_secs: f64,
    /// Bytes held in encoded state keys across all queries at the end.
    pub state_key_bytes: usize,
    /// Interner dictionary entries at the end (0 under seed).
    pub interner_entries: usize,
    /// Interner dictionary bytes at the end (0 under seed).
    pub interner_bytes: usize,
}

/// Replay `w` through one single-threaded engine under `rep`, timing
/// only the feed phase. The same workloads drive the shard-scaling
/// sweep, so R1 numbers are directly comparable to S1's single-shard
/// baseline.
pub fn run_repr_sweep(w: &ShardWorkload, rep: Representation) -> ReprSweepRow {
    let mut engine = Engine::with_representation(rep);
    execute_script(&mut engine, &w.ddl).expect("static script plans");
    let q = execute(&mut engine, &w.query).expect("static query plans");
    let collector = q.collector().expect("collected query").clone();
    let start = std::time::Instant::now();
    for (stream, values) in &w.feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    let feed_secs = start.elapsed().as_secs_f64();
    let (interner_entries, interner_bytes) = engine.interner_stats();
    ReprSweepRow {
        experiment: w.experiment,
        representation: match rep {
            Representation::Interned => "interned",
            Representation::Seed => "seed",
        },
        rows_in: w.feed.len(),
        rows_out: collector.take().len(),
        feed_secs,
        state_key_bytes: engine.state_key_bytes(),
        interner_entries,
        interner_bytes,
    }
}

/// Like [`run_repr_sweep`] under the interned representation, but with
/// the columnar batch path enabled — the R1 table's third arm. The
/// feed is still row-at-a-time (`Engine::push`), so any difference
/// against the plain interned arm is pure dispatch overhead/benefit at
/// batch size 1; the batched win is C1's job.
pub fn run_repr_sweep_columnar(w: &ShardWorkload) -> ReprSweepRow {
    let mut engine = Engine::new();
    engine.set_columnar(true);
    execute_script(&mut engine, &w.ddl).expect("static script plans");
    let q = execute(&mut engine, &w.query).expect("static query plans");
    let collector = q.collector().expect("collected query").clone();
    let start = std::time::Instant::now();
    for (stream, values) in &w.feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    let feed_secs = start.elapsed().as_secs_f64();
    let (interner_entries, interner_bytes) = engine.interner_stats();
    ReprSweepRow {
        experiment: w.experiment,
        representation: "interned+col",
        rows_in: w.feed.len(),
        rows_out: collector.take().len(),
        feed_secs,
        state_key_bytes: engine.state_key_bytes(),
        interner_entries,
        interner_bytes,
    }
}

/// One cell of the C1 columnar sweep: a paper workload replayed at one
/// batch size down one execution path.
#[derive(Debug, Clone)]
pub struct ColumnarSweepRow {
    /// Experiment label (`E1` / `E6` / `E10`).
    pub experiment: &'static str,
    /// Execution path label (`row` / `columnar`).
    pub path: &'static str,
    /// Feed batch size.
    pub batch: usize,
    /// Tuples fed.
    pub rows_in: usize,
    /// Tuples the collected query produced.
    pub rows_out: usize,
    /// Feed-phase wall time in seconds (planning, workload generation
    /// and chunk materialization excluded).
    pub feed_secs: f64,
    /// Allocator round-trips per fed tuple during the feed phase, if
    /// the measuring binary installed
    /// [`count_alloc::CountingAlloc`](crate::count_alloc::CountingAlloc)
    /// as its global allocator (`None` otherwise).
    pub allocs_per_tuple: Option<f64>,
}

/// Replay `w` through one engine in `batch`-sized [`Engine::push_batch`]
/// chunks, on the row or the columnar path. The chunks are materialized
/// as owned rows *before* the clock starts so the timed (and
/// alloc-counted) window sees engine work only, not feed cloning.
pub fn run_columnar_sweep(w: &ShardWorkload, batch: usize, columnar: bool) -> ColumnarSweepRow {
    let mut engine = Engine::new();
    engine.set_columnar(columnar);
    execute_script(&mut engine, &w.ddl).expect("static script plans");
    let q = execute(&mut engine, &w.query).expect("static query plans");
    let collector = q.collector().expect("collected query").clone();
    let mut chunks: Vec<Vec<(String, Vec<Value>)>> =
        w.feed.chunks(batch.max(1)).map(|c| c.to_vec()).collect();
    let start = std::time::Instant::now();
    let ((), allocs) = crate::count_alloc::measure(|| {
        for chunk in chunks.drain(..) {
            engine.push_batch(chunk).expect("feed");
        }
    });
    let feed_secs = start.elapsed().as_secs_f64();
    ColumnarSweepRow {
        experiment: w.experiment,
        path: if columnar { "columnar" } else { "row" },
        batch,
        rows_in: w.feed.len(),
        rows_out: collector.take().len(),
        feed_secs,
        allocs_per_tuple: allocs.map(|a| a as f64 / w.feed.len().max(1) as f64),
    }
}

/// Replay `w` through a [`ShardedEngine`] at `shards` workers; returns
/// the scaling row plus the router's merged metrics snapshot (router
/// counters and per-shard engine metrics under a `shard` label).
pub fn run_shard_scale(w: &ShardWorkload, shards: usize) -> (ShardScaleRow, MetricsSnapshot) {
    let ddl = w.ddl.clone();
    let query = w.query.clone();
    let mut se = ShardedEngine::build(shards, 1024, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected query").clone()])
    })
    .expect("sharded build");
    for (stream, values) in &w.feed {
        se.push(stream, values.clone()).expect("route");
    }
    se.flush().expect("flush");
    let rows_out = se.take_output(0).expect("merge slot").len();
    let per_shard_routed = se.shard_stats().iter().map(|s| s.routed).collect();
    let metrics = se.metrics_snapshot();
    se.stop().expect("clean stop");
    (
        ShardScaleRow {
            experiment: w.experiment,
            shards,
            rows_in: w.feed.len(),
            rows_out,
            per_shard_routed,
        },
        metrics,
    )
}

/// One row of the F1 fault sweep: a seeded [`FaultPlan`] fired over a
/// shard workload, checked differentially against the uninterrupted
/// single-engine run.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Experiment label.
    pub experiment: &'static str,
    /// Worker shards.
    pub shards: usize,
    /// Fault-plan seed.
    pub seed: u64,
    /// Tuples routed in.
    pub rows_in: usize,
    /// Tuples in the merged (recovered) output.
    pub rows_out: usize,
    /// Whether the recovered output equals the uninterrupted reference
    /// exactly (rows, timestamps, order).
    pub matches_reference: bool,
    /// Rendered fault schedule.
    pub faults: Vec<String>,
    /// Shard restarts performed (`eslev_shard_restarts_total`).
    pub restarts: u64,
    /// Journal entries replayed (`eslev_replayed_tuples_total`).
    pub replayed: u64,
    /// Checkpoint rounds (`eslev_checkpoints_total`).
    pub checkpoints: u64,
}

/// Replay `w` through a [`ShardedEngine`] under the faults of
/// `FaultPlan::seeded(seed, ...)` — worker panics, a malformed row, a
/// stale watermark, a mid-feed checkpoint — and compare the recovered
/// merged output against the uninterrupted single-engine reference.
pub fn run_fault_sweep(w: &ShardWorkload, shards: usize, seed: u64) -> FaultSweepRow {
    let plan = FaultPlan::seeded(seed, shards, w.feed.len() as u64);
    // Reference: one engine, no faults except the mirrored malformed
    // rows (which both sides dead-letter).
    let reference: Vec<(Vec<Value>, Timestamp)> = {
        let mut engine = Engine::new();
        execute_script(&mut engine, &w.ddl).expect("ddl plans");
        let q = execute(&mut engine, &w.query).expect("query plans");
        let out = q.collector().expect("collected query").clone();
        let mut cause = 1u64;
        for (stream, values) in &w.feed {
            let mut row = values.clone();
            loop {
                plan.corrupt_only(cause, &mut row);
                let consumed = plan.consumed_at(cause);
                if consumed == 0 {
                    break;
                }
                cause += consumed;
            }
            let _ = engine.push(stream, row);
            cause += 1;
        }
        out.take()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect()
    };
    let ddl = w.ddl.clone();
    let query = w.query.clone();
    let mut se = ShardedEngine::build(shards, 1024, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected query").clone()])
    })
    .expect("sharded build");
    for (stream, values) in &w.feed {
        let mut row = values.clone();
        loop {
            let cause = se.next_cause();
            plan.apply(&mut se, cause, &mut row).expect("fault fires");
            if se.next_cause() == cause {
                break;
            }
        }
        se.push(stream, row).expect("route");
    }
    se.flush().expect("flush recovers crashed shards");
    let got: Vec<(Vec<Value>, Timestamp)> = se
        .take_output(0)
        .expect("merge slot")
        .into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect();
    let stats = se.recovery_stats();
    se.stop().expect("clean stop after recovery");
    FaultSweepRow {
        experiment: w.experiment,
        shards,
        seed,
        rows_in: w.feed.len(),
        rows_out: got.len(),
        matches_reference: got == reference,
        faults: plan.faults().map(|f| f.to_string()).collect(),
        restarts: stats.restarts,
        replayed: stats.replayed_tuples,
        checkpoints: stats.checkpoints,
    }
}

/// One row of the L1 latency sweep: sampled ingest→emit tuple latency
/// for a paper workload at one engine configuration. One in 64 admitted
/// tuples is stamped at admission (single engine) or at routing time
/// (sharded), and the stamp is closed at sink emission / merged release
/// — see `eslev_dsms::trace`.
#[derive(Debug, Clone)]
pub struct LatencySweepRow {
    /// Experiment label.
    pub experiment: &'static str,
    /// 0 = single in-process engine; otherwise the worker shard count.
    pub shards: usize,
    /// Rows per `push_batch` call (1 = tuple-at-a-time `push`).
    pub batch: usize,
    /// Tuples fed.
    pub rows_in: usize,
    /// Tuples the collected query produced.
    pub rows_out: usize,
    /// Latency samples recorded (the histogram count).
    pub samples: u64,
    /// Approximate latency percentiles, nanoseconds (log-bucket upper
    /// bounds from `eslev_tuple_latency_ns`).
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Feed-phase wall seconds (routing + flush + merge take when
    /// sharded).
    pub feed_secs: f64,
}

fn latency_of(
    snap: &MetricsSnapshot,
    w: &ShardWorkload,
    shards: usize,
    batch: usize,
) -> (u64, u64, u64, u64) {
    let lat = snap
        .histogram("eslev_tuple_latency_ns", &[])
        .unwrap_or_else(|| {
            panic!(
                "{} shards={shards} batch={batch}: no latency histogram",
                w.experiment
            )
        });
    (
        lat.count,
        lat.quantile(0.5),
        lat.quantile(0.9),
        lat.quantile(0.99),
    )
}

/// Replay `w` through one single-threaded engine at `batch` rows per
/// push, reading the sampled ingest→emit latency histogram. Tracing
/// stays off — latency sampling is always on and allocation-free.
pub fn run_latency_single(w: &ShardWorkload, batch: usize) -> LatencySweepRow {
    let mut engine = Engine::new();
    execute_script(&mut engine, &w.ddl).expect("static script plans");
    let q = execute(&mut engine, &w.query).expect("static query plans");
    let collector = q.collector().expect("collected query").clone();
    let start = std::time::Instant::now();
    if batch <= 1 {
        for (stream, values) in &w.feed {
            engine.push(stream, values.clone()).expect("feed");
        }
    } else {
        for chunk in w.feed.chunks(batch) {
            engine.push_batch(chunk.iter().cloned()).expect("feed");
        }
    }
    let feed_secs = start.elapsed().as_secs_f64();
    let snap = engine.metrics_snapshot();
    let (samples, p50_ns, p90_ns, p99_ns) = latency_of(&snap, w, 0, batch);
    LatencySweepRow {
        experiment: w.experiment,
        shards: 0,
        batch,
        rows_in: w.feed.len(),
        rows_out: collector.take().len(),
        samples,
        p50_ns,
        p90_ns,
        p99_ns,
        feed_secs,
    }
}

/// Replay `w` through a [`ShardedEngine`] at `shards` workers and
/// `batch` rows per push, reading the router's route→merged-release
/// latency histogram (closed when [`ShardedEngine::take_output`]
/// releases the merged rows, so it covers the full cross-thread path).
pub fn run_latency_sharded(w: &ShardWorkload, shards: usize, batch: usize) -> LatencySweepRow {
    let ddl = w.ddl.clone();
    let query = w.query.clone();
    let mut se = ShardedEngine::build(shards, 1024, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected query").clone()])
    })
    .expect("sharded build");
    // Poll the merge slot during the feed (every ~256 rows), like a
    // serving loop would — otherwise every stamped tuple waits for one
    // final end-of-run take and the histogram just measures feed time.
    let mut rows_out = 0usize;
    let mut since_poll = 0usize;
    let start = std::time::Instant::now();
    if batch <= 1 {
        for (stream, values) in &w.feed {
            se.push(stream, values.clone()).expect("route");
            since_poll += 1;
            if since_poll >= 256 {
                since_poll = 0;
                rows_out += se.take_output(0).expect("merge slot").len();
            }
        }
    } else {
        for chunk in w.feed.chunks(batch) {
            se.push_batch(chunk.iter().cloned()).expect("route");
            since_poll += chunk.len();
            if since_poll >= 256 {
                since_poll = 0;
                rows_out += se.take_output(0).expect("merge slot").len();
            }
        }
    }
    se.flush().expect("flush");
    rows_out += se.take_output(0).expect("merge slot").len();
    let feed_secs = start.elapsed().as_secs_f64();
    let snap = se.metrics_snapshot();
    let (samples, p50_ns, p90_ns, p99_ns) = latency_of(&snap, w, shards, batch);
    se.stop().expect("clean stop");
    LatencySweepRow {
        experiment: w.experiment,
        shards,
        batch,
        rows_in: w.feed.len(),
        rows_out,
        samples,
        p50_ns,
        p90_ns,
        p99_ns,
        feed_secs,
    }
}

#[cfg(test)]
mod latency_sweep_tests {
    use super::*;

    #[test]
    fn latency_sweep_reports_samples_and_percentiles() {
        let w = shard_workload_e1(400);
        let single = run_latency_single(&w, 1);
        assert!(single.rows_out > 0);
        assert!(single.samples > 0, "1-in-64 sampling must land");
        assert!(single.p50_ns > 0 && single.p50_ns <= single.p99_ns);
        // Batched feed measures the same pipeline.
        let batched = run_latency_single(&w, 64);
        assert_eq!(batched.rows_out, single.rows_out);
        assert!(batched.samples > 0);
        // Sharded: router route→merged-release latency.
        let sharded = run_latency_sharded(&w, 2, 1);
        assert_eq!(sharded.rows_out, single.rows_out);
        assert!(sharded.samples > 0);
        assert!(sharded.p50_ns > 0 && sharded.p50_ns <= sharded.p99_ns);
    }
}

#[cfg(test)]
mod fault_sweep_tests {
    use super::*;

    #[test]
    fn fault_sweep_recovers_identically() {
        for w in [shard_workload_e1(200), shard_workload_e10(4, 3, 2)] {
            for shards in [2usize, 3] {
                let row = run_fault_sweep(&w, shards, 42);
                assert!(
                    row.matches_reference,
                    "{} N={shards}: recovered output diverged",
                    w.experiment
                );
                assert!(row.restarts >= 1, "plan must force at least one restart");
                assert_eq!(row.checkpoints, 1);
            }
        }
    }
}

#[cfg(test)]
mod shard_scale_tests {
    use super::*;

    #[test]
    fn scaling_preserves_output_cardinality() {
        for w in [
            shard_workload_e1(300),
            shard_workload_e6(20),
            shard_workload_e10(5, 3, 2),
        ] {
            let (one, _) = run_shard_scale(&w, 1);
            assert!(one.rows_out > 0, "{}: trivial workload", w.experiment);
            for n in [2usize, 4] {
                let (row, metrics) = run_shard_scale(&w, n);
                assert_eq!(
                    row.rows_out, one.rows_out,
                    "{} diverged at {n} shards",
                    w.experiment
                );
                assert_eq!(row.per_shard_routed.len(), n);
                assert_eq!(row.per_shard_routed.iter().sum::<u64>(), row.rows_in as u64);
                let labeled = metrics
                    .samples
                    .iter()
                    .filter(|s| s.name == "eslev_shard_tuples_total")
                    .count();
                assert_eq!(labeled, n, "one routed counter per shard");
            }
        }
    }
}

// ------------------------------------------------------------------ M1

/// One row of the M1 multi-query sweep: `queries` paper-shaped variants
/// registered on one engine (shared execution on or off), fed the same
/// reading stream, with discarded sinks so only execution cost is
/// measured.
#[derive(Debug, Clone)]
pub struct MultiSweepRow {
    /// Arm label (`shared` / `independent`).
    pub arm: &'static str,
    /// Queries registered.
    pub queries: usize,
    /// Shared chains after registration (0 when sharing is off).
    pub chains: usize,
    /// Tuples fed.
    pub rows_in: usize,
    /// Registration wall time in seconds.
    pub register_secs: f64,
    /// Feed-phase wall time in seconds.
    pub feed_secs: f64,
    /// Bytes held in encoded state keys across all queries at the end.
    pub state_key_bytes: usize,
    /// Total memo hits across all shared chains (0 when sharing is off).
    pub memo_hits: u64,
}

/// The M1 query pool: variant `i` cycles through three paper-shaped
/// families — alias-renamed copies of the E1 dedup query (one shared
/// chain), E6-style 4-stream `SEQ` detectors in three pairing modes
/// (three chains, and by far the heaviest per-tuple work when run
/// independently), and per-reader dashboard transducers (8 reader
/// groups -> 8 chains, each dashboard keeping only a private residual
/// projection).
fn m1_variant(i: usize) -> String {
    if i % 2 == 1 {
        let mode = ["UNRESTRICTED", "CHRONICLE", "RECENT"][(i / 2) % 3];
        let (a, b, c, d) = (
            format!("w{i}"),
            format!("x{i}"),
            format!("y{i}"),
            format!("z{i}"),
        );
        format!(
            "SELECT {a}.tag_id, {d}.read_time FROM c1 AS {a}, c2 AS {b}, c3 AS {c}, c4 AS {d} \
             WHERE SEQ({a}, {b}, {c}, {d}) MODE {mode} \
             AND {a}.tag_id={b}.tag_id AND {a}.tag_id={c}.tag_id AND {a}.tag_id={d}.tag_id"
        )
    } else if i % 4 == 0 {
        let (a, b) = (format!("a{i}"), format!("b{i}"));
        format!(
            "SELECT * FROM readings AS {a} WHERE NOT EXISTS \
             (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS {b} \
              WHERE {b}.reader_id = {a}.reader_id AND {b}.tag_id = {a}.tag_id)"
        )
    } else {
        let group = (i / 4) % 8;
        let items = match i % 3 {
            0 => "tag_id",
            1 => "tag_id, read_time",
            _ => "read_time",
        };
        format!("SELECT {items} FROM readings WHERE reader_id = 'r{group}'")
    }
}

/// Deterministic M1 feed: five-row blocks of one `readings` row (8
/// readers x 50 tags) followed by one full `c1 -> c2 -> c3 -> c4`
/// product pass (tags recycle every 25 products, so every pairing mode
/// keeps multiple live candidates per tag).
pub fn m1_feed(rows: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::with_capacity(rows);
    let mut t = 0usize;
    while feed.len() < rows {
        feed.push((
            "readings".to_string(),
            vec![
                Value::str(format!("r{}", t % 8)),
                Value::str(format!("tag-{}", t % 50)),
                Value::Ts(Timestamp::from_secs((4 * t) as u64)),
            ],
        ));
        for stage in 0..4usize {
            if feed.len() >= rows {
                break;
            }
            feed.push((
                format!("c{}", stage + 1),
                vec![
                    Value::str(format!("s{stage}")),
                    Value::str(format!("tag-{}", t % 25)),
                    Value::Ts(Timestamp::from_secs((4 * t + stage) as u64)),
                ],
            ));
        }
        t += 1;
    }
    feed
}

/// Register `queries` M1 variants on one engine (sharing on or off) and
/// replay `feed`, timing registration and the feed phase separately.
pub fn run_multi_sweep(
    queries: usize,
    shared: bool,
    feed: &[(String, Vec<Value>)],
) -> MultiSweepRow {
    let mut engine = Engine::new();
    engine.set_shared_execution(shared);
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM c1 (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM c2 (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM c3 (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM c4 (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
    )
    .expect("static script plans");
    let start = std::time::Instant::now();
    for i in 0..queries {
        register_with_sink(&mut engine, &m1_variant(i), Sink::Discard).expect("variant plans");
    }
    let register_secs = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    let feed_secs = start.elapsed().as_secs_f64();
    let stats = engine.shared_stats();
    MultiSweepRow {
        arm: if shared { "shared" } else { "independent" },
        queries,
        chains: stats.len(),
        rows_in: feed.len(),
        register_secs,
        feed_secs,
        state_key_bytes: engine.state_key_bytes(),
        memo_hits: stats.iter().map(|s| s.memo_hits).sum(),
    }
}

// ------------------------------------------------------------------ O1

/// E1 duplicate elimination for the O1 disorder sweep: the dedup query
/// subscribes to the tolerant `readings` stream *directly* (no derived
/// `INSERT INTO` hop), so the fast arm's speculation actually observes
/// the out-of-order arrivals instead of the already-restored derived
/// feed.
pub fn disorder_workload_e1(presences: usize) -> ShardWorkload {
    let w = dedup::generate(&dedup::DedupConfig {
        presences,
        duplicate_prob: 0.5,
        ..dedup::DedupConfig::default()
    });
    ShardWorkload {
        experiment: "E1",
        ddl: "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);"
            .to_string(),
        query: "SELECT * FROM readings AS r1
                WHERE NOT EXISTS
                  (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
                   WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)"
            .to_string(),
        feed: w
            .readings
            .iter()
            .map(|r| ("readings".to_string(), r.to_values()))
            .collect(),
    }
}

/// One row of the O1 out-of-order sweep: a paper workload perturbed by
/// the seeded bounded-disorder model and replayed at one reorder slack,
/// once at the consistent level and once at the fast (speculative)
/// level.
#[derive(Debug, Clone)]
pub struct DisorderSweepRow {
    /// Experiment label.
    pub experiment: &'static str,
    /// Perturbation seed.
    pub seed: u64,
    /// Reorder slack, milliseconds.
    pub slack_ms: u64,
    /// Perturbation delay bound, milliseconds.
    pub max_delay_ms: u64,
    /// Tuples fed (after perturbation — same multiset as in order).
    pub rows_in: usize,
    /// Tuples the consistent query produced.
    pub rows_out: usize,
    /// Tuples dead-lettered as late-beyond-slack (consistent arm).
    pub late: u64,
    /// Whether the consistent output equals the in-order reference
    /// byte for byte (expected exactly when `slack_ms >= max_delay_ms`).
    pub matches_reference: bool,
    /// Retraction tuples the fast arm emitted.
    pub retractions: u64,
    /// Whether the fast output, after applying its retractions, equals
    /// the in-order reference (same expectation as `matches_reference`).
    pub fast_reconciles: bool,
    /// Consistent-arm feed-phase wall seconds (push + flush).
    pub feed_secs: f64,
    /// 99th-percentile sampled ingest→emit latency, nanoseconds
    /// (consistent arm; includes reorder-buffer residence).
    pub p99_ns: u64,
}

/// Replay the perturbed `w` at one `(seed, slack)` point: the
/// consistent arm is checked byte-for-byte against the in-order
/// reference, the fast arm is reconciled through its retractions.
pub fn run_disorder_sweep(
    w: &ShardWorkload,
    seed: u64,
    max_delay: Duration,
    slack: Duration,
) -> DisorderSweepRow {
    // In-order reference.
    let reference: Vec<(Vec<Value>, Timestamp)> = {
        let mut engine = Engine::new();
        execute_script(&mut engine, &w.ddl).expect("ddl plans");
        let q = execute(&mut engine, &w.query).expect("query plans");
        let out = q.collector().expect("collected query").clone();
        for (stream, values) in &w.feed {
            engine.push(stream, values.clone()).expect("feed");
        }
        out.take()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect()
    };
    let shuffled = perturb_rows(w.feed.clone(), seed, max_delay);
    let mut streams: Vec<&String> = shuffled.iter().map(|(s, _)| s).collect();
    streams.sort();
    streams.dedup();

    // Consistent arm: reorder buffer restores order, late tuples
    // dead-letter.
    let (rows_out, late, matches_reference, feed_secs, p99_ns) = {
        let mut engine = Engine::new();
        execute_script(&mut engine, &w.ddl).expect("ddl plans");
        for s in &streams {
            engine
                .set_disorder_tolerance(s, slack)
                .expect("tolerant stream");
        }
        let q = execute(&mut engine, &w.query).expect("query plans");
        let out = q.collector().expect("collected query").clone();
        let start = std::time::Instant::now();
        for (stream, values) in &shuffled {
            engine.push(stream, values.clone()).expect("feed");
        }
        engine.flush_disorder().expect("flush disorder");
        let feed_secs = start.elapsed().as_secs_f64();
        let got: Vec<(Vec<Value>, Timestamp)> = out
            .take()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        let p99_ns = engine
            .metrics_snapshot()
            .histogram("eslev_tuple_latency_ns", &[])
            .map_or(0, |h| h.quantile(0.99));
        (
            got.len(),
            engine.late_tuples(),
            got == reference,
            feed_secs,
            p99_ns,
        )
    };

    // Fast arm: speculative emission + retractions, reconciled.
    let (retractions, fast_reconciles) = {
        let mut engine = Engine::new();
        execute_script(&mut engine, &w.ddl).expect("ddl plans");
        for s in &streams {
            engine
                .set_disorder_tolerance(s, slack)
                .expect("tolerant stream");
        }
        let fast_query = format!("{} CONSISTENCY FAST", w.query);
        let q = execute(&mut engine, &fast_query).expect("fast query plans");
        let out = q.collector().expect("collected query").clone();
        for (stream, values) in &shuffled {
            engine.push(stream, values.clone()).expect("feed");
        }
        engine.flush_disorder().expect("flush disorder");
        let mut live: Vec<Tuple> = Vec::new();
        let mut retractions = 0u64;
        for t in out.take() {
            if t.is_retraction() {
                retractions += 1;
                if let Some(pos) = live.iter().rposition(|p| {
                    p.values() == t.values() && p.ts() == t.ts() && p.seq() == t.seq()
                }) {
                    live.remove(pos);
                }
            } else {
                live.push(t);
            }
        }
        let reconciled: Vec<(Vec<Value>, Timestamp)> = live
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        (retractions, reconciled == reference)
    };

    DisorderSweepRow {
        experiment: w.experiment,
        seed,
        slack_ms: slack.as_micros() / 1_000,
        max_delay_ms: max_delay.as_micros() / 1_000,
        rows_in: shuffled.len(),
        rows_out,
        late,
        matches_reference,
        retractions,
        fast_reconciles,
        feed_secs,
        p99_ns,
    }
}

#[cfg(test)]
mod disorder_sweep_tests {
    use super::*;

    #[test]
    fn sweep_matches_reference_at_sufficient_slack() {
        let delay = Duration::from_secs(2);
        for w in [disorder_workload_e1(300), shard_workload_e10(5, 4, 3)] {
            // Slack == bound: lossless restore, byte-identical output.
            let row = run_disorder_sweep(&w, 29, delay, delay);
            assert!(
                row.matches_reference,
                "{}: consistent diverged",
                w.experiment
            );
            assert!(
                row.fast_reconciles,
                "{}: fast failed to reconcile",
                w.experiment
            );
            assert_eq!(row.late, 0);
            assert!(
                row.retractions > 0,
                "{}: disorder must provoke retractions",
                w.experiment
            );
        }
        // Slack 0 on the single-stream E1: disorder lands as late dead
        // letters. (Multi-stream workloads keep a natural cross-stream
        // buffer — the release bound is the min across streams — so
        // zero slack does not force drops there.)
        let row = run_disorder_sweep(
            &disorder_workload_e1(300),
            29,
            delay,
            Duration::from_micros(0),
        );
        assert!(row.late > 0, "zero slack must shed tuples");
        assert!(row.rows_out < row.rows_in);
    }
}
