//! Steady-state allocation budget for the E1 hot loop on the
//! **columnar** batch path.
//!
//! Same protocol as `alloc_budget.rs` (which pins the row path): warm
//! the dictionary and every map with the first half of the feed, then
//! count allocations over the second half. The columnar path feeds in
//! batch-64 `push_batch_to` chunks — rows convert to one `ColumnBatch`
//! per chunk, the select/dedup kernels run over columns, and output
//! rows materialize only for admitted tuples — so its per-tuple
//! average must come in at or under the row path's budget (13/tuple);
//! a columnar path that allocates *more* than row-at-a-time execution
//! would defeat its purpose. Observed steady state at budget-setting
//! time: ~2.0 allocs/tuple at batch 64 — roughly 4× under the row
//! path's ~8.5 (kernel admission skips per-tuple key boxing, and the
//! batch conversion interns whole columns instead of canonicalizing
//! string values one at a time at ingest). The observed value is
//! printed so harness runs can record it next to the row number.
//!
//! Separate file = separate test process: the allocation counter is
//! process-global, so each measuring `#[test]` gets its own binary
//! (see `eslev_bench::count_alloc`).

use eslev_bench::count_alloc::{measure, CountingAlloc};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Same ceiling as the row path: columnar must not allocate more.
const BUDGET_ALLOCS_PER_TUPLE: f64 = 13.0;

#[test]
fn e1_columnar_steady_state_allocs_per_tuple_within_budget() {
    let (mut engine, readings) = eslev_bench::e1_setup(0.5, 2_000);
    engine.set_columnar(true);
    // Materialize the feed into batch-64 chunks up front: `to_values`
    // allocates row vectors and strings, which is feed-generation
    // cost, not engine cost.
    let rows: Vec<Vec<eslev_dsms::value::Value>> = readings.iter().map(|r| r.to_values()).collect();
    let total = rows.len();
    let chunks: Vec<Vec<Vec<eslev_dsms::value::Value>>> =
        rows.chunks(64).map(|c| c.to_vec()).collect();
    let half = chunks.len() / 2;
    let mut measured = 0u64;
    let mut it = chunks.into_iter();

    // Warm-up: first half fills the dedup map, the EXISTS window, the
    // interner dictionary, and the batch conversion scratch.
    for chunk in it.by_ref().take(half) {
        engine.push_batch_to("readings", chunk).expect("feed");
    }

    let ((), allocs) = measure(|| {
        for chunk in it {
            measured += chunk.len() as u64;
            engine.push_batch_to("readings", chunk).expect("feed");
        }
    });
    let allocs = allocs.expect("counting allocator is installed in this binary");

    let per_tuple = allocs as f64 / measured as f64;
    eprintln!(
        "E1 columnar steady state (batch 64): {per_tuple:.2} allocs/tuple \
         ({allocs}/{measured}, feed {total} rows)"
    );
    assert!(measured > 1_000, "workload too small to be steady state");
    assert!(
        per_tuple <= BUDGET_ALLOCS_PER_TUPLE,
        "E1 columnar steady state allocated {per_tuple:.2} times per tuple \
         ({allocs} allocations over {measured} tuples), budget is \
         {BUDGET_ALLOCS_PER_TUPLE}"
    );
}
