//! Steady-state allocation budget for the E1 hot loop.
//!
//! The interned representation exists to keep the per-tuple path off
//! the allocator: admission canonicalizes strings against a warm
//! dictionary (hash probe, no clone), dedup probes its key map through
//! a reusable scratch buffer, and only genuine state growth boxes a new
//! key. This test pins that property with a counting global allocator:
//! feed the first half of an E1 workload to warm every map and the
//! dictionary, then count allocations over the second half and assert
//! the per-tuple average stays under a fixed budget.
//!
//! The budget (13 allocations/tuple) is ~1.5× the observed steady
//! state (~8.5/tuple: tuple construction for admitted rows and the
//! derived-stream re-push dominate), so real regressions — an
//! allocation reintroduced per probe or per admission — blow through it
//! while allocator-placement noise does not.
//!
//! The same test also pins the flight recorder's disabled cost at
//! exactly zero allocations per tuple: a second engine that had tracing
//! enabled and then disabled again must allocate *identically* to one
//! that never touched it — `FlightRecorder::record` takes lazy closures
//! precisely so the disabled path is one relaxed load, no argument
//! construction, no allocation.
//!
//! One `#[test]` only: the counter is process-global, and a second
//! concurrently running test would pollute the measured window.

use eslev_bench::count_alloc::{CountingAlloc, ALLOCS, COUNTING};
use std::sync::atomic::Ordering;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations per tuple the steady-state E1 feed may average.
const BUDGET_ALLOCS_PER_TUPLE: f64 = 13.0;

#[test]
fn e1_steady_state_allocs_per_tuple_within_budget() {
    let (mut engine, readings) = eslev_bench::e1_setup(0.5, 2_000);
    // Materialize every row up front: `to_values` allocates the row
    // vector and its strings, which is feed-generation cost, not engine
    // cost — it must not land in the measured window.
    let rows: Vec<Vec<eslev_dsms::value::Value>> = readings.iter().map(|r| r.to_values()).collect();
    let half = rows.len() / 2;
    let mut it = rows.into_iter();

    // Warm-up: first half fills the dedup map, the EXISTS window and
    // the interner dictionary, and settles map capacities.
    for values in it.by_ref().take(half) {
        engine.push("readings", values).expect("feed");
    }

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let mut measured = 0u64;
    for values in it {
        engine.push("readings", values).expect("feed");
        measured += 1;
    }
    COUNTING.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let per_tuple = allocs as f64 / measured as f64;
    eprintln!("E1 steady state: {per_tuple:.2} allocs/tuple ({allocs}/{measured})");
    assert!(measured > 1_000, "workload too small to be steady state");
    assert!(
        per_tuple <= BUDGET_ALLOCS_PER_TUPLE,
        "E1 steady state allocated {per_tuple:.2} times per tuple \
         ({allocs} allocations over {measured} tuples), budget is \
         {BUDGET_ALLOCS_PER_TUPLE}"
    );

    // Tracing-off overhead: an engine whose flight recorder was enabled
    // and then disabled must allocate exactly like one that never
    // traced — 0 additional allocations per tuple. The workload is
    // deterministic and the measured windows are identical, so the
    // counts must match to the allocation.
    let baseline = measure_steady_state_allocs(false);
    let toggled = measure_steady_state_allocs(true);
    eprintln!("tracing-off overhead: baseline {baseline} vs toggled {toggled} allocs");
    assert_eq!(
        toggled, baseline,
        "disabled tracing must add 0 allocations/tuple \
         (baseline {baseline}, after enable+disable {toggled})"
    );
}

/// Steady-state allocation count over the second half of the E1 feed.
/// With `toggle_tracing`, the flight recorder is enabled and disabled
/// again before the measured window — the recorder ring then exists
/// (capacity allocated up front) but the per-tuple path must not touch
/// it.
fn measure_steady_state_allocs(toggle_tracing: bool) -> u64 {
    let (mut engine, readings) = eslev_bench::e1_setup(0.5, 2_000);
    if toggle_tracing {
        engine.set_tracing(true);
        engine.set_tracing(false);
    }
    let rows: Vec<Vec<eslev_dsms::value::Value>> = readings.iter().map(|r| r.to_values()).collect();
    let half = rows.len() / 2;
    let mut it = rows.into_iter();
    for values in it.by_ref().take(half) {
        engine.push("readings", values).expect("feed");
    }
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for values in it {
        engine.push("readings", values).expect("feed");
    }
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}
