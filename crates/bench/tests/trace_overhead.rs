//! Feed-phase wall-time budget for disabled tracing.
//!
//! The flight recorder must be free when off: `FlightRecorder::record`
//! takes a lazy closure and bails on one relaxed atomic load, and the
//! 1-in-64 latency stamps are integer masks. This test feeds the same
//! E1 workload through an engine that never traced and one whose
//! recorder was enabled and then disabled again, and requires the
//! toggled engine's best-of-N feed time to stay within 5% of the
//! baseline.
//!
//! Wall-clock comparisons on shared CI machines are noisy, so each
//! attempt interleaves the two configurations rep-by-rep (transient
//! noise hits both equally) and keeps the best of 7; the 5% gate gets a
//! few attempts before the test fails.

use std::time::Instant;

/// Allowed feed-phase slowdown of tracing-disabled vs never-traced.
const BUDGET: f64 = 1.05;

fn feed_secs(toggle_tracing: bool) -> f64 {
    let (mut engine, readings) = eslev_bench::e1_setup(0.5, 20_000);
    if toggle_tracing {
        engine.set_tracing(true);
        engine.set_tracing(false);
    }
    let rows: Vec<Vec<eslev_dsms::value::Value>> = readings.iter().map(|r| r.to_values()).collect();
    let start = Instant::now();
    for values in rows {
        engine.push("readings", values).expect("feed");
    }
    start.elapsed().as_secs_f64()
}

#[test]
fn tracing_disabled_feed_phase_within_five_percent() {
    let mut last = (0.0, 0.0);
    for attempt in 1..=4 {
        let mut baseline = f64::INFINITY;
        let mut toggled = f64::INFINITY;
        for _ in 0..7 {
            baseline = baseline.min(feed_secs(false));
            toggled = toggled.min(feed_secs(true));
        }
        let ratio = toggled / baseline;
        eprintln!(
            "attempt {attempt}: baseline {baseline:.4}s, \
             tracing-off {toggled:.4}s, ratio {ratio:.3}"
        );
        if ratio <= BUDGET {
            return;
        }
        last = (baseline, toggled);
    }
    panic!(
        "tracing-disabled feed phase stayed above {BUDGET}x the no-trace \
         baseline across attempts (last: baseline {:.4}s, toggled {:.4}s)",
        last.0, last.1
    );
}
