//! # eslev-baseline — comparator systems
//!
//! The two architectures the paper positions ESL-EV against, built so the
//! benchmarks can quantify the comparison rather than assert it:
//!
//! * [`rceda`] — a standalone graph-based composite-event engine in the
//!   style of the paper's reference \[23\] (RCEDA) and Snoop: bottom-up
//!   instance propagation, consumption contexts instead of windows, all
//!   timing constraints as post-hoc predicates.
//! * [`naive_join`] — fixed-length sequence detection as a windowed
//!   k-way self-join (footnote 3): semantically UNRESTRICTED, but paying
//!   full enumeration per final-element arrival, and structurally unable
//!   to express `a+ b` repetitions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod naive_join;
pub mod rceda;

/// One-stop imports for the baselines.
pub mod prelude {
    pub use crate::naive_join::NaiveJoinSeq;
    pub use crate::rceda::{Context, EventExpr, EventInstance, RcedaEngine, RootPredicate};
}
