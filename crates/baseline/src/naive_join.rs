//! Fixed-length sequence detection via windowed k-way self-join — "what
//! SQL can do today" (§2.2 and footnote 3 of the paper).
//!
//! For `SEQ(C1, ..., Ck)`: keep the full (windowed) history of each
//! stream; when a `Ck` tuple arrives, join it against every combination
//! of earlier tuples, applying the timestamp-ordering predicates and any
//! equality condition per combination. This is semantically UNRESTRICTED
//! detection, but pays the full enumeration cost per final-element
//! arrival (no partitioned state, no incremental runs).
//!
//! Repeating patterns (`a+ b`, Example 4) are **inexpressible** — the
//! number of joins would have to vary per match; [`NaiveJoinSeq::new`]
//! only accepts fixed-length patterns, documenting the paper's central
//! argument in the type system.

use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::time::{Duration, Timestamp};
use eslev_dsms::tuple::Tuple;
use eslev_dsms::window::WindowBuffer;

/// The k-way self-join sequence detector.
pub struct NaiveJoinSeq {
    arity: usize,
    /// Equality column applied across all streams (e.g. `tagid`), checked
    /// per enumerated combination — the join-predicate way, not the
    /// partitioned way.
    key_column: Option<usize>,
    /// `RANGE window PRECEDING` on every stream history.
    window: Option<Duration>,
    histories: Vec<WindowBuffer>,
    emitted: u64,
    /// Combinations enumerated (the work metric).
    enumerated: u64,
}

impl NaiveJoinSeq {
    /// Build a detector for a fixed-length `SEQ` over `arity` streams.
    pub fn new(
        arity: usize,
        key_column: Option<usize>,
        window: Option<Duration>,
    ) -> Result<NaiveJoinSeq> {
        if arity < 2 {
            return Err(DsmsError::plan("join sequence needs at least 2 streams"));
        }
        Ok(NaiveJoinSeq {
            arity,
            key_column,
            window,
            histories: (0..arity).map(|_| WindowBuffer::new()).collect(),
            emitted: 0,
            enumerated: 0,
        })
    }

    /// Number of input streams.
    pub fn num_ports(&self) -> usize {
        self.arity
    }

    /// Tuples retained across all histories.
    pub fn retained(&self) -> usize {
        self.histories.iter().map(|h| h.len()).sum()
    }

    /// Matches emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Combinations enumerated so far (includes rejected ones — the cost
    /// the paper's modes avoid).
    pub fn enumerated(&self) -> u64 {
        self.enumerated
    }

    fn expire(&mut self, now: Timestamp) {
        if let Some(w) = self.window {
            let bound = now.saturating_sub(w);
            for h in &mut self.histories {
                h.expire_before(bound);
            }
        }
    }

    /// Feed one tuple. Arrivals on the final stream trigger the join and
    /// return complete matches (each `Vec` has `arity` tuples in order).
    pub fn on_tuple(&mut self, port: usize, t: &Tuple) -> Result<Vec<Vec<Tuple>>> {
        if port >= self.arity {
            return Err(DsmsError::plan(format!("port {port} out of range")));
        }
        self.expire(t.ts());
        if port < self.arity - 1 {
            self.histories[port].push(t.clone());
            return Ok(Vec::new());
        }
        // Final stream: enumerate the cross product with predicates.
        let mut out = Vec::new();
        let mut combo: Vec<Tuple> = Vec::with_capacity(self.arity);
        self.enumerate(0, t, &mut combo, &mut out);
        self.emitted += out.len() as u64;
        Ok(out)
    }

    fn enumerate(
        &mut self,
        depth: usize,
        last: &Tuple,
        combo: &mut Vec<Tuple>,
        out: &mut Vec<Vec<Tuple>>,
    ) {
        if depth == self.arity - 1 {
            self.enumerated += 1;
            // Ordering predicate vs. the previous element, equality key
            // vs. the first element — exactly the WHERE clause of the
            // footnote-3 join.
            let prev = combo.last().expect("depth > 0 here");
            if !last.after(prev) {
                return;
            }
            if let Some(k) = self.key_column {
                if combo[0].value(k).sql_eq(last.value(k)) != Some(true) {
                    return;
                }
            }
            let mut m = combo.clone();
            m.push(last.clone());
            out.push(m);
            return;
        }
        // Clone the candidate list to sidestep aliasing with &mut self —
        // the copy is itself part of the naive cost.
        let candidates: Vec<Tuple> = self.histories[depth].iter().cloned().collect();
        for cand in candidates {
            self.enumerated += 1;
            if let Some(prev) = combo.last() {
                if !cand.after(prev) {
                    continue;
                }
            }
            if depth > 0 {
                if let Some(k) = self.key_column {
                    if combo[0].value(k).sql_eq(cand.value(k)) != Some(true) {
                        continue;
                    }
                }
            }
            // Every earlier element must precede the completing tuple.
            if !last.after(&cand) {
                continue;
            }
            combo.push(cand);
            self.enumerate(depth + 1, last, combo, out);
            combo.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(vec![Value::str("k")], Timestamp::from_secs(secs), seq)
    }

    fn tagged(tag: &str, secs: u64, seq: u64) -> Tuple {
        Tuple::new(vec![Value::str(tag)], Timestamp::from_secs(secs), seq)
    }

    #[test]
    fn worked_example_matches_unrestricted() {
        let mut j = NaiveJoinSeq::new(4, None, None).unwrap();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        let mut matches = Vec::new();
        for (i, (port, secs)) in history.iter().enumerate() {
            matches.extend(j.on_tuple(*port, &t(*secs, i as u64)).unwrap());
        }
        assert_eq!(matches.len(), 4, "same events as UNRESTRICTED");
        assert!(j.enumerated() > 4, "but with extra enumeration work");
    }

    #[test]
    fn key_equality_applied_per_combination() {
        let mut j = NaiveJoinSeq::new(2, Some(0), None).unwrap();
        j.on_tuple(0, &tagged("a", 1, 0)).unwrap();
        j.on_tuple(0, &tagged("b", 2, 1)).unwrap();
        let m = j.on_tuple(1, &tagged("a", 3, 2)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0][0].value(0), &Value::str("a"));
        // Both candidates were enumerated even though one failed.
        assert!(j.enumerated() >= 2);
    }

    #[test]
    fn window_bounds_history() {
        let mut j = NaiveJoinSeq::new(2, None, Some(Duration::from_secs(10))).unwrap();
        for i in 0..100u64 {
            j.on_tuple(0, &t(i, i)).unwrap();
        }
        assert!(j.retained() <= 11, "retained {}", j.retained());
        let m = j.on_tuple(1, &t(100, 100)).unwrap();
        // Only tuples in [90, 100] remain; all strictly precede t=100.
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn unwindowed_history_grows() {
        let mut j = NaiveJoinSeq::new(3, None, None).unwrap();
        for i in 0..500u64 {
            j.on_tuple((i % 2) as usize, &t(i, i)).unwrap();
        }
        assert_eq!(j.retained(), 500);
    }

    #[test]
    fn cross_product_cost_is_quadratic() {
        let mut j = NaiveJoinSeq::new(3, None, None).unwrap();
        for i in 0..20u64 {
            j.on_tuple(0, &t(i, i)).unwrap();
        }
        for i in 20..40u64 {
            j.on_tuple(1, &t(i, i)).unwrap();
        }
        let m = j.on_tuple(2, &t(100, 100)).unwrap();
        assert_eq!(m.len(), 400);
        assert!(j.enumerated() >= 400);
    }

    #[test]
    fn rejects_degenerate_patterns() {
        assert!(NaiveJoinSeq::new(1, None, None).is_err());
    }

    #[test]
    fn ordering_strictly_enforced() {
        let mut j = NaiveJoinSeq::new(2, None, None).unwrap();
        j.on_tuple(0, &t(5, 0)).unwrap();
        // Simultaneous-but-later-seq counts as after; earlier seq does not.
        let same_ts_later = Tuple::new(vec![Value::str("k")], Timestamp::from_secs(5), 1);
        assert_eq!(j.on_tuple(1, &same_ts_later).unwrap().len(), 1);
        let mut j = NaiveJoinSeq::new(2, None, None).unwrap();
        j.on_tuple(
            0,
            &Tuple::new(vec![Value::str("k")], Timestamp::from_secs(5), 7),
        )
        .unwrap();
        let same_ts_earlier = Tuple::new(vec![Value::str("k")], Timestamp::from_secs(5), 3);
        assert_eq!(j.on_tuple(1, &same_ts_earlier).unwrap().len(), 0);
    }
}
