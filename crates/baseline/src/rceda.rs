//! RCEDA-style graph-based composite event engine — the standalone
//! comparator of the paper's §1 (reference \[23\], in the tradition of
//! Snoop \[10\]).
//!
//! Architecture, reproduced deliberately including its weaknesses the
//! paper calls out:
//!
//! * an **event graph**: primitive-event leaves feeding binary operator
//!   nodes (`SEQ2`, `AND`, `OR`) and a unary `KLEENE` node, with event
//!   instances propagated bottom-up;
//! * **no native windows** — timing constraints are ordinary predicates
//!   checked *post hoc* on fully assembled instances at the root ("could
//!   require complex condition-checking", §1);
//! * **consumption contexts** (unrestricted / recent) instead of window
//!   purging: under the unrestricted context, node state grows without
//!   bound — the memory behaviour experiment E9 measures.

use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;
use std::sync::Arc;

/// An assembled (partial or complete) composite event instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventInstance {
    /// Constituent tuples in temporal order.
    pub tuples: Vec<Tuple>,
    /// Earliest constituent time.
    pub start: Timestamp,
    /// Latest constituent time.
    pub end: Timestamp,
}

impl EventInstance {
    fn from_tuple(t: &Tuple) -> EventInstance {
        EventInstance {
            tuples: vec![t.clone()],
            start: t.ts(),
            end: t.ts(),
        }
    }

    fn combine(a: &EventInstance, b: &EventInstance) -> EventInstance {
        let mut tuples = Vec::with_capacity(a.tuples.len() + b.tuples.len());
        tuples.extend_from_slice(&a.tuples);
        tuples.extend_from_slice(&b.tuples);
        EventInstance {
            tuples,
            start: a.start.min(b.start),
            end: a.end.max(b.end),
        }
    }
}

/// Event consumption context (Snoop terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    /// Keep every instance; all combinations fire.
    Unrestricted,
    /// Keep only the most recent instance per operand.
    Recent,
    /// Consume instances on use (each participates once).
    Chronicle,
}

/// Declarative event-graph node.
#[derive(Debug, Clone)]
pub enum EventExpr {
    /// Arrival on an input port.
    Primitive(usize),
    /// `SEQ2(a, b)` — `b` strictly after `a`.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// Both occurred (any order).
    And(Box<EventExpr>, Box<EventExpr>),
    /// Either occurred.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// One-or-more repetitions of the child, closed by the enclosing
    /// `Seq`'s right operand.
    Kleene(Box<EventExpr>),
}

impl EventExpr {
    /// Left-deep `SEQ` chain over ports `0..n` — the shape the paper's
    /// `SEQ(E1, ..., En)` compiles to in a binary-operator engine.
    pub fn seq_chain(n: usize) -> EventExpr {
        assert!(n >= 2, "sequence needs two events");
        let mut e = EventExpr::Primitive(0);
        for p in 1..n {
            e = EventExpr::Seq(Box::new(e), Box::new(EventExpr::Primitive(p)));
        }
        e
    }
}

/// Post-hoc predicate applied to root instances (where RCEDA-style
/// engines express *all* timing constraints).
pub type RootPredicate = Arc<dyn Fn(&EventInstance) -> bool + Send + Sync>;

enum Node {
    Primitive {
        port: usize,
    },
    Seq {
        left: usize,
        right: usize,
        left_store: Vec<EventInstance>,
    },
    And {
        left: usize,
        right: usize,
        left_store: Vec<EventInstance>,
        right_store: Vec<EventInstance>,
    },
    Or {
        left: usize,
        right: usize,
    },
    Kleene {
        child: usize,
        group: Vec<EventInstance>,
    },
}

/// The graph engine.
pub struct RcedaEngine {
    nodes: Vec<Node>,
    root: usize,
    context: Context,
    predicate: Option<RootPredicate>,
    ports: usize,
    emitted: u64,
}

impl RcedaEngine {
    /// Compile an event expression into a graph.
    pub fn new(
        expr: &EventExpr,
        context: Context,
        predicate: Option<RootPredicate>,
    ) -> Result<RcedaEngine> {
        let mut nodes = Vec::new();
        let mut ports = 0usize;
        let root = build(expr, &mut nodes, &mut ports)?;
        Ok(RcedaEngine {
            nodes,
            root,
            context,
            predicate,
            ports,
            emitted: 0,
        })
    }

    /// Number of input ports.
    pub fn num_ports(&self) -> usize {
        self.ports
    }

    /// Instances retained across all node stores (the unbounded-history
    /// metric).
    pub fn retained(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Primitive { .. } | Node::Or { .. } => 0,
                Node::Seq { left_store, .. } => left_store.iter().map(|i| i.tuples.len()).sum(),
                Node::And {
                    left_store,
                    right_store,
                    ..
                } => left_store
                    .iter()
                    .chain(right_store.iter())
                    .map(|i| i.tuples.len())
                    .sum(),
                Node::Kleene { group, .. } => group.iter().map(|i| i.tuples.len()).sum(),
            })
            .sum()
    }

    /// Root events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Feed one tuple; returns complete root events passing the post-hoc
    /// predicate.
    pub fn on_tuple(&mut self, port: usize, t: &Tuple) -> Vec<EventInstance> {
        let instance = EventInstance::from_tuple(t);
        let raw = self.propagate_from_leaves(port, instance);
        let out: Vec<EventInstance> = raw
            .into_iter()
            .filter(|i| self.predicate.as_ref().is_none_or(|p| p(i)))
            .collect();
        self.emitted += out.len() as u64;
        out
    }

    fn propagate_from_leaves(&mut self, port: usize, inst: EventInstance) -> Vec<EventInstance> {
        // Find the leaf indexes for this port, then propagate upward
        // level by level. The graph is a tree, so each node has a single
        // parent; we walk nodes in index order (children are always built
        // before parents) carrying per-node pending outputs.
        let n = self.nodes.len();
        let mut pending: Vec<Vec<EventInstance>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Primitive { port: p } = node {
                if *p == port {
                    pending[i].push(inst.clone());
                }
            }
        }
        for i in 0..n {
            if pending[i].is_empty() {
                continue;
            }
            let outs = std::mem::take(&mut pending[i]);
            // Feed `outs` to the parent of node i (if any).
            let Some((parent, is_left)) = self.parent_of(i) else {
                pending[i] = outs; // root keeps them
                continue;
            };
            let produced = self.feed(parent, is_left, outs);
            pending[parent].extend(produced);
            if parent == self.root && i != self.root {
                // Parent outputs handled when we reach its index; since
                // parents have larger indexes, the loop order suffices.
            }
        }
        std::mem::take(&mut pending[self.root])
    }

    fn parent_of(&self, idx: usize) -> Option<(usize, bool)> {
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Seq { left, right, .. }
                | Node::And { left, right, .. }
                | Node::Or { left, right } => {
                    if *left == idx {
                        return Some((i, true));
                    }
                    if *right == idx {
                        return Some((i, false));
                    }
                }
                Node::Kleene { child, .. } => {
                    if *child == idx {
                        return Some((i, true));
                    }
                }
                Node::Primitive { .. } => {}
            }
        }
        None
    }

    fn feed(
        &mut self,
        node: usize,
        is_left: bool,
        insts: Vec<EventInstance>,
    ) -> Vec<EventInstance> {
        let context = self.context;
        match &mut self.nodes[node] {
            Node::Primitive { .. } => insts,
            Node::Or { .. } => insts,
            Node::Kleene { group, .. } => {
                // Accumulate; the enclosing Seq reads the group when its
                // right operand fires (exposed via take_kleene_group).
                group.extend(insts);
                Vec::new()
            }
            Node::Seq { left_store, .. } => {
                if is_left {
                    match context {
                        Context::Recent => {
                            left_store.clear();
                            if let Some(last) = insts.into_iter().next_back() {
                                left_store.push(last);
                            }
                        }
                        _ => left_store.extend(insts),
                    }
                    Vec::new()
                } else {
                    let mut out = Vec::new();
                    let mut consumed: Option<usize> = None;
                    for right in &insts {
                        match context {
                            Context::Unrestricted => {
                                for left in left_store.iter() {
                                    if right.start > left.end {
                                        out.push(EventInstance::combine(left, right));
                                    }
                                }
                            }
                            Context::Recent => {
                                if let Some(left) = left_store.last() {
                                    if right.start > left.end {
                                        out.push(EventInstance::combine(left, right));
                                    }
                                }
                            }
                            Context::Chronicle => {
                                if let Some((i, left)) = left_store
                                    .iter()
                                    .enumerate()
                                    .find(|(_, l)| right.start > l.end)
                                {
                                    out.push(EventInstance::combine(left, right));
                                    consumed = Some(i);
                                }
                            }
                        }
                    }
                    if let Some(i) = consumed {
                        left_store.remove(i);
                    }
                    out
                }
            }
            Node::And {
                left_store,
                right_store,
                ..
            } => {
                let (own, other): (&mut Vec<_>, &mut Vec<_>) = if is_left {
                    (left_store, right_store)
                } else {
                    (right_store, left_store)
                };
                let mut out = Vec::new();
                for inst in &insts {
                    for sibling in other.iter() {
                        out.push(EventInstance::combine(sibling, inst));
                    }
                }
                match context {
                    Context::Recent => {
                        own.clear();
                        own.extend(insts.into_iter().next_back());
                    }
                    _ => own.extend(insts),
                }
                out
            }
        }
    }

    /// Close and take the current group of a `Kleene` node feeding a
    /// `Seq` (the caller decides when — typically on the closing event).
    /// Exposed because the graph model has no native longest-match rule;
    /// driving code must orchestrate it, which is itself part of the
    /// architectural comparison.
    pub fn take_kleene_group(&mut self) -> Option<EventInstance> {
        for node in &mut self.nodes {
            if let Node::Kleene { group, .. } = node {
                if group.is_empty() {
                    return None;
                }
                let taken = std::mem::take(group);
                let mut tuples = Vec::new();
                let (mut start, mut end) = (Timestamp::MAX, Timestamp::ZERO);
                for i in taken {
                    start = start.min(i.start);
                    end = end.max(i.end);
                    tuples.extend(i.tuples);
                }
                return Some(EventInstance { tuples, start, end });
            }
        }
        None
    }
}

fn build(expr: &EventExpr, nodes: &mut Vec<Node>, ports: &mut usize) -> Result<usize> {
    let idx = match expr {
        EventExpr::Primitive(p) => {
            *ports = (*ports).max(p + 1);
            nodes.push(Node::Primitive { port: *p });
            nodes.len() - 1
        }
        EventExpr::Seq(a, b) => {
            let left = build(a, nodes, ports)?;
            let right = build(b, nodes, ports)?;
            nodes.push(Node::Seq {
                left,
                right,
                left_store: Vec::new(),
            });
            nodes.len() - 1
        }
        EventExpr::And(a, b) => {
            let left = build(a, nodes, ports)?;
            let right = build(b, nodes, ports)?;
            nodes.push(Node::And {
                left,
                right,
                left_store: Vec::new(),
                right_store: Vec::new(),
            });
            nodes.len() - 1
        }
        EventExpr::Or(a, b) => {
            let left = build(a, nodes, ports)?;
            let right = build(b, nodes, ports)?;
            nodes.push(Node::Or { left, right });
            nodes.len() - 1
        }
        EventExpr::Kleene(c) => {
            let child = build(c, nodes, ports)?;
            nodes.push(Node::Kleene {
                child,
                group: Vec::new(),
            });
            nodes.len() - 1
        }
    };
    if nodes.len() > 10_000 {
        return Err(DsmsError::plan("event graph too large"));
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    #[test]
    fn seq_chain_unrestricted_matches_worked_example() {
        // Same §3.1.1 history as the core engines: 4 events.
        let mut eng =
            RcedaEngine::new(&EventExpr::seq_chain(4), Context::Unrestricted, None).unwrap();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        let mut events = Vec::new();
        for (i, (port, secs)) in history.iter().enumerate() {
            events.extend(eng.on_tuple(*port, &t(*secs, i as u64)));
        }
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.tuples.len() == 4));
    }

    #[test]
    fn recent_context_keeps_latest() {
        let mut eng = RcedaEngine::new(&EventExpr::seq_chain(2), Context::Recent, None).unwrap();
        eng.on_tuple(0, &t(1, 0));
        eng.on_tuple(0, &t(2, 1));
        let ev = eng.on_tuple(1, &t(3, 2));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].start, Timestamp::from_secs(2));
        assert_eq!(eng.retained(), 1);
    }

    #[test]
    fn chronicle_consumes() {
        let mut eng = RcedaEngine::new(&EventExpr::seq_chain(2), Context::Chronicle, None).unwrap();
        eng.on_tuple(0, &t(1, 0));
        assert_eq!(eng.on_tuple(1, &t(2, 1)).len(), 1);
        assert_eq!(eng.on_tuple(1, &t(3, 2)).len(), 0, "left consumed");
    }

    #[test]
    fn unrestricted_history_grows_without_bound() {
        // The architectural weakness E9 measures: no windows, no purge.
        let mut eng =
            RcedaEngine::new(&EventExpr::seq_chain(2), Context::Unrestricted, None).unwrap();
        for i in 0..1000u64 {
            eng.on_tuple(0, &t(i, i));
        }
        assert_eq!(eng.retained(), 1000);
    }

    #[test]
    fn post_hoc_time_predicate() {
        // "within 10 s" as a root predicate — checked after assembly.
        let pred: RootPredicate =
            Arc::new(|i| i.end - i.start <= eslev_dsms::time::Duration::from_secs(10));
        let mut eng =
            RcedaEngine::new(&EventExpr::seq_chain(2), Context::Unrestricted, Some(pred)).unwrap();
        eng.on_tuple(0, &t(0, 0));
        assert_eq!(eng.on_tuple(1, &t(5, 1)).len(), 1);
        assert_eq!(eng.on_tuple(1, &t(50, 2)).len(), 0);
        // The stale left instance is STILL retained — predicates don't purge.
        assert_eq!(eng.retained(), 1);
    }

    #[test]
    fn and_or_operators() {
        let expr = EventExpr::And(
            Box::new(EventExpr::Primitive(0)),
            Box::new(EventExpr::Primitive(1)),
        );
        let mut eng = RcedaEngine::new(&expr, Context::Unrestricted, None).unwrap();
        assert!(eng.on_tuple(0, &t(1, 0)).is_empty());
        assert_eq!(eng.on_tuple(1, &t(2, 1)).len(), 1);
        // AND is order-insensitive.
        assert_eq!(eng.on_tuple(0, &t(3, 2)).len(), 1);

        let expr = EventExpr::Or(
            Box::new(EventExpr::Primitive(0)),
            Box::new(EventExpr::Primitive(1)),
        );
        let mut eng = RcedaEngine::new(&expr, Context::Unrestricted, None).unwrap();
        assert_eq!(eng.on_tuple(0, &t(1, 0)).len(), 1);
        assert_eq!(eng.on_tuple(1, &t(2, 1)).len(), 1);
    }

    #[test]
    fn kleene_group_is_manually_orchestrated() {
        // SEQ(Kleene(P0), P1): driver must close the group by hand.
        let expr = EventExpr::Seq(
            Box::new(EventExpr::Kleene(Box::new(EventExpr::Primitive(0)))),
            Box::new(EventExpr::Primitive(1)),
        );
        let mut eng = RcedaEngine::new(&expr, Context::Chronicle, None).unwrap();
        eng.on_tuple(0, &t(1, 0));
        eng.on_tuple(0, &t(2, 1));
        // The closing event arrives; the engine itself produces nothing
        // for the Kleene side — the caller assembles the event.
        let direct = eng.on_tuple(1, &t(3, 2));
        assert!(direct.is_empty());
        let group = eng.take_kleene_group().expect("group accumulated");
        assert_eq!(group.tuples.len(), 2);
        assert!(eng.take_kleene_group().is_none());
    }
}
