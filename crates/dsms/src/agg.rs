//! Aggregates and User-Defined Aggregates (UDAs).
//!
//! ESL's distinguishing feature (§2.1 of the paper) is that aggregation is
//! extensible: built-ins plus UDAs defined by an INITIALIZE / ITERATE /
//! TERMINATE triple. We model exactly that shape: an [`Aggregate`] is a
//! factory for [`Accumulator`]s; built-ins implement the same trait the
//! user-defined ones do.

use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// State-transition closure of a [`ClosureUda`]: `(state, input) -> state`.
pub type UdaIterateFn = Arc<dyn Fn(&Value, &Value) -> Result<Value> + Send + Sync>;

/// Incremental aggregate state: ITERATE folds values in, TERMINATE reads
/// the result out. `retract` is optional and enables sliding-window
/// aggregation without recompute.
pub trait Accumulator: Send {
    /// Fold one input value into the state (ESL `ITERATE`).
    fn iterate(&mut self, v: &Value) -> Result<()>;
    /// Produce the current aggregate value (ESL `TERMINATE`). May be called
    /// repeatedly (continuous queries emit per tuple).
    fn terminate(&self) -> Value;
    /// Remove a previously-iterated value (window slide). Returns
    /// `Err` when this accumulator cannot retract (MIN/MAX, custom UDAs),
    /// in which case the caller recomputes from the window buffer.
    fn retract(&mut self, _v: &Value) -> Result<()> {
        Err(DsmsError::eval("aggregate does not support retraction"))
    }
    /// Capture the accumulator state for checkpointing. Built-ins and
    /// `Value`-state UDAs implement this; bespoke accumulators that do
    /// not override it make their queries non-checkpointable.
    fn save_state(&self) -> Result<StateNode> {
        Err(DsmsError::ckpt("aggregate does not support checkpointing"))
    }
    /// Restore the state captured by [`Accumulator::save_state`] on an
    /// accumulator of the same aggregate.
    fn restore_state(&mut self, _state: &StateNode) -> Result<()> {
        Err(DsmsError::ckpt("aggregate does not support checkpointing"))
    }
}

/// A named aggregate function: a factory for accumulators.
pub trait Aggregate: Send + Sync {
    /// Name as written in queries (`COUNT`, `SUM`, ...).
    fn name(&self) -> &str;
    /// Fresh state (ESL `INITIALIZE`).
    fn init(&self) -> Box<dyn Accumulator>;
}

/// Shared aggregate handle.
pub type AggregateRef = Arc<dyn Aggregate>;

/// Registry of aggregates available to the planner, pre-populated with the
/// SQL built-ins.
#[derive(Clone)]
pub struct AggregateRegistry {
    aggs: HashMap<String, AggregateRef>,
}

impl Default for AggregateRegistry {
    fn default() -> Self {
        let mut r = AggregateRegistry {
            aggs: HashMap::new(),
        };
        r.register(Arc::new(Count));
        r.register(Arc::new(Sum));
        r.register(Arc::new(Avg));
        r.register(Arc::new(Min));
        r.register(Arc::new(Max));
        r
    }
}

impl AggregateRegistry {
    /// Registry with the five SQL built-ins.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a (possibly user-defined) aggregate; replaces same-named.
    pub fn register(&mut self, agg: AggregateRef) {
        self.aggs.insert(agg.name().to_ascii_lowercase(), agg);
    }

    /// Look up by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<AggregateRef> {
        self.aggs.get(&name.to_ascii_lowercase()).cloned()
    }
}

impl fmt::Debug for AggregateRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AggregateRegistry")
            .field("aggs", &self.aggs.keys().collect::<Vec<_>>())
            .finish()
    }
}

// ---------------------------------------------------------------- built-ins

/// `COUNT(x)` — counts non-NULL inputs.
pub struct Count;

struct CountAcc {
    n: i64,
}

impl Aggregate for Count {
    fn name(&self) -> &str {
        "count"
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(CountAcc { n: 0 })
    }
}

impl Accumulator for CountAcc {
    fn iterate(&mut self, v: &Value) -> Result<()> {
        if !v.is_null() {
            self.n += 1;
        }
        Ok(())
    }
    fn terminate(&self) -> Value {
        Value::Int(self.n)
    }
    fn retract(&mut self, v: &Value) -> Result<()> {
        if !v.is_null() {
            self.n -= 1;
        }
        Ok(())
    }
    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::I64(self.n))
    }
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.n = state.as_i64()?;
        Ok(())
    }
}

/// `SUM(x)` — integer sum unless any float seen; NULL on empty input.
pub struct Sum;

struct SumAcc {
    int: i64,
    float: f64,
    any_float: bool,
    n: i64,
}

impl Aggregate for Sum {
    fn name(&self) -> &str {
        "sum"
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(SumAcc {
            int: 0,
            float: 0.0,
            any_float: false,
            n: 0,
        })
    }
}

impl SumAcc {
    fn apply(&mut self, v: &Value, sign: i64) -> Result<()> {
        match v {
            Value::Null => Ok(()),
            Value::Int(i) => {
                self.int += sign * i;
                self.float += (sign * i) as f64;
                self.n += sign;
                Ok(())
            }
            Value::Float(f) => {
                self.any_float = true;
                self.float += sign as f64 * f;
                self.n += sign;
                Ok(())
            }
            other => Err(DsmsError::eval(format!(
                "SUM over non-numeric {}",
                other.value_type()
            ))),
        }
    }
}

impl Accumulator for SumAcc {
    fn iterate(&mut self, v: &Value) -> Result<()> {
        self.apply(v, 1)
    }
    fn terminate(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else if self.any_float {
            Value::Float(self.float)
        } else {
            Value::Int(self.int)
        }
    }
    fn retract(&mut self, v: &Value) -> Result<()> {
        self.apply(v, -1)
    }
    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            StateNode::I64(self.int),
            StateNode::F64(self.float),
            StateNode::Bool(self.any_float),
            StateNode::I64(self.n),
        ]))
    }
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.int = state.item(0)?.as_i64()?;
        self.float = state.item(1)?.as_f64()?;
        self.any_float = state.item(2)?.as_bool()?;
        self.n = state.item(3)?.as_i64()?;
        Ok(())
    }
}

/// `AVG(x)` — float average; NULL on empty input.
pub struct Avg;

struct AvgAcc {
    sum: f64,
    n: i64,
}

impl Aggregate for Avg {
    fn name(&self) -> &str {
        "avg"
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(AvgAcc { sum: 0.0, n: 0 })
    }
}

impl Accumulator for AvgAcc {
    fn iterate(&mut self, v: &Value) -> Result<()> {
        if let Some(f) = v.as_float() {
            self.sum += f;
            self.n += 1;
        } else if !v.is_null() {
            return Err(DsmsError::eval(format!(
                "AVG over non-numeric {}",
                v.value_type()
            )));
        }
        Ok(())
    }
    fn terminate(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }
    fn retract(&mut self, v: &Value) -> Result<()> {
        if let Some(f) = v.as_float() {
            self.sum -= f;
            self.n -= 1;
        }
        Ok(())
    }
    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            StateNode::F64(self.sum),
            StateNode::I64(self.n),
        ]))
    }
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.sum = state.item(0)?.as_f64()?;
        self.n = state.item(1)?.as_i64()?;
        Ok(())
    }
}

/// `MIN(x)` — smallest non-NULL input; no retraction (recompute on slide).
pub struct Min;
/// `MAX(x)` — largest non-NULL input; no retraction (recompute on slide).
pub struct Max;

struct ExtremumAcc {
    best: Option<Value>,
    want_min: bool,
}

impl Aggregate for Min {
    fn name(&self) -> &str {
        "min"
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ExtremumAcc {
            best: None,
            want_min: true,
        })
    }
}

impl Aggregate for Max {
    fn name(&self) -> &str {
        "max"
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ExtremumAcc {
            best: None,
            want_min: false,
        })
    }
}

impl Accumulator for ExtremumAcc {
    fn iterate(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let replace = match &self.best {
            None => true,
            Some(b) => match v.sql_cmp(b) {
                Some(std::cmp::Ordering::Less) => self.want_min,
                Some(std::cmp::Ordering::Greater) => !self.want_min,
                Some(std::cmp::Ordering::Equal) => false,
                None => {
                    return Err(DsmsError::eval("MIN/MAX over mixed types"));
                }
            },
        };
        if replace {
            self.best = Some(v.clone());
        }
        Ok(())
    }
    fn terminate(&self) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }
    fn save_state(&self) -> Result<StateNode> {
        // `want_min` is configuration (fixed by the aggregate), not state.
        Ok(match &self.best {
            Some(v) => StateNode::Value(v.clone()),
            None => StateNode::Unit,
        })
    }
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.best = match state {
            StateNode::Unit => None,
            other => Some(other.as_value()?.clone()),
        };
        Ok(())
    }
}

/// A UDA defined by three closures — the ESL `INITIALIZE` / `ITERATE` /
/// `TERMINATE` shape, for aggregates written by end users in the host
/// language rather than native SQL.
pub struct ClosureUda {
    name: String,
    init: Arc<dyn Fn() -> Value + Send + Sync>,
    iterate: UdaIterateFn,
    terminate: Arc<dyn Fn(&Value) -> Value + Send + Sync>,
}

impl ClosureUda {
    /// Build a UDA from its three parts. `init` produces the initial state
    /// value, `iterate(state, input)` the next state, `terminate(state)`
    /// the result.
    pub fn new(
        name: impl Into<String>,
        init: impl Fn() -> Value + Send + Sync + 'static,
        iterate: impl Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
        terminate: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        ClosureUda {
            name: name.into(),
            init: Arc::new(init),
            iterate: Arc::new(iterate),
            terminate: Arc::new(terminate),
        }
    }
}

struct ClosureAcc {
    state: Value,
    iterate: UdaIterateFn,
    terminate: Arc<dyn Fn(&Value) -> Value + Send + Sync>,
}

impl Aggregate for ClosureUda {
    fn name(&self) -> &str {
        &self.name
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ClosureAcc {
            state: (self.init)(),
            iterate: self.iterate.clone(),
            terminate: self.terminate.clone(),
        })
    }
}

impl Accumulator for ClosureAcc {
    fn iterate(&mut self, v: &Value) -> Result<()> {
        self.state = (self.iterate)(&self.state, v)?;
        Ok(())
    }
    fn terminate(&self) -> Value {
        (self.terminate)(&self.state)
    }
    fn save_state(&self) -> Result<StateNode> {
        // UDA state is a single Value by construction, so every
        // closure-defined aggregate is checkpointable for free.
        Ok(StateNode::Value(self.state.clone()))
    }
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.state = state.as_value()?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agg: &dyn Aggregate, vals: &[Value]) -> Value {
        let mut acc = agg.init();
        for v in vals {
            acc.iterate(v).unwrap();
        }
        acc.terminate()
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(&Count, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
        assert_eq!(run(&Count, &[]), Value::Int(0));
    }

    #[test]
    fn sum_int_and_float() {
        assert_eq!(run(&Sum, &[Value::Int(1), Value::Int(2)]), Value::Int(3));
        assert_eq!(
            run(&Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(run(&Sum, &[]), Value::Null);
        assert_eq!(run(&Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_rejects_strings() {
        let mut acc = Sum.init();
        assert!(acc.iterate(&Value::str("x")).is_err());
    }

    #[test]
    fn avg() {
        assert_eq!(
            run(&Avg, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Float(2.0)
        );
        assert_eq!(run(&Avg, &[]), Value::Null);
    }

    #[test]
    fn min_max() {
        let vals = [Value::Int(5), Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(&Min, &vals), Value::Int(1));
        assert_eq!(run(&Max, &vals), Value::Int(5));
        assert_eq!(run(&Min, &[]), Value::Null);
        // Strings order lexicographically (blood-pressure device ids etc.).
        assert_eq!(
            run(&Max, &[Value::str("a"), Value::str("c"), Value::str("b")]),
            Value::str("c")
        );
    }

    #[test]
    fn retraction_for_sliding_windows() {
        let mut acc = Sum.init();
        for v in [Value::Int(10), Value::Int(20), Value::Int(30)] {
            acc.iterate(&v).unwrap();
        }
        acc.retract(&Value::Int(10)).unwrap();
        assert_eq!(acc.terminate(), Value::Int(50));
        // MIN cannot retract.
        let mut m = Min.init();
        m.iterate(&Value::Int(1)).unwrap();
        assert!(m.retract(&Value::Int(1)).is_err());
    }

    #[test]
    fn closure_uda_geometric_style() {
        // A "range" UDA: max - min, tracking state as a 2-element sum
        // encoded in a string for simplicity of the Value-typed state.
        let uda = ClosureUda::new(
            "span",
            || Value::str(""),
            |state, v| {
                let x = v.as_int().ok_or_else(|| DsmsError::eval("int expected"))?;
                let s = state.as_str().unwrap_or("");
                let (lo, hi) = if s.is_empty() {
                    (x, x)
                } else {
                    let mut it = s.split(',');
                    let lo: i64 = it.next().unwrap().parse().unwrap();
                    let hi: i64 = it.next().unwrap().parse().unwrap();
                    (lo.min(x), hi.max(x))
                };
                Ok(Value::str(format!("{lo},{hi}")))
            },
            |state| {
                let s = state.as_str().unwrap_or("");
                if s.is_empty() {
                    return Value::Null;
                }
                let mut it = s.split(',');
                let lo: i64 = it.next().unwrap().parse().unwrap();
                let hi: i64 = it.next().unwrap().parse().unwrap();
                Value::Int(hi - lo)
            },
        );
        assert_eq!(
            run(&uda, &[Value::Int(3), Value::Int(10), Value::Int(7)]),
            Value::Int(7)
        );
    }

    #[test]
    fn registry_has_builtins_and_registers_udas() {
        let mut r = AggregateRegistry::new();
        assert!(r.get("COUNT").is_some());
        assert!(r.get("sum").is_some());
        assert!(r.get("median").is_none());
        r.register(Arc::new(ClosureUda::new(
            "median",
            || Value::Null,
            |s, _| Ok(s.clone()),
            |s| s.clone(),
        )));
        assert!(r.get("MEDIAN").is_some());
    }
}
