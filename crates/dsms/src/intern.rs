//! Deterministic per-engine string interning.
//!
//! The paper's workloads are dominated by a small population of
//! identifier strings — EPCs, tag ids, reader ids, locations — that are
//! compared, grouped, deduplicated and routed on every tuple. A
//! [`StrInterner`] maps each distinct string to a dense [`Sym`] (a
//! `u32`), assigned in first-sighting order, so operator state can key on
//! 4-byte symbol ids instead of hashing string bytes per probe (see
//! [`crate::key`]).
//!
//! Determinism is the load-bearing property: symbols are handed out in
//! admission order by a single-threaded engine, so the same feed always
//! produces the same dictionary, a checkpointed dictionary restores to
//! the same symbol assignment, and `restore + journal replay` re-interns
//! the replayed suffix onto exactly the ids the uncrashed run used.
//! Interners are **per-engine**: shard routing never exchanges symbol
//! ids between engines (it routes on the string content itself, cached —
//! see `shard.rs`).

use crate::error::{DsmsError, Result};
use crate::hash::FnvBuildHasher;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A dense string symbol: index into one engine's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub u32);

/// Which row representation an engine runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Representation {
    /// String columns are canonicalized at admission and state keys
    /// encode them as 4-byte symbol ids (the default).
    #[default]
    Interned,
    /// The pre-interning representation: state keys carry raw string
    /// bytes. Kept as a knob so the bench harness can measure the
    /// interned representation against the seed one on identical code.
    Seed,
}

#[derive(Default)]
struct Inner {
    /// Content lookup: string -> symbol.
    by_str: HashMap<Arc<str>, u32, FnvBuildHasher>,
    /// Pointer fast path: canonical `Arc<str>` data pointer -> symbol.
    /// Only canonical pointers are recorded, so the map is bounded by
    /// the dictionary size (never by how many transient `Arc`s probed).
    by_ptr: HashMap<usize, u32, FnvBuildHasher>,
    /// Symbol -> canonical string, in assignment order.
    strings: Vec<Arc<str>>,
    /// Total bytes of interned string content.
    bytes: usize,
}

impl Inner {
    fn insert_new(&mut self, s: Arc<str>) -> u32 {
        let sym = self.strings.len() as u32;
        self.bytes += s.len();
        self.by_ptr.insert(arc_addr(&s), sym);
        self.by_str.insert(s.clone(), sym);
        self.strings.push(s);
        sym
    }

    fn sym_of(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&sym) = self.by_ptr.get(&arc_addr(s)) {
            return sym;
        }
        if let Some(&sym) = self.by_str.get(&**s) {
            return sym;
        }
        self.insert_new(s.clone())
    }
}

fn arc_addr(s: &Arc<str>) -> usize {
    Arc::as_ptr(s) as *const u8 as usize
}

/// Deterministic string interner: `Sym(u32)` ↔ `Arc<str>`, symbols
/// assigned in first-sighting order.
///
/// The inner maps sit behind a mutex only so handles can be shared
/// (`Arc<StrInterner>`) between the engine and its operators; the engine
/// itself is single-threaded, so the lock is never contended on the hot
/// path.
#[derive(Default)]
pub struct StrInterner {
    inner: Mutex<Inner>,
}

/// Shared handle to one engine's interner.
pub type InternerRef = Arc<StrInterner>;

impl StrInterner {
    /// Fresh, empty interner.
    pub fn new() -> StrInterner {
        StrInterner::default()
    }

    /// Intern a string value in place: replaces the `Arc` with the
    /// canonical one for its content (assigning a fresh symbol on first
    /// sight). After canonicalization, later [`StrInterner::sym_of`]
    /// calls on the same value hit the pointer fast path.
    pub fn canonicalize(&self, v: &mut Value) {
        if let Value::Str(s) = v {
            let mut inner = self.inner.lock();
            if inner.by_ptr.contains_key(&arc_addr(s)) {
                return;
            }
            if let Some(&sym) = inner.by_str.get(&**s) {
                *s = inner.strings[sym as usize].clone();
            } else {
                inner.insert_new(s.clone());
            }
        }
    }

    /// Symbol of a string, interning it on first sight. Canonical
    /// `Arc`s (from [`StrInterner::canonicalize`] or
    /// [`StrInterner::resolve`]) resolve by pointer without touching the
    /// string bytes.
    pub fn sym_of(&self, s: &Arc<str>) -> Sym {
        Sym(self.inner.lock().sym_of(s))
    }

    /// Intern a whole column of strings into `out`, taking the
    /// dictionary lock once for the column instead of once per value —
    /// the batch-construction counterpart of [`StrInterner::sym_of`].
    /// A run-length memo on the previous cell pays for itself on RFID
    /// feeds, where duplicate readings arrive back to back: a repeat of
    /// the last string (same pointer, or same bytes when the feed's
    /// `Arc`s are fresh) skips the dictionary probe entirely.
    pub fn sym_of_column<'a>(&self, strs: impl Iterator<Item = &'a Arc<str>>, out: &mut Vec<Sym>) {
        let mut inner = self.inner.lock();
        let mut memo: Option<(&'a Arc<str>, u32)> = None;
        out.extend(strs.map(|s| {
            if let Some((m, sym)) = memo {
                if Arc::ptr_eq(m, s) || **m == **s {
                    return Sym(sym);
                }
            }
            let sym = inner.sym_of(s);
            memo = Some((s, sym));
            Sym(sym)
        }));
    }

    /// Resolve a whole symbol column to its canonical strings, locking
    /// the dictionary once. Fails on any symbol outside the dictionary.
    pub fn resolve_column(&self, syms: &[Sym], out: &mut Vec<Arc<str>>) -> Result<()> {
        let inner = self.inner.lock();
        out.reserve(syms.len());
        for sym in syms {
            out.push(
                inner.strings.get(sym.0 as usize).cloned().ok_or_else(|| {
                    DsmsError::ckpt(format!("symbol {} not in dictionary", sym.0))
                })?,
            );
        }
        Ok(())
    }

    /// Symbol of a string if it is already interned — never inserts.
    /// A `None` from a probe-side lookup means no interned key can
    /// match (table probes use this to answer misses without growing
    /// the dictionary).
    pub fn lookup_sym(&self, s: &str) -> Option<Sym> {
        self.inner.lock().by_str.get(s).copied().map(Sym)
    }

    /// The canonical string for a symbol.
    pub fn resolve(&self, sym: Sym) -> Result<Arc<str>> {
        self.inner
            .lock()
            .strings
            .get(sym.0 as usize)
            .cloned()
            .ok_or_else(|| DsmsError::ckpt(format!("symbol {} not in dictionary", sym.0)))
    }

    /// Number of distinct interned strings.
    pub fn entries(&self) -> usize {
        self.inner.lock().strings.len()
    }

    /// Total bytes of interned string content.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// The dictionary in symbol order, for checkpointing.
    pub fn dictionary(&self) -> Vec<String> {
        self.inner
            .lock()
            .strings
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Replace the dictionary with a checkpointed one (same symbol
    /// order). Called before operator state restores so re-encoded keys
    /// land on the symbols the capturing engine used; journal replay
    /// then re-interns the replayed suffix onto the ids that follow.
    pub fn restore_dictionary(&self, dict: &[String]) -> Result<()> {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
        for s in dict {
            let arc: Arc<str> = Arc::from(s.as_str());
            if inner.by_str.contains_key(&*arc) {
                return Err(DsmsError::ckpt(format!(
                    "checkpoint dictionary repeats `{s}`"
                )));
            }
            inner.insert_new(arc);
        }
        Ok(())
    }
}

impl std::fmt::Debug for StrInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "StrInterner(entries={}, bytes={})",
            inner.strings.len(),
            inner.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_assigned_in_first_sighting_order() {
        let i = StrInterner::new();
        let a: Arc<str> = Arc::from("tag1");
        let b: Arc<str> = Arc::from("tag2");
        assert_eq!(i.sym_of(&a), Sym(0));
        assert_eq!(i.sym_of(&b), Sym(1));
        // Same content, different Arc: same symbol.
        let a2: Arc<str> = Arc::from("tag1");
        assert_eq!(i.sym_of(&a2), Sym(0));
        assert_eq!(i.entries(), 2);
        assert_eq!(i.bytes(), 8);
    }

    #[test]
    fn canonicalize_rewrites_to_shared_arc() {
        let i = StrInterner::new();
        let mut v1 = Value::str("reader1");
        let mut v2 = Value::str("reader1");
        i.canonicalize(&mut v1);
        i.canonicalize(&mut v2);
        match (&v1, &v2) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        // Canonical values resolve by pointer (still one dictionary entry).
        assert_eq!(i.entries(), 1);
        i.canonicalize(&mut v1);
        assert_eq!(i.entries(), 1);
    }

    #[test]
    fn lookup_never_inserts() {
        let i = StrInterner::new();
        assert_eq!(i.lookup_sym("ghost"), None);
        assert_eq!(i.entries(), 0);
        i.sym_of(&Arc::from("real"));
        assert_eq!(i.lookup_sym("real"), Some(Sym(0)));
    }

    #[test]
    fn dictionary_round_trips() {
        let i = StrInterner::new();
        for s in ["a", "bb", "ccc"] {
            i.sym_of(&Arc::from(s));
        }
        let dict = i.dictionary();
        let j = StrInterner::new();
        j.sym_of(&Arc::from("stale"));
        j.restore_dictionary(&dict).unwrap();
        assert_eq!(j.entries(), 3);
        assert_eq!(j.resolve(Sym(1)).unwrap().as_ref(), "bb");
        // Re-interning continues past the restored dictionary.
        assert_eq!(j.sym_of(&Arc::from("new")), Sym(3));
        assert!(j.resolve(Sym(9)).is_err());
    }

    #[test]
    fn column_helpers_match_per_value_paths() {
        let i = StrInterner::new();
        let col: Vec<Arc<str>> = ["a", "b", "a", "c"].iter().map(|s| Arc::from(*s)).collect();
        let mut syms = Vec::new();
        i.sym_of_column(col.iter(), &mut syms);
        assert_eq!(syms, vec![Sym(0), Sym(1), Sym(0), Sym(2)]);
        assert_eq!(i.entries(), 3);
        let mut back = Vec::new();
        i.resolve_column(&syms, &mut back).unwrap();
        assert_eq!(
            back.iter().map(|s| s.as_ref()).collect::<Vec<_>>(),
            vec!["a", "b", "a", "c"]
        );
        // Resolved strings are the canonical Arcs.
        assert!(Arc::ptr_eq(&back[0], &back[2]));
        assert!(i.resolve_column(&[Sym(9)], &mut Vec::new()).is_err());
    }

    #[test]
    fn duplicate_dictionary_rejected() {
        let i = StrInterner::new();
        assert!(i
            .restore_dictionary(&["x".to_string(), "x".to_string()])
            .is_err());
    }
}
