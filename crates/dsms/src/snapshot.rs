//! Materialized stream windows for ad-hoc snapshot queries.
//!
//! §2.1 of the paper: *"an SQL-based stream query language in a DSMS
//! system that supports ad-hoc snapshot queries provides a well-accepted
//! language syntax to the end-user"* — e.g. a physician asking for a
//! patient's current location **without persisting the location stream
//! to a database**. A [`MaterializedWindow`] keeps the recent slice of a
//! stream (time- or row-bounded) inside the engine; ad-hoc queries run
//! against the snapshot at call time.

use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::schema::SchemaRef;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::window::{WindowBuffer, WindowExtent};
use parking_lot::RwLock;
use std::sync::Arc;

/// A continuously maintained window over one stream, queryable at any
/// moment.
pub struct MaterializedWindow {
    schema: SchemaRef,
    extent: WindowExtent,
    inner: RwLock<WindowBuffer>,
}

/// Shared handle to a materialized window.
pub type SnapshotRef = Arc<MaterializedWindow>;

impl MaterializedWindow {
    /// Create a window over a stream with the given retention extent
    /// (use `Preceding(d)` for "the last d of data", `Rows(n)` for "the
    /// last n readings", `Unbounded` to keep everything).
    pub fn new(schema: SchemaRef, extent: WindowExtent) -> Result<SnapshotRef> {
        match extent {
            WindowExtent::Following(_) | WindowExtent::PrecedingAndFollowing(_) => {
                Err(DsmsError::plan(
                    "materialized windows retain the past: use Preceding, Rows or Unbounded",
                ))
            }
            _ => Ok(Arc::new(MaterializedWindow {
                schema,
                extent,
                inner: RwLock::new(WindowBuffer::new()),
            })),
        }
    }

    /// The underlying stream's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Ingest one tuple (called by the engine on every arrival).
    pub fn push(&self, t: Tuple) {
        let mut buf = self.inner.write();
        buf.push(t);
        if let WindowExtent::Rows(n) = self.extent {
            buf.truncate_rows(n + 1);
        }
    }

    /// Advance time: expire old tuples (called by the engine on
    /// watermarks).
    pub fn advance(&self, now: Timestamp) {
        if let WindowExtent::Preceding(d) = self.extent {
            self.inner.write().expire_before(now.saturating_sub(d));
        }
    }

    /// The current window contents, oldest first.
    pub fn snapshot(&self) -> Vec<Tuple> {
        self.inner.read().iter().cloned().collect()
    }

    /// Number of retained tuples.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the window is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten the retained tuples for checkpointing.
    pub fn save_state(&self) -> StateNode {
        self.inner.read().save_state()
    }

    /// Rebuild the window contents from a checkpoint tree.
    pub fn restore_state(&self, state: &StateNode) -> Result<()> {
        self.inner.write().restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::time::Duration;
    use crate::value::Value;

    fn reading(tag: &str, secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![
                Value::str("r"),
                Value::str(tag),
                Value::Ts(Timestamp::from_secs(secs)),
            ],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    #[test]
    fn time_bounded_retention() {
        let m = MaterializedWindow::new(
            Schema::readings("s"),
            WindowExtent::Preceding(Duration::from_secs(60)),
        )
        .unwrap();
        for i in 0..10u64 {
            m.push(reading("t", i * 20, i));
        }
        m.advance(Timestamp::from_secs(180));
        // Retained: ts >= 120 → 120, 140, 160, 180.
        assert_eq!(m.len(), 4);
        assert!(m
            .snapshot()
            .iter()
            .all(|t| t.ts() >= Timestamp::from_secs(120)));
    }

    #[test]
    fn row_bounded_retention() {
        let m = MaterializedWindow::new(Schema::readings("s"), WindowExtent::Rows(2)).unwrap();
        for i in 0..10u64 {
            m.push(reading("t", i, i));
        }
        assert_eq!(m.len(), 3); // ROWS n PRECEDING = n + 1 tuples
        assert_eq!(m.snapshot()[0].ts(), Timestamp::from_secs(7));
    }

    #[test]
    fn unbounded_keeps_all() {
        let m = MaterializedWindow::new(Schema::readings("s"), WindowExtent::Unbounded).unwrap();
        for i in 0..5u64 {
            m.push(reading("t", i, i));
        }
        m.advance(Timestamp::from_secs(1_000_000));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn future_extents_rejected() {
        assert!(MaterializedWindow::new(
            Schema::readings("s"),
            WindowExtent::Following(Duration::from_secs(1))
        )
        .is_err());
    }
}
