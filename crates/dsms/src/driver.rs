//! Concurrent front door for the engine.
//!
//! The core [`Engine`] is deliberately
//! single-threaded and deterministic — the experiments need reproducible
//! outputs. Real deployments have readers pushing from many threads, so
//! this module provides a channel-based driver: one worker thread owns the
//! engine, producers send rows through a bounded crossbeam channel, and a
//! heartbeat generator can inject punctuations for active expiration.
//!
//! The shard router ([`crate::shard`]) builds on two extra hooks exposed
//! here: commands carry an optional *cause index* (the router's global
//! arrival counter), and a *tap* closure can observe the engine after
//! every state-changing command — that is how per-shard outputs are
//! harvested on the worker thread without any cross-thread engine access.

use crate::engine::Engine;
use crate::error::{DsmsError, Result};
use crate::obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::time::Timestamp;
use crate::value::Value;
use crossbeam::channel::{bounded, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared crash flag. The worker records the captured panic payload here
/// on its way out — *before* the command channel disconnects — so every
/// handle can report the original panic message instead of a bare
/// "worker terminated". The boolean mirrors the slot so the hot send
/// path pays one atomic load, not a mutex.
#[derive(Default)]
struct PoisonFlag {
    poisoned: AtomicBool,
    detail: parking_lot::Mutex<Option<String>>,
}

type Poison = Arc<PoisonFlag>;

impl PoisonFlag {
    fn set(&self, detail: String) {
        *self.detail.lock() = Some(detail);
        self.poisoned.store(true, Ordering::Release);
    }

    fn get(&self) -> Option<String> {
        if self.poisoned.load(Ordering::Acquire) {
            self.detail.lock().clone()
        } else {
            None
        }
    }
}

/// Render a panic payload (the `&str`/`String` carried by `panic!`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// The error for a dead worker: the captured panic when there is one
/// (waiting briefly for the racing worker to record it), else a plain
/// termination error.
fn dead_worker_error(poison: &Poison) -> DsmsError {
    for _ in 0..100 {
        if let Some(d) = poison.get() {
            return DsmsError::worker_panicked(d);
        }
        std::thread::yield_now();
    }
    DsmsError::plan("engine worker terminated")
}

/// Record a command error, keeping only the first *fatal* one. Malformed
/// rows ([`DsmsError::TupleShape`]) are already dead-lettered inside the
/// engine and must not stop the feed.
fn record(first_err: &mut Option<DsmsError>, res: Result<()>) {
    if let Err(e) = res {
        if !matches!(e, DsmsError::TupleShape(_)) && first_err.is_none() {
            *first_err = Some(e);
        }
    }
}

/// Observer invoked on the worker thread after each state-changing
/// command, with the engine and the cause index of the latest routed
/// command (0 until the first one arrives).
pub(crate) type Tap = Box<dyn FnMut(&mut Engine, u64) + Send>;

/// One element of a [`Command::Batch`]: the same push/advance payloads
/// as the standalone commands, shipped together so a whole batch costs
/// one channel send instead of one per row.
pub(crate) enum BatchItem {
    Push {
        stream: String,
        values: Vec<Value>,
        seq: Option<u64>,
        cause: u64,
    },
    Advance {
        ts: Timestamp,
        cause: u64,
    },
}

enum Command {
    Push {
        stream: String,
        values: Vec<Value>,
        /// Caller-assigned tuple sequence number (shard router cause);
        /// `None` lets the engine use its own counter.
        seq: Option<u64>,
        cause: u64,
    },
    Advance {
        ts: Timestamp,
        cause: u64,
    },
    /// A whole batch in one channel message. Items are applied in order;
    /// the tap (when present) observes the engine after *every* item, so
    /// the shard router's cause-tagged output harvesting stays exact.
    /// Without a tap, consecutive pushes are handed to the engine as one
    /// [`Engine::push_batch`]-style group to amortize dispatch.
    Batch(Vec<BatchItem>),
    /// Run an arbitrary closure against the engine on the worker thread.
    Exec(Box<dyn FnOnce(&mut Engine) + Send>),
    Flush(Sender<()>),
    Stop(Sender<Engine>),
}

/// Handle for feeding an engine that runs on its own thread.
///
/// Cloneable; all clones feed the same engine. Errors inside the worker
/// are returned by [`EngineDriver::stop`].
///
/// The driver registers its own instruments in the engine's
/// [`Registry`]: `eslev_driver_queue_depth` (commands in flight),
/// `eslev_driver_commands_total` (commands processed by the worker) and
/// `eslev_driver_flush_ns` (round-trip latency of [`EngineDriver::flush`]).
/// A registry clone survives the engine moving onto the worker thread, so
/// [`EngineDriver::metrics`] reads live values concurrently.
pub struct EngineDriver {
    tx: Sender<Command>,
    handle: Option<JoinHandle<Result<()>>>,
    obs: Registry,
    queue_depth: Gauge,
    flush_ns: Histogram,
    poison: Poison,
}

/// Cloneable producer handle derived from a driver.
#[derive(Clone)]
pub struct EngineInput {
    tx: Sender<Command>,
    queue_depth: Gauge,
    poison: Poison,
}

impl EngineDriver {
    /// Move `engine` onto a worker thread. `queue` bounds the channel
    /// (back-pressure for fast producers) and must be at least 1; zero
    /// is a configuration error, not a request for an unbuffered
    /// channel (a rendezvous channel would deadlock single-threaded
    /// feed-then-flush callers).
    pub fn spawn(engine: Engine, queue: usize) -> Result<EngineDriver> {
        Self::spawn_with_tap(engine, queue, None)
    }

    /// [`EngineDriver::spawn`] plus an optional tap run on the worker
    /// thread after every state-changing command (push, advance, exec).
    /// The shard router uses the tap to drain collector outputs into
    /// cause-tagged merge buffers while the command's effects are fresh.
    pub(crate) fn spawn_with_tap(
        engine: Engine,
        queue: usize,
        mut tap: Option<Tap>,
    ) -> Result<EngineDriver> {
        if queue == 0 {
            return Err(DsmsError::plan(
                "driver queue capacity must be at least 1 (got 0)",
            ));
        }
        let obs = engine.registry();
        let queue_depth = obs.gauge("eslev_driver_queue_depth", &[]);
        let flush_ns = obs.histogram("eslev_driver_flush_ns", &[]);
        let commands: Counter = obs.counter("eslev_driver_commands_total", &[]);
        let depth = queue_depth.clone();
        let poison: Poison = Arc::new(PoisonFlag::default());
        let poison_worker = poison.clone();
        let (tx, rx) = bounded::<Command>(queue);
        let handle = std::thread::spawn(move || -> Result<()> {
            // The command loop runs under `catch_unwind` so a panic inside
            // an operator (or an injected fault closure) becomes a typed
            // error instead of an opaque dead channel. The receiver stays
            // alive until after the poison flag is set, so producers that
            // race the crash always find the captured payload.
            let mut engine_slot = Some(engine);
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<()> {
                    let mut first_err: Option<DsmsError> = None;
                    let mut last_cause = 0u64;
                    while let Ok(cmd) = rx.recv() {
                        depth.add(-1);
                        commands.inc();
                        let engine = engine_slot.as_mut().expect("engine owned until stop");
                        match cmd {
                            Command::Push {
                                stream,
                                values,
                                seq,
                                cause,
                            } => {
                                last_cause = last_cause.max(cause);
                                if first_err.is_none() {
                                    let res = match seq {
                                        Some(s) => engine.push_with_seq(&stream, values, s),
                                        None => engine.push(&stream, values),
                                    };
                                    record(&mut first_err, res);
                                }
                                if let Some(t) = tap.as_mut() {
                                    t(engine, last_cause);
                                }
                            }
                            Command::Advance { ts, cause } => {
                                last_cause = last_cause.max(cause);
                                if first_err.is_none() {
                                    record(&mut first_err, engine.advance_to(ts));
                                }
                                if let Some(t) = tap.as_mut() {
                                    t(engine, last_cause);
                                }
                            }
                            Command::Batch(items) => {
                                let tap_active = tap.is_some();
                                // Without a tap, adjacent unsequenced pushes
                                // are handed to the engine as one group so
                                // dispatch and watermarking amortize across
                                // the batch.
                                let mut group: Vec<(String, Vec<Value>)> = Vec::new();
                                for item in items {
                                    match item {
                                        BatchItem::Push {
                                            stream,
                                            values,
                                            seq,
                                            cause,
                                        } => {
                                            last_cause = last_cause.max(cause);
                                            if first_err.is_none() {
                                                if !tap_active && seq.is_none() {
                                                    group.push((stream, values));
                                                } else {
                                                    if !group.is_empty() {
                                                        record(
                                                            &mut first_err,
                                                            engine.push_batch(group.drain(..)),
                                                        );
                                                    }
                                                    if first_err.is_none() {
                                                        let res = match seq {
                                                            Some(s) => engine
                                                                .push_with_seq(&stream, values, s),
                                                            None => engine.push(&stream, values),
                                                        };
                                                        record(&mut first_err, res);
                                                    }
                                                }
                                            }
                                            if let Some(t) = tap.as_mut() {
                                                t(engine, last_cause);
                                            }
                                        }
                                        BatchItem::Advance { ts, cause } => {
                                            last_cause = last_cause.max(cause);
                                            if first_err.is_none() {
                                                if !group.is_empty() {
                                                    record(
                                                        &mut first_err,
                                                        engine.push_batch(group.drain(..)),
                                                    );
                                                }
                                                if first_err.is_none() {
                                                    record(&mut first_err, engine.advance_to(ts));
                                                }
                                            }
                                            if let Some(t) = tap.as_mut() {
                                                t(engine, last_cause);
                                            }
                                        }
                                    }
                                }
                                if first_err.is_none() && !group.is_empty() {
                                    record(&mut first_err, engine.push_batch(group));
                                }
                            }
                            Command::Exec(f) => {
                                f(engine);
                                if let Some(t) = tap.as_mut() {
                                    t(engine, last_cause);
                                }
                            }
                            Command::Flush(ack) => {
                                let _ = ack.send(());
                            }
                            Command::Stop(back) => {
                                let _ =
                                    back.send(engine_slot.take().expect("engine owned until stop"));
                                return first_err.map_or(Ok(()), Err);
                            }
                        }
                    }
                    first_err.map_or(Ok(()), Err)
                }));
            match outcome {
                Ok(r) => r,
                Err(payload) => {
                    let detail = panic_message(payload.as_ref());
                    poison_worker.set(detail.clone());
                    Err(DsmsError::worker_panicked(detail))
                }
            }
        });
        Ok(EngineDriver {
            tx,
            handle: Some(handle),
            obs,
            queue_depth,
            flush_ns,
            poison,
        })
    }

    /// A cloneable producer handle.
    pub fn input(&self) -> EngineInput {
        EngineInput {
            tx: self.tx.clone(),
            queue_depth: self.queue_depth.clone(),
            poison: self.poison.clone(),
        }
    }

    /// The captured panic message, when the worker died of a panic.
    /// `None` while the worker is healthy (or terminated cleanly).
    pub fn panic_detail(&self) -> Option<String> {
        self.poison.get()
    }

    /// Run `f` against the engine on the worker thread and return its
    /// result. Blocks until the worker gets to it; commands queued
    /// before it are processed first.
    pub fn exec<R, F>(&self, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut Engine) -> R + Send + 'static,
    {
        if let Some(d) = self.poison.get() {
            return Err(DsmsError::worker_panicked(d));
        }
        let (tx, rx) = bounded(1);
        self.tx
            .send(Command::Exec(Box::new(move |engine: &mut Engine| {
                let _ = tx.send(f(engine));
            })))
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        rx.recv().map_err(|_| dead_worker_error(&self.poison))
    }

    /// Live snapshot of every instrument the engine (and this driver)
    /// registered — safe to call while the worker is processing.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The shared instrument registry.
    pub fn registry(&self) -> Registry {
        self.obs.clone()
    }

    /// Block until every command sent so far has been processed. The
    /// round-trip time lands in `eslev_driver_flush_ns`.
    pub fn flush(&self) -> Result<()> {
        if let Some(d) = self.poison.get() {
            return Err(DsmsError::worker_panicked(d));
        }
        let started = std::time::Instant::now();
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Flush(ack_tx))
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        let res = ack_rx.recv().map_err(|_| dead_worker_error(&self.poison));
        self.flush_ns.record_duration(started.elapsed());
        res
    }

    /// Stop the worker and recover the engine (with all collectors and
    /// stats intact). Returns the first error the worker hit, if any —
    /// including the original panic message when the worker died of a
    /// panic (the engine is unrecoverable in that case).
    pub fn stop(mut self) -> Result<Engine> {
        let (back_tx, back_rx) = bounded(1);
        let engine = self
            .tx
            .send(Command::Stop(back_tx))
            .ok()
            .and_then(|()| back_rx.recv().ok());
        // Join unconditionally: a worker that died before handling Stop
        // carries the authoritative error (captured panic or first
        // command failure).
        let joined = self.handle.take().expect("stop called once").join();
        match joined {
            Err(payload) => Err(DsmsError::worker_panicked(panic_message(payload.as_ref()))),
            Ok(Ok(())) => engine.ok_or_else(|| dead_worker_error(&self.poison)),
            Ok(Err(e)) => Err(e),
        }
    }
}

impl EngineInput {
    /// Queue a row for a stream.
    pub fn push(&self, stream: &str, values: Vec<Value>) -> Result<()> {
        self.push_routed(stream, values, None, 0)
    }

    /// The captured panic message, when the worker died of a panic.
    pub fn panic_detail(&self) -> Option<String> {
        self.poison.get()
    }

    /// Fail fast once the worker is known dead of a panic.
    fn check(&self) -> Result<()> {
        match self.poison.get() {
            Some(d) => Err(DsmsError::worker_panicked(d)),
            None => Ok(()),
        }
    }

    /// Queue a closure to run against the engine on the worker thread
    /// without waiting for its result (fault injection, background
    /// maintenance). A panic inside the closure poisons the driver.
    pub fn exec_detached(&self, f: impl FnOnce(&mut Engine) + Send + 'static) -> Result<()> {
        self.check()?;
        self.tx
            .send(Command::Exec(Box::new(f)))
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        Ok(())
    }

    /// Queue a row with an explicit tuple sequence number and cause
    /// index (shard router path).
    pub(crate) fn push_routed(
        &self,
        stream: &str,
        values: Vec<Value>,
        seq: Option<u64>,
        cause: u64,
    ) -> Result<()> {
        self.check()?;
        self.tx
            .send(Command::Push {
                stream: stream.to_string(),
                values,
                seq,
                cause,
            })
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        Ok(())
    }

    /// Queue a whole batch of rows in one channel message.
    ///
    /// Rows are applied in batch order; adjacent rows for the same
    /// stream are handed to the engine as one [`Engine::push_batch`]
    /// group, so dispatch and watermark coalescing amortize across the
    /// batch instead of paying one channel send and one punctuation per
    /// row. An empty batch is a no-op.
    pub fn push_batch(&self, rows: impl IntoIterator<Item = (String, Vec<Value>)>) -> Result<()> {
        let items: Vec<BatchItem> = rows
            .into_iter()
            .map(|(stream, values)| BatchItem::Push {
                stream,
                values,
                seq: None,
                cause: 0,
            })
            .collect();
        if items.is_empty() {
            return Ok(());
        }
        self.send_batch(items)
    }

    /// Queue a pre-built batch of commands (shard router path: items
    /// carry explicit sequence numbers and cause indices).
    pub(crate) fn send_batch(&self, items: Vec<BatchItem>) -> Result<()> {
        self.check()?;
        self.tx
            .send(Command::Batch(items))
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        Ok(())
    }

    /// Queue a punctuation.
    pub fn advance_to(&self, ts: Timestamp) -> Result<()> {
        self.advance_routed(ts, 0)
    }

    /// Queue a punctuation tagged with a cause index (shard router
    /// path: broadcast watermarks acknowledge the cause on shards that
    /// did not receive the tuple itself).
    pub(crate) fn advance_routed(&self, ts: Timestamp, cause: u64) -> Result<()> {
        self.check()?;
        self.tx
            .send(Command::Advance { ts, cause })
            .map_err(|_| dead_worker_error(&self.poison))?;
        self.queue_depth.add(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::Select;
    use crate::schema::Schema;

    fn reading(secs: u64, tag: &str) -> Vec<Value> {
        vec![
            Value::str("r1"),
            Value::str(tag),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    }

    #[test]
    fn concurrent_producers_feed_one_engine() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let (_, out) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        // Single producer pushes in order (engine enforces per-stream
        // order; multi-producer feeds would use one stream each).
        let driver = EngineDriver::spawn(e, 64).unwrap();
        let input = driver.input();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                input
                    .push("readings", reading(i, &format!("t{i}")))
                    .unwrap();
            }
        });
        h.join().unwrap();
        driver.flush().unwrap();
        let engine = driver.stop().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(engine.stream_pushed("readings").unwrap(), 100);
    }

    #[test]
    fn zero_queue_capacity_is_an_error() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let err = EngineDriver::spawn(e, 0)
            .err()
            .expect("zero queue rejected");
        assert!(
            err.to_string().contains("queue capacity"),
            "error names the misconfiguration: {err}"
        );
    }

    #[test]
    fn worker_reports_first_error_on_stop() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        let input = driver.input();
        input.push("nonexistent", reading(1, "t")).unwrap();
        let err = driver.stop().err().expect("worker must surface the error");
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn exec_runs_on_worker_thread() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        driver.input().push("readings", reading(1, "t1")).unwrap();
        let pushed = driver
            .exec(|engine| engine.stream_pushed("readings").unwrap())
            .unwrap();
        assert_eq!(pushed, 1, "exec observes queued commands before it");
        driver.stop().unwrap();
    }

    #[test]
    fn metrics_record_under_concurrency() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("s1")).unwrap();
        e.create_stream(Schema::readings("s2")).unwrap();
        for s in ["s1", "s2"] {
            e.register_collected(
                format!("q_{s}"),
                vec![s],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        }
        let driver = EngineDriver::spawn(e, 64).unwrap();
        // One producer thread per stream (per-stream order still holds).
        let handles: Vec<_> = ["s1", "s2"]
            .into_iter()
            .map(|s| {
                let input = driver.input();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        input.push(s, reading(i, &format!("t{i}"))).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        driver.flush().unwrap();
        // Live metrics while the worker thread still owns the engine:
        // 400 pushes + 1 flush, all drained by the time flush acks.
        let m = driver.metrics();
        assert_eq!(m.counter("eslev_driver_commands_total", &[]), Some(401));
        assert_eq!(m.gauge("eslev_driver_queue_depth", &[]), Some(0));
        let flush = m
            .histogram("eslev_driver_flush_ns", &[])
            .expect("registered");
        assert!(flush.count >= 1, "flush round-trip must be recorded");
        for q in ["q_s1", "q_s2"] {
            let wall = m
                .histogram("eslev_query_wall_ns", &[("query", q)])
                .expect("registered");
            assert!(
                wall.count >= 1,
                "{q} wall histogram sampled under concurrency"
            );
            assert!(wall.sum > 0, "{q} wall samples must be non-zero");
        }
        let engine = driver.stop().unwrap();
        assert_eq!(engine.stream_pushed("s1").unwrap(), 200);
        assert_eq!(engine.stream_pushed("s2").unwrap(), 200);
    }

    #[test]
    fn advance_through_driver() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        driver.input().advance_to(Timestamp::from_secs(42)).unwrap();
        let engine = driver.stop().unwrap();
        assert_eq!(engine.now(), Timestamp::from_secs(42));
    }

    /// A panic on the worker thread poisons the driver: the captured
    /// panic message — not a generic disconnect — surfaces from every
    /// subsequent interaction (push, flush, stop).
    #[test]
    fn panicking_exec_poisons_driver_with_original_message() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        let input = driver.input();
        input
            .exec_detached(|_| panic!("injected fault: seq detector state corrupt"))
            .unwrap();
        let err = driver.flush().unwrap_err();
        assert!(matches!(err, DsmsError::WorkerPanicked { .. }), "{err}");
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Poisoned handles fail fast with the same payload.
        let err = input.push("readings", reading(1, "t")).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        let err = input.advance_to(Timestamp::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(
            driver.panic_detail().as_deref(),
            Some("injected fault: seq detector state corrupt")
        );
        let err = driver.stop().err().expect("stop surfaces the panic");
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    /// Stop on a freshly-panicked worker (no flush in between) still
    /// surfaces the panic, racing the worker's shutdown path.
    #[test]
    fn stop_right_after_panic_reports_panic() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        driver.input().exec_detached(|_| panic!("boom 42")).unwrap();
        let err = driver.stop().err().expect("stop surfaces the panic");
        assert!(err.to_string().contains("boom 42"), "{err}");
    }

    /// Malformed rows are dead-lettered inside the engine and must not
    /// stop the feed: well-formed rows after the bad one still flow, and
    /// stop() reports success.
    #[test]
    fn malformed_rows_do_not_poison_the_feed() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8).unwrap();
        let input = driver.input();
        input.push("readings", reading(1, "t1")).unwrap();
        input.push("readings", vec![Value::Int(9)]).unwrap(); // wrong arity
        input.push("readings", reading(2, "t2")).unwrap();
        driver.flush().unwrap();
        let mut engine = driver.stop().unwrap();
        assert_eq!(engine.stream_pushed("readings").unwrap(), 2);
        assert_eq!(engine.rejected_tuples(), 1);
        let dead = engine.take_dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].values, vec![Value::Int(9)]);
    }

    /// Regression: shutdown under contention. Concurrent producers race
    /// an in-flight heartbeat thread while the owner flushes and stops;
    /// nothing may deadlock and every row queued before the flush must
    /// reach the engine (stop drains the channel deterministically).
    #[test]
    fn stop_under_contention_drops_nothing() {
        for round in 0..8 {
            let mut e = Engine::new();
            for s in ["s1", "s2", "s3"] {
                e.create_stream(Schema::readings(s)).unwrap();
            }
            // Tight queue on odd rounds so producers hit back-pressure
            // while the heartbeat interleaves.
            let queue = if round % 2 == 0 { 64 } else { 2 };
            let driver = EngineDriver::spawn(e, queue).unwrap();
            let rows = 50u64;
            let producers: Vec<_> = ["s1", "s2", "s3"]
                .into_iter()
                .map(|s| {
                    let input = driver.input();
                    std::thread::spawn(move || {
                        for i in 0..rows {
                            input.push(s, reading(i, &format!("t{i}"))).unwrap();
                        }
                    })
                })
                .collect();
            // Heartbeat races the producers; monotone advance_to means a
            // stale heartbeat is a no-op, never an error.
            let hb = {
                let input = driver.input();
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        input.advance_to(Timestamp::from_secs(i)).unwrap();
                    }
                })
            };
            for p in producers {
                p.join().unwrap();
            }
            hb.join().unwrap();
            driver.flush().unwrap();
            let engine = driver.stop().unwrap();
            for s in ["s1", "s2", "s3"] {
                assert_eq!(
                    engine.stream_pushed(s).unwrap(),
                    rows,
                    "round {round}: stream {s} lost rows at shutdown"
                );
            }
        }
    }
}
