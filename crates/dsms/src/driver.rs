//! Concurrent front door for the engine.
//!
//! The core [`Engine`] is deliberately
//! single-threaded and deterministic — the experiments need reproducible
//! outputs. Real deployments have readers pushing from many threads, so
//! this module provides a channel-based driver: one worker thread owns the
//! engine, producers send rows through a bounded crossbeam channel, and a
//! heartbeat generator can inject punctuations for active expiration.

use crate::engine::Engine;
use crate::error::{DsmsError, Result};
use crate::obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::time::Timestamp;
use crate::value::Value;
use crossbeam::channel::{bounded, Sender};
use std::thread::JoinHandle;

enum Command {
    Push { stream: String, values: Vec<Value> },
    Advance(Timestamp),
    Flush(Sender<()>),
    Stop(Sender<Engine>),
}

/// Handle for feeding an engine that runs on its own thread.
///
/// Cloneable; all clones feed the same engine. Errors inside the worker
/// are returned by [`EngineDriver::stop`].
///
/// The driver registers its own instruments in the engine's
/// [`Registry`]: `eslev_driver_queue_depth` (commands in flight),
/// `eslev_driver_commands_total` (commands processed by the worker) and
/// `eslev_driver_flush_ns` (round-trip latency of [`EngineDriver::flush`]).
/// A registry clone survives the engine moving onto the worker thread, so
/// [`EngineDriver::metrics`] reads live values concurrently.
pub struct EngineDriver {
    tx: Sender<Command>,
    handle: Option<JoinHandle<Result<()>>>,
    obs: Registry,
    queue_depth: Gauge,
    flush_ns: Histogram,
}

/// Cloneable producer handle derived from a driver.
#[derive(Clone)]
pub struct EngineInput {
    tx: Sender<Command>,
    queue_depth: Gauge,
}

impl EngineDriver {
    /// Move `engine` onto a worker thread. `queue` bounds the channel
    /// (back-pressure for fast producers).
    pub fn spawn(mut engine: Engine, queue: usize) -> EngineDriver {
        let obs = engine.registry();
        let queue_depth = obs.gauge("eslev_driver_queue_depth", &[]);
        let flush_ns = obs.histogram("eslev_driver_flush_ns", &[]);
        let commands: Counter = obs.counter("eslev_driver_commands_total", &[]);
        let depth = queue_depth.clone();
        let (tx, rx) = bounded::<Command>(queue.max(1));
        let handle = std::thread::spawn(move || -> Result<()> {
            let mut first_err: Option<DsmsError> = None;
            for cmd in rx {
                depth.add(-1);
                commands.inc();
                match cmd {
                    Command::Push { stream, values } => {
                        if first_err.is_none() {
                            if let Err(e) = engine.push(&stream, values) {
                                first_err = Some(e);
                            }
                        }
                    }
                    Command::Advance(ts) => {
                        if first_err.is_none() {
                            if let Err(e) = engine.advance_to(ts) {
                                first_err = Some(e);
                            }
                        }
                    }
                    Command::Flush(ack) => {
                        let _ = ack.send(());
                    }
                    Command::Stop(back) => {
                        let _ = back.send(engine);
                        return first_err.map_or(Ok(()), Err);
                    }
                }
            }
            first_err.map_or(Ok(()), Err)
        });
        EngineDriver {
            tx,
            handle: Some(handle),
            obs,
            queue_depth,
            flush_ns,
        }
    }

    /// A cloneable producer handle.
    pub fn input(&self) -> EngineInput {
        EngineInput {
            tx: self.tx.clone(),
            queue_depth: self.queue_depth.clone(),
        }
    }

    /// Live snapshot of every instrument the engine (and this driver)
    /// registered — safe to call while the worker is processing.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The shared instrument registry.
    pub fn registry(&self) -> Registry {
        self.obs.clone()
    }

    /// Block until every command sent so far has been processed. The
    /// round-trip time lands in `eslev_driver_flush_ns`.
    pub fn flush(&self) -> Result<()> {
        let started = std::time::Instant::now();
        let (ack_tx, ack_rx) = bounded(1);
        self.tx
            .send(Command::Flush(ack_tx))
            .map_err(|_| DsmsError::plan("engine worker terminated"))?;
        self.queue_depth.add(1);
        let res = ack_rx
            .recv()
            .map_err(|_| DsmsError::plan("engine worker terminated"));
        self.flush_ns.record_duration(started.elapsed());
        res
    }

    /// Stop the worker and recover the engine (with all collectors and
    /// stats intact). Returns the first error the worker hit, if any.
    pub fn stop(mut self) -> Result<Engine> {
        let (back_tx, back_rx) = bounded(1);
        self.tx
            .send(Command::Stop(back_tx))
            .map_err(|_| DsmsError::plan("engine worker terminated"))?;
        let engine = back_rx
            .recv()
            .map_err(|_| DsmsError::plan("engine worker terminated"))?;
        let result = self
            .handle
            .take()
            .expect("stop called once")
            .join()
            .map_err(|_| DsmsError::plan("engine worker panicked"))?;
        result.map(|()| engine)
    }
}

impl EngineInput {
    /// Queue a row for a stream.
    pub fn push(&self, stream: &str, values: Vec<Value>) -> Result<()> {
        self.tx
            .send(Command::Push {
                stream: stream.to_string(),
                values,
            })
            .map_err(|_| DsmsError::plan("engine worker terminated"))?;
        self.queue_depth.add(1);
        Ok(())
    }

    /// Queue a punctuation.
    pub fn advance_to(&self, ts: Timestamp) -> Result<()> {
        self.tx
            .send(Command::Advance(ts))
            .map_err(|_| DsmsError::plan("engine worker terminated"))?;
        self.queue_depth.add(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::Select;
    use crate::schema::Schema;

    fn reading(secs: u64, tag: &str) -> Vec<Value> {
        vec![
            Value::str("r1"),
            Value::str(tag),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    }

    #[test]
    fn concurrent_producers_feed_one_engine() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let (_, out) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        // Single producer pushes in order (engine enforces per-stream
        // order; multi-producer feeds would use one stream each).
        let driver = EngineDriver::spawn(e, 64);
        let input = driver.input();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                input
                    .push("readings", reading(i, &format!("t{i}")))
                    .unwrap();
            }
        });
        h.join().unwrap();
        driver.flush().unwrap();
        let engine = driver.stop().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(engine.stream_pushed("readings").unwrap(), 100);
    }

    #[test]
    fn worker_reports_first_error_on_stop() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8);
        let input = driver.input();
        input.push("nonexistent", reading(1, "t")).unwrap();
        let err = driver.stop().err().expect("worker must surface the error");
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn metrics_record_under_concurrency() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("s1")).unwrap();
        e.create_stream(Schema::readings("s2")).unwrap();
        for s in ["s1", "s2"] {
            e.register_collected(
                format!("q_{s}"),
                vec![s],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        }
        let driver = EngineDriver::spawn(e, 64);
        // One producer thread per stream (per-stream order still holds).
        let handles: Vec<_> = ["s1", "s2"]
            .into_iter()
            .map(|s| {
                let input = driver.input();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        input.push(s, reading(i, &format!("t{i}"))).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        driver.flush().unwrap();
        // Live metrics while the worker thread still owns the engine:
        // 400 pushes + 1 flush, all drained by the time flush acks.
        let m = driver.metrics();
        assert_eq!(m.counter("eslev_driver_commands_total", &[]), Some(401));
        assert_eq!(m.gauge("eslev_driver_queue_depth", &[]), Some(0));
        let flush = m
            .histogram("eslev_driver_flush_ns", &[])
            .expect("registered");
        assert!(flush.count >= 1, "flush round-trip must be recorded");
        for q in ["q_s1", "q_s2"] {
            let wall = m
                .histogram("eslev_query_wall_ns", &[("query", q)])
                .expect("registered");
            assert!(
                wall.count >= 1,
                "{q} wall histogram sampled under concurrency"
            );
            assert!(wall.sum > 0, "{q} wall samples must be non-zero");
        }
        let engine = driver.stop().unwrap();
        assert_eq!(engine.stream_pushed("s1").unwrap(), 200);
        assert_eq!(engine.stream_pushed("s2").unwrap(), 200);
    }

    #[test]
    fn advance_through_driver() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let driver = EngineDriver::spawn(e, 8);
        driver.input().advance_to(Timestamp::from_secs(42)).unwrap();
        let engine = driver.stop().unwrap();
        assert_eq!(engine.now(), Timestamp::from_secs(42));
    }
}
