//! Columnar (SoA) batches over interned symbols.
//!
//! The row representation ([`Tuple`]) is an `Arc<[Value]>` per row:
//! every operator touch pays enum dispatch and refcount traffic per
//! value. The paper's hot loops — select, project, dedup key
//! extraction — are all per-column work over narrow RFID rows, so a
//! [`ColumnBatch`] stores a batch as typed column vectors
//! (`Vec<i64>` / `Vec<f64>` / `Vec<Sym>` / `Vec<bool>` /
//! `Vec<Timestamp>`) plus a validity bitmap per column, with the tuple
//! metadata (`ts`, `seq`, `sign`, `revision`) as columns of their own.
//!
//! String columns hold dense [`Sym`] ids from the engine's
//! [`StrInterner`]; conversion back to rows resolves each column
//! through the dictionary once (one lock per column, not per value).
//! Columns whose values do not all share one primitive type — or
//! strings without a bound interner — fall back to a `Mixed` column of
//! plain [`Value`]s, so every row batch has a columnar form and the
//! round trip `&[Tuple]` → `ColumnBatch` → `Vec<Tuple>` is lossless
//! (the property test battery pins this over every `Value` variant).
//!
//! The batch is the carrier of the columnar execution path
//! ([`crate::ops::Operator::process_columns`]); the row path stays the
//! byte-identical differential oracle.

use crate::error::Result;
use crate::intern::{InternerRef, Sym};
use crate::time::Timestamp;
use crate::tuple::{Sign, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// Typed storage of one column. Null rows keep a placeholder in the
/// typed vectors; the validity bitmap is authoritative.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Interned strings (symbol ids in the batch's dictionary).
    Str(Vec<Sym>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Timestamps.
    Ts(Vec<Timestamp>),
    /// Escape hatch: heterogeneous values (or strings without an
    /// interner), stored row-wise. Nulls are stored as `Value::Null`
    /// *and* cleared in the validity bitmap.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Ts(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }
}

/// One column: typed data plus a validity bitmap (`None` = all rows
/// valid; bit `i` set = row `i` non-null).
#[derive(Debug, Clone)]
pub struct Column {
    /// The typed values (placeholders at null rows).
    pub data: ColumnData,
    validity: Option<Vec<u64>>,
}

impl Column {
    /// Whether row `i` is non-null.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            None => true,
            Some(bits) => bits[i >> 6] & (1u64 << (i & 63)) != 0,
        }
    }

    /// Whether the column has no null rows at all.
    pub fn all_valid(&self) -> bool {
        self.validity.is_none()
    }

    /// The row value as a freshly built [`Value`]. String columns
    /// resolve through `strings` (the column's pre-resolved
    /// dictionary slice) — see [`ColumnBatch::extend_tuples`].
    fn value_at(&self, i: usize, strings: Option<&[Arc<str>]>) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(_) => Value::Str(
                strings.expect("string column resolved before materialization")[i].clone(),
            ),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Ts(v) => Value::Ts(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

/// Bitmap builder used while constructing or filtering columns.
struct ValidityBuilder {
    bits: Vec<u64>,
    any_null: bool,
}

impl ValidityBuilder {
    fn new(n: usize) -> ValidityBuilder {
        ValidityBuilder {
            bits: vec![u64::MAX; n.div_ceil(64)],
            any_null: false,
        }
    }

    fn clear(&mut self, i: usize) {
        self.bits[i >> 6] &= !(1u64 << (i & 63));
        self.any_null = true;
    }

    fn finish(self) -> Option<Vec<u64>> {
        self.any_null.then_some(self.bits)
    }
}

/// The row-form origin of a batch whose rows are an untransformed
/// subset of some source rows: the shared source plus a selection
/// (`None` = identity). Pass-through kernels (select, dedup) preserve
/// this through [`ColumnBatch::filter`], letting materialization clone
/// the original tuples instead of rebuilding them cell by cell —
/// value-changing kernels (project) drop it.
#[derive(Debug, Clone)]
struct RowSource {
    rows: Arc<Vec<Tuple>>,
    /// Index into `rows` for each batch row; `None` means row `i` of
    /// the batch is `rows[i]`.
    sel: Option<Vec<u32>>,
}

/// A batch of tuples in structure-of-arrays layout: one [`Column`] per
/// schema column, plus `ts`/`seq`/`sign`/`revision` columns carrying
/// the tuple metadata.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Column>,
    ts: Vec<Timestamp>,
    seq: Vec<u64>,
    sign: Vec<Sign>,
    revision: Vec<u64>,
    interner: Option<InternerRef>,
    source: Option<RowSource>,
}

impl ColumnBatch {
    /// Build a columnar batch from a row batch. Returns `None` when the
    /// rows do not share one arity (a ragged batch has no columnar
    /// form — the engine keeps such batches on the row path).
    ///
    /// With an `interner`, string columns intern to dense [`Sym`] ids
    /// (one dictionary lock per column); without one, any column
    /// containing a string falls back to `Mixed`.
    pub fn from_tuples(tuples: &[Tuple], interner: Option<&InternerRef>) -> Option<ColumnBatch> {
        let arity = tuples.first().map_or(0, Tuple::arity);
        if tuples.iter().any(|t| t.arity() != arity) {
            return None;
        }
        let n = tuples.len();
        // One fused row-major pass when the first row fixes every
        // column's type (the overwhelmingly common case); the two-pass
        // per-column scan remains as the general path for leading
        // nulls, mixed-type columns, and empty batches.
        let columns = match Self::build_columns_fused(tuples, arity, interner) {
            Some(cols) => cols,
            None => (0..arity)
                .map(|j| Self::build_column(tuples, j, n, interner))
                .collect(),
        };
        Some(ColumnBatch {
            len: n,
            columns,
            ts: tuples.iter().map(Tuple::ts).collect(),
            seq: tuples.iter().map(Tuple::seq).collect(),
            sign: tuples.iter().map(Tuple::sign).collect(),
            revision: tuples.iter().map(Tuple::revision).collect(),
            interner: interner.cloned(),
            source: None,
        })
    }

    /// [`ColumnBatch::from_tuples`] over a shared row batch: the batch
    /// additionally remembers `rows` as its row-form source, so if it
    /// only ever passes through selection kernels, materialization
    /// clones the original tuples instead of rebuilding them from the
    /// columns (the engine's hot path for select/dedup chains).
    pub fn from_shared_tuples(
        rows: &Arc<Vec<Tuple>>,
        interner: Option<&InternerRef>,
    ) -> Option<ColumnBatch> {
        let mut batch = Self::from_tuples(rows, interner)?;
        batch.source = Some(RowSource {
            rows: Arc::clone(rows),
            sel: None,
        });
        Some(batch)
    }

    /// Fused conversion fast path: take each column's type from the
    /// first row and fill every column (plus validity) in one row-major
    /// pass over the tuples — one pointer chase per row instead of one
    /// per row *per column*. Returns `None` whenever the first row
    /// can't fix the types (empty batch, a leading null, a string
    /// column without an interner) or a later row disagrees; the caller
    /// then rebuilds via the general per-column path.
    fn build_columns_fused(
        tuples: &[Tuple],
        arity: usize,
        interner: Option<&InternerRef>,
    ) -> Option<Vec<Column>> {
        enum FastData<'a> {
            Int(Vec<i64>),
            Float(Vec<f64>),
            Bool(Vec<bool>),
            Ts(Vec<Timestamp>),
            // Strings are collected as refs and interned in one
            // batch-level dictionary lock after the pass.
            Str(Vec<Option<&'a Arc<str>>>),
        }
        let n = tuples.len();
        let first = tuples.first()?;
        let mut data: Vec<FastData<'_>> = Vec::with_capacity(arity);
        let mut validity: Vec<ValidityBuilder> = Vec::with_capacity(arity);
        for j in 0..arity {
            data.push(match first.value(j) {
                Value::Int(_) => FastData::Int(Vec::with_capacity(n)),
                Value::Float(_) => FastData::Float(Vec::with_capacity(n)),
                Value::Bool(_) => FastData::Bool(Vec::with_capacity(n)),
                Value::Ts(_) => FastData::Ts(Vec::with_capacity(n)),
                Value::Str(_) => {
                    interner?;
                    FastData::Str(Vec::with_capacity(n))
                }
                Value::Null => return None,
            });
            validity.push(ValidityBuilder::new(n));
        }
        for (i, t) in tuples.iter().enumerate() {
            // One slice borrow per row: every cell comes off `values()`
            // without a per-cell bounds check.
            for ((j, d), val) in data.iter_mut().enumerate().zip(t.values()) {
                match (d, val) {
                    (FastData::Int(v), Value::Int(x)) => v.push(*x),
                    (FastData::Float(v), Value::Float(x)) => v.push(*x),
                    (FastData::Bool(v), Value::Bool(x)) => v.push(*x),
                    (FastData::Ts(v), Value::Ts(x)) => v.push(*x),
                    (FastData::Str(v), Value::Str(s)) => v.push(Some(s)),
                    (FastData::Int(v), Value::Null) => {
                        v.push(0);
                        validity[j].clear(i);
                    }
                    (FastData::Float(v), Value::Null) => {
                        v.push(0.0);
                        validity[j].clear(i);
                    }
                    (FastData::Bool(v), Value::Null) => {
                        v.push(false);
                        validity[j].clear(i);
                    }
                    (FastData::Ts(v), Value::Null) => {
                        v.push(Timestamp::ZERO);
                        validity[j].clear(i);
                    }
                    (FastData::Str(v), Value::Null) => {
                        v.push(None);
                        validity[j].clear(i);
                    }
                    _ => return None,
                }
            }
        }
        Some(
            data.into_iter()
                .zip(validity)
                .map(|(d, validity)| {
                    let data = match d {
                        FastData::Int(v) => ColumnData::Int(v),
                        FastData::Float(v) => ColumnData::Float(v),
                        FastData::Bool(v) => ColumnData::Bool(v),
                        FastData::Ts(v) => ColumnData::Ts(v),
                        FastData::Str(cells) => {
                            let int = interner.expect("checked above");
                            let mut syms = Vec::with_capacity(cells.len());
                            if cells.iter().all(Option::is_some) {
                                // No nulls (the common case): intern
                                // straight into the column, one pass.
                                int.sym_of_column(cells.iter().copied().flatten(), &mut syms);
                            } else {
                                let mut compact = Vec::with_capacity(cells.len());
                                int.sym_of_column(cells.iter().filter_map(|c| *c), &mut compact);
                                let mut next = compact.into_iter();
                                syms.extend(cells.iter().map(|c| match c {
                                    Some(_) => next.next().expect("one sym per string"),
                                    None => Sym(0),
                                }));
                            }
                            ColumnData::Str(syms)
                        }
                    };
                    Column {
                        data,
                        validity: validity.finish(),
                    }
                })
                .collect(),
        )
    }

    /// Column `j` of `tuples`: first pass picks the type from the
    /// non-null values (any disagreement → `Mixed`), second pass fills
    /// the typed vector.
    fn build_column(
        tuples: &[Tuple],
        j: usize,
        n: usize,
        interner: Option<&InternerRef>,
    ) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Str,
            Bool,
            Ts,
        }
        let mut kind: Option<Kind> = None;
        let mut mixed = false;
        for t in tuples {
            let k = match t.value(j) {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => {
                    if interner.is_none() {
                        mixed = true;
                        break;
                    }
                    Kind::Str
                }
                Value::Bool(_) => Kind::Bool,
                Value::Ts(_) => Kind::Ts,
            };
            match kind {
                None => kind = Some(k),
                Some(have) if have != k => {
                    mixed = true;
                    break;
                }
                Some(_) => {}
            }
        }
        if mixed {
            let mut validity = ValidityBuilder::new(n);
            let vals = tuples
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let v = t.value(j);
                    if v.is_null() {
                        validity.clear(i);
                    }
                    v.clone()
                })
                .collect();
            return Column {
                data: ColumnData::Mixed(vals),
                validity: validity.finish(),
            };
        }
        let mut validity = ValidityBuilder::new(n);
        let data = match kind {
            // All-null (or empty) column: typed as Int with every row
            // invalid — materialization only reads the bitmap.
            None => {
                for i in 0..n {
                    validity.clear(i);
                }
                ColumnData::Int(vec![0; n])
            }
            Some(Kind::Int) => {
                ColumnData::Int(Self::fill(tuples, j, &mut validity, 0i64, |v| match v {
                    Value::Int(x) => Some(*x),
                    _ => None,
                }))
            }
            Some(Kind::Float) => {
                ColumnData::Float(Self::fill(tuples, j, &mut validity, 0.0f64, |v| match v {
                    Value::Float(x) => Some(*x),
                    _ => None,
                }))
            }
            Some(Kind::Bool) => {
                ColumnData::Bool(Self::fill(tuples, j, &mut validity, false, |v| match v {
                    Value::Bool(x) => Some(*x),
                    _ => None,
                }))
            }
            Some(Kind::Ts) => ColumnData::Ts(Self::fill(
                tuples,
                j,
                &mut validity,
                Timestamp::ZERO,
                |v| match v {
                    Value::Ts(x) => Some(*x),
                    _ => None,
                },
            )),
            Some(Kind::Str) => {
                // One dictionary lock for the whole column.
                let int = interner.expect("Str kind implies interner");
                let mut syms = Vec::with_capacity(n);
                int.sym_of_column(
                    tuples.iter().filter_map(|t| match t.value(j) {
                        Value::Str(s) => Some(s),
                        _ => None,
                    }),
                    &mut syms,
                );
                let mut col = Vec::with_capacity(n);
                let mut next = syms.iter().copied();
                for (i, t) in tuples.iter().enumerate() {
                    match t.value(j) {
                        Value::Str(_) => col.push(next.next().expect("one sym per string")),
                        _ => {
                            validity.clear(i);
                            col.push(Sym(0));
                        }
                    }
                }
                ColumnData::Str(col)
            }
        };
        Column {
            data,
            validity: validity.finish(),
        }
    }

    fn fill<T: Copy>(
        tuples: &[Tuple],
        j: usize,
        validity: &mut ValidityBuilder,
        placeholder: T,
        get: impl Fn(&Value) -> Option<T>,
    ) -> Vec<T> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| match get(t.value(j)) {
                Some(x) => x,
                None => {
                    validity.clear(i);
                    placeholder
                }
            })
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of schema columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column `j`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// The event-timestamp column.
    pub fn ts(&self) -> &[Timestamp] {
        &self.ts
    }

    /// The sequence-number column.
    pub fn seq(&self) -> &[u64] {
        &self.seq
    }

    /// The sign column.
    pub fn sign(&self) -> &[Sign] {
        &self.sign
    }

    /// The revision column.
    pub fn revision(&self) -> &[u64] {
        &self.revision
    }

    /// The interner the batch's string columns index into, if any.
    pub fn interner(&self) -> Option<&InternerRef> {
        self.interner.as_ref()
    }

    /// Materialize the batch back into row tuples, appending to `out`.
    /// String columns resolve through the dictionary once per column;
    /// the resolved `Arc`s are the canonical ones, so the rows come
    /// back already pointer-canonicalized.
    pub fn extend_tuples(&self, out: &mut Vec<Tuple>) -> Result<()> {
        // Pass-through fast path: rows that survived only selection
        // kernels are clones of their source tuples — same cost as the
        // row path's `t.clone()`, no per-cell rebuild, no dictionary
        // resolution.
        if let Some(src) = &self.source {
            match &src.sel {
                None => out.extend(src.rows.iter().cloned()),
                Some(sel) => {
                    out.reserve(sel.len());
                    out.extend(sel.iter().map(|&i| src.rows[i as usize].clone()));
                }
            }
            return Ok(());
        }
        let mut resolved: Vec<Option<Vec<Arc<str>>>> = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            resolved.push(match (&c.data, &self.interner) {
                (ColumnData::Str(syms), Some(int)) => {
                    let mut strings = Vec::new();
                    int.resolve_column(syms, &mut strings)?;
                    Some(strings)
                }
                _ => None,
            });
        }
        out.reserve(self.len);
        for i in 0..self.len {
            let values: Vec<Value> = self
                .columns
                .iter()
                .zip(&resolved)
                .map(|(c, strings)| c.value_at(i, strings.as_deref()))
                .collect();
            out.push(Tuple::with_sign(
                values,
                self.ts[i],
                self.seq[i],
                self.sign[i],
                self.revision[i],
            ));
        }
        Ok(())
    }

    /// Materialize only the rows where `keep[i]`, appending to `out` —
    /// the terminal form of a selection kernel. With a row-form source
    /// this is a clone per kept row and nothing else; no intermediate
    /// filtered batch is ever built.
    pub fn extend_tuples_selected(&self, keep: &[bool], out: &mut Vec<Tuple>) -> Result<()> {
        debug_assert_eq!(keep.len(), self.len);
        if let Some(src) = &self.source {
            match &src.sel {
                None => out.extend(
                    src.rows
                        .iter()
                        .zip(keep)
                        .filter(|&(_, k)| *k)
                        .map(|(t, _)| t.clone()),
                ),
                Some(sel) => out.extend(
                    sel.iter()
                        .zip(keep)
                        .filter(|&(_, k)| *k)
                        .map(|(&i, _)| src.rows[i as usize].clone()),
                ),
            }
            return Ok(());
        }
        self.filter(keep).extend_tuples(out)
    }

    /// Materialize into a fresh row vector.
    pub fn to_tuples(&self) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.len);
        self.extend_tuples(&mut out)?;
        Ok(out)
    }

    /// A new batch keeping exactly the rows where `keep[i]` — the
    /// selection-bitmap primitive the columnar select/dedup kernels
    /// produce.
    pub fn filter(&self, keep: &[bool]) -> ColumnBatch {
        debug_assert_eq!(keep.len(), self.len);
        let n = keep.iter().filter(|k| **k).count();
        let survivors: Vec<usize> = (0..self.len).filter(|&i| keep[i]).collect();
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let mut validity = ValidityBuilder::new(n);
                for (o, &i) in survivors.iter().enumerate() {
                    if !c.is_valid(i) {
                        validity.clear(o);
                    }
                }
                let data = match &c.data {
                    ColumnData::Int(v) => {
                        ColumnData::Int(survivors.iter().map(|&i| v[i]).collect())
                    }
                    ColumnData::Float(v) => {
                        ColumnData::Float(survivors.iter().map(|&i| v[i]).collect())
                    }
                    ColumnData::Str(v) => {
                        ColumnData::Str(survivors.iter().map(|&i| v[i]).collect())
                    }
                    ColumnData::Bool(v) => {
                        ColumnData::Bool(survivors.iter().map(|&i| v[i]).collect())
                    }
                    ColumnData::Ts(v) => ColumnData::Ts(survivors.iter().map(|&i| v[i]).collect()),
                    ColumnData::Mixed(v) => {
                        ColumnData::Mixed(survivors.iter().map(|&i| v[i].clone()).collect())
                    }
                };
                Column {
                    data,
                    validity: validity.finish(),
                }
            })
            .collect();
        ColumnBatch {
            len: n,
            columns,
            ts: survivors.iter().map(|&i| self.ts[i]).collect(),
            seq: survivors.iter().map(|&i| self.seq[i]).collect(),
            sign: survivors.iter().map(|&i| self.sign[i]).collect(),
            revision: survivors.iter().map(|&i| self.revision[i]).collect(),
            interner: self.interner.clone(),
            // Filtering is pure selection: compose it onto the source
            // mapping so materialization keeps the clone fast path.
            source: self.source.as_ref().map(|src| RowSource {
                rows: Arc::clone(&src.rows),
                sel: Some(match &src.sel {
                    None => survivors.iter().map(|&i| i as u32).collect(),
                    Some(sel) => survivors.iter().map(|&i| sel[i]).collect(),
                }),
            }),
        }
    }

    /// A new batch with the given schema columns (the project kernel's
    /// output constructor): metadata columns are copied, signs reset to
    /// `Insert` and revisions to 0 — exactly what the row project's
    /// `Tuple::new` does.
    pub fn with_projected_columns(&self, columns: Vec<Column>) -> ColumnBatch {
        debug_assert!(columns.iter().all(|c| c.data.len() == self.len));
        ColumnBatch {
            len: self.len,
            columns,
            ts: self.ts.clone(),
            seq: self.seq.clone(),
            sign: vec![Sign::Insert; self.len],
            revision: vec![0; self.len],
            interner: self.interner.clone(),
            // Projection changes the row's values (and resets sign /
            // revision): the output is no longer any source row.
            source: None,
        }
    }

    /// A constant column of `v` repeated `len` times (the project
    /// kernel's literal column). String literals intern through the
    /// batch's dictionary; returns `None` when that is impossible
    /// (string literal, no interner).
    pub fn lit_column(&self, v: &Value) -> Option<Column> {
        let n = self.len;
        let data = match v {
            Value::Null => {
                let mut validity = ValidityBuilder::new(n);
                for i in 0..n {
                    validity.clear(i);
                }
                return Some(Column {
                    data: ColumnData::Int(vec![0; n]),
                    validity: validity.finish(),
                });
            }
            Value::Int(x) => ColumnData::Int(vec![*x; n]),
            Value::Float(x) => ColumnData::Float(vec![*x; n]),
            Value::Bool(x) => ColumnData::Bool(vec![*x; n]),
            Value::Ts(x) => ColumnData::Ts(vec![*x; n]),
            Value::Str(s) => {
                let sym = self.interner.as_ref()?.sym_of(s);
                ColumnData::Str(vec![sym; n])
            }
        };
        Some(Column {
            data,
            validity: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::StrInterner;

    fn interner() -> InternerRef {
        Arc::new(StrInterner::new())
    }

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn round_trips_typed_columns() {
        let int = interner();
        let rows = vec![
            Tuple::new(
                vec![Value::str("r1"), Value::Int(7), Value::Ts(ts(1))],
                ts(1),
                0,
            ),
            Tuple::new(
                vec![Value::str("r2"), Value::Int(9), Value::Ts(ts(2))],
                ts(2),
                1,
            ),
        ];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.arity(), 3);
        assert!(matches!(cb.column(0).data, ColumnData::Str(_)));
        assert!(matches!(cb.column(1).data, ColumnData::Int(_)));
        assert!(matches!(cb.column(2).data, ColumnData::Ts(_)));
        assert_eq!(cb.to_tuples().unwrap(), rows);
    }

    #[test]
    fn nulls_round_trip_via_validity() {
        let int = interner();
        let rows = vec![
            Tuple::new(vec![Value::Null, Value::Int(1)], ts(1), 0),
            Tuple::new(vec![Value::str("x"), Value::Null], ts(2), 1),
        ];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        assert!(!cb.column(0).is_valid(0));
        assert!(cb.column(0).is_valid(1));
        assert!(!cb.column(1).is_valid(1));
        assert_eq!(cb.to_tuples().unwrap(), rows);
    }

    #[test]
    fn heterogeneous_column_falls_back_to_mixed() {
        let int = interner();
        let rows = vec![
            Tuple::new(vec![Value::Int(1)], ts(1), 0),
            Tuple::new(vec![Value::Float(2.5)], ts(2), 1),
        ];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        assert!(matches!(cb.column(0).data, ColumnData::Mixed(_)));
        assert_eq!(cb.to_tuples().unwrap(), rows);
    }

    #[test]
    fn strings_without_interner_fall_back_to_mixed() {
        let rows = vec![Tuple::new(vec![Value::str("a")], ts(1), 0)];
        let cb = ColumnBatch::from_tuples(&rows, None).unwrap();
        assert!(matches!(cb.column(0).data, ColumnData::Mixed(_)));
        assert_eq!(cb.to_tuples().unwrap(), rows);
    }

    #[test]
    fn signs_and_revisions_survive() {
        let int = interner();
        let t = Tuple::new(vec![Value::Int(4)], ts(3), 7);
        let rows = vec![t.retraction_of(2), t.at_revision(3)];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        assert_eq!(cb.sign()[0], Sign::Retract);
        assert_eq!(cb.revision(), &[2, 3]);
        assert_eq!(cb.to_tuples().unwrap(), rows);
    }

    #[test]
    fn ragged_batches_have_no_columnar_form() {
        let rows = vec![
            Tuple::new(vec![Value::Int(1)], ts(1), 0),
            Tuple::new(vec![Value::Int(1), Value::Int(2)], ts(2), 1),
        ];
        assert!(ColumnBatch::from_tuples(&rows, None).is_none());
    }

    #[test]
    fn filter_keeps_selected_rows_and_validity() {
        let int = interner();
        let rows = vec![
            Tuple::new(vec![Value::str("a"), Value::Null], ts(1), 0),
            Tuple::new(vec![Value::str("b"), Value::Int(2)], ts(2), 1),
            Tuple::new(vec![Value::Null, Value::Int(3)], ts(3), 2),
        ];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        let filtered = cb.filter(&[true, false, true]);
        assert_eq!(filtered.len(), 2);
        assert_eq!(
            filtered.to_tuples().unwrap(),
            vec![rows[0].clone(), rows[2].clone()]
        );
    }

    #[test]
    fn empty_batch_round_trips() {
        let cb = ColumnBatch::from_tuples(&[], None).unwrap();
        assert!(cb.is_empty());
        assert_eq!(cb.arity(), 0);
        assert!(cb.to_tuples().unwrap().is_empty());
    }

    #[test]
    fn lit_column_interns_string_literals() {
        let int = interner();
        let rows = vec![
            Tuple::new(vec![Value::Int(1)], ts(1), 0),
            Tuple::new(vec![Value::Int(2)], ts(2), 1),
        ];
        let cb = ColumnBatch::from_tuples(&rows, Some(&int)).unwrap();
        let col = cb.lit_column(&Value::str("tag")).unwrap();
        assert!(matches!(col.data, ColumnData::Str(_)));
        let projected = cb.with_projected_columns(vec![col]);
        let out = projected.to_tuples().unwrap();
        assert_eq!(out[0].values(), &[Value::str("tag")]);
        assert_eq!(out[1].ts(), ts(2));
    }
}
