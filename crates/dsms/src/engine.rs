//! The continuous-query engine.
//!
//! The engine owns the catalog (streams, tables, functions, aggregates)
//! and a set of registered continuous queries. Arriving tuples are pushed
//! into named streams; the engine routes them to every query subscribed to
//! that stream, routes each query's outputs to its sink, and cascades —
//! a sink may itself be a stream feeding further queries (the paper's
//! `cleaned_readings` pattern).
//!
//! # Time
//!
//! The engine maintains a global stream-time high-water mark. With
//! `auto_watermark` enabled (the default), every pushed tuple also acts as
//! a punctuation at its own timestamp — valid because the simulators (and
//! any single merged RFID feed) deliver tuples in global timestamp order.
//! Callers with multiple unsynchronized feeds should disable it and call
//! [`Engine::advance_to`] from their own heartbeat, which is exactly the
//! *active expiration* mechanism of ESL: window expiry must be detected
//! even when no tuple arrives.

use crate::agg::AggregateRegistry;
use crate::batch::ColumnBatch;
use crate::ckpt::{EngineCheckpoint, StateNode};
use crate::error::{DsmsError, Result};
use crate::expr::FunctionRegistry;
use crate::intern::{InternerRef, Representation, StrInterner};
use crate::key::KeyCodec;
use crate::obs::{Counter, Histogram, MetricValue, MetricsSnapshot, Registry};
use crate::ops::{OpReport, Operator, SharedCore, SharedCoreRef, SharedTap, SpeculativeGate};
use crate::schema::SchemaRef;
use crate::snapshot::{MaterializedWindow, SnapshotRef};
use crate::table::{Table, TableRef};
use crate::time::Timestamp;
use crate::trace::{FlightRecorder, TraceEvent, TraceKind};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use crate::window::WindowExtent;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// 1-in-64 sampling for the per-query wall-clock histograms: cheap
/// enough to leave on, frequent enough to fill the buckets quickly.
const WALL_SAMPLE_MASK: u64 = 63;

/// Dead-letter retention: malformed arrivals kept for inspection. The
/// buffer is bounded (oldest dropped first) so a misbehaving feed cannot
/// grow engine memory without bound.
const DEAD_LETTER_CAP: usize = 256;

/// Why an arrival landed in the dead-letter buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The row failed schema validation (arity, types, NULL time).
    Malformed,
    /// The row arrived more than the stream's slack behind the
    /// high-water mark — too late for the reorder buffer to re-order.
    Late,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Malformed => write!(f, "malformed"),
            RejectReason::Late => write!(f, "late"),
        }
    }
}

/// A rejected arrival held in the engine's dead-letter buffer: the raw
/// row that could not be applied, where it was headed, and why.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Target stream name as given by the caller.
    pub stream: String,
    /// The raw row values that failed validation.
    pub values: Vec<Value>,
    /// Which class of rejection this was.
    pub reason: RejectReason,
    /// Rendered rejection reason.
    pub error: String,
}

/// Where a query sits on the consistency/latency spectrum (CEDR's
/// central dial) under out-of-order input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Consistency {
    /// Block emission until the watermark proves input order: output is
    /// byte-identical to an in-order run, at the cost of disorder-slack
    /// latency. The default.
    #[default]
    Consistent,
    /// Emit speculatively on every arrival; when a late tuple
    /// invalidates prior output the query issues typed retraction
    /// tuples ([`crate::tuple::Sign::Retract`]) followed by corrections.
    Fast,
}

/// Where a query's output tuples go.
pub enum Sink {
    /// Re-inject into a named stream (validated against its schema).
    Stream(String),
    /// Insert into a named table.
    Table(String),
    /// Append to a shared collector (tests, harnesses, ad-hoc queries).
    Collect(Collector),
    /// Drop (the query is run for its side effects or its stats).
    Discard,
}

/// Shared output buffer for collected queries.
#[derive(Clone, Default)]
pub struct Collector {
    buf: Arc<Mutex<Vec<Tuple>>>,
}

impl Collector {
    /// New empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Drain all collected tuples.
    pub fn take(&self) -> Vec<Tuple> {
        std::mem::take(&mut self.buf.lock())
    }

    /// Snapshot without draining.
    pub fn snapshot(&self) -> Vec<Tuple> {
        self.buf.lock().clone()
    }

    /// Number of collected tuples.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a whole batch under one lock acquisition.
    fn push_many(&self, mut ts: Vec<Tuple>) {
        self.buf.lock().append(&mut ts);
    }
}

/// Identifier of a registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

/// One row of [`Engine::query_stats`].
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The query's id.
    pub id: QueryId,
    /// Name given at registration.
    pub name: String,
    /// Whether it still receives input.
    pub active: bool,
    /// Tuples emitted so far.
    pub emitted: u64,
    /// Tuples retained in operator state.
    pub retained: usize,
    /// Tuples delivered to the query across all ports.
    pub tuples_in: u64,
    /// Tuples routed to the query's sink.
    pub tuples_out: u64,
    /// Bytes held in encoded state keys across the query's operators.
    pub state_key_bytes: usize,
    /// Approximate p99 of the sampled per-invocation wall clock, in
    /// nanoseconds (log-bucket upper bound; 0 until a sample lands).
    pub wall_p99_ns: u64,
}

struct QueryState {
    name: String,
    op: Box<dyn Operator>,
    sink: Sink,
    emitted: u64,
    active: bool,
    /// Consistency level chosen at registration (fast queries run behind
    /// a [`SpeculativeGate`] and receive arrivals before release).
    consistency: Consistency,
    /// Tuples delivered to the query (all ports).
    tuples_in: Counter,
    /// Tuples the query emitted to its sink.
    tuples_out: Counter,
    /// Sampled wall-clock per operator invocation, nanoseconds.
    wall: Histogram,
}

/// Which queries a dispatched batch targets. Direct (in-order) arrivals
/// and derived-stream cascades go to every subscriber; a speculative
/// arrival entering the reorder buffer goes only to fast queries; the
/// buffer's ordered release goes only to consistent queries (fast ones
/// already saw those tuples at arrival time).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Deliver {
    All,
    FastOnly,
    OrderedOnly,
}

impl Deliver {
    fn targets(self, consistency: Consistency) -> bool {
        match self {
            Deliver::All => true,
            Deliver::FastOnly => consistency == Consistency::Fast,
            Deliver::OrderedOnly => consistency == Consistency::Consistent,
        }
    }
}

/// One shared subplan in the engine's registry: the core chain, its
/// identity (structural fingerprint plus the canonical rendering it was
/// hashed over — compared on attach so a 64-bit collision can never fuse
/// two different queries), and the subscriber queries tapping it.
struct SharedEntry {
    fingerprint: u64,
    canon: String,
    /// Display label (the plan name of the first subscriber).
    label: String,
    core: SharedCoreRef,
    /// Indices into `queries` of every tap ever attached.
    subscriber_ids: Vec<usize>,
}

/// One row of [`Engine::shared_stats`].
#[derive(Debug, Clone)]
pub struct SharedInfo {
    /// Display label of the shared chain.
    pub label: String,
    /// Structural fingerprint of the shared plan prefix.
    pub fingerprint: u64,
    /// Names of every subscriber, in attach order.
    pub subscribers: Vec<String>,
    /// Subscribers still receiving input.
    pub active_subscribers: usize,
    /// Tuples delivered to the shared core (all ports).
    pub tuples_in: u64,
    /// Batches served from the memo instead of re-executed.
    pub memo_hits: u64,
    /// Tuples retained in the shared core's state.
    pub retained: usize,
    /// Encoded state-key bytes held by the shared core (attributed
    /// once, not per subscriber).
    pub state_key_bytes: usize,
}

struct StreamEntry {
    schema: SchemaRef,
    /// Indices of string-typed columns, cached so admission interning
    /// touches only the columns that can hold strings.
    str_cols: Vec<usize>,
    last_ts: Timestamp,
    pushed: u64,
    /// Registry twin of `pushed` (readable from snapshots).
    pushed_ctr: Counter,
    /// Out-of-order arrivals rejected on this stream.
    rejected_ctr: Counter,
    /// Bounded-disorder handling: arrivals buffer here and release in
    /// timestamp order once the stream's high-water mark passes them by
    /// `slack` (RFID readers timestamp with jitter; §2's model still
    /// assumes ordered streams, so the engine restores order at the edge).
    reorder: Option<ReorderState>,
}

struct ReorderState {
    slack: crate::time::Duration,
    /// Max event time seen (the pre-slack high-water mark).
    max_seen: Timestamp,
    /// Buffered arrivals, drained in (ts, seq) order.
    pending: std::collections::BTreeMap<(Timestamp, u64), Tuple>,
    /// Arrivals that entered the buffer.
    buffered_ctr: Counter,
    /// Tuples released from the buffer (slack release or explicit flush).
    flushed_ctr: Counter,
}

/// The DSMS runtime. Single-threaded and deterministic; see
/// [`crate::driver`] for the concurrent front door.
pub struct Engine {
    streams: HashMap<String, StreamEntry>,
    tables: HashMap<String, TableRef>,
    /// Materialized windows per stream (ad-hoc snapshot queries, §2.1).
    materialized: HashMap<String, Vec<SnapshotRef>>,
    funcs: FunctionRegistry,
    aggs: AggregateRegistry,
    queries: Vec<QueryState>,
    /// stream name -> [(query index, input port)]
    subs: HashMap<String, Vec<(usize, usize)>>,
    /// Shared-subplan registry, in creation order (checkpointed
    /// positionally, like `queries`).
    shared: Vec<SharedEntry>,
    /// Whether [`Engine::register_shared`] attaches matching plans to
    /// one chain (opt-in; off keeps every query on a private chain).
    shared_execution: bool,
    next_seq: u64,
    now: Timestamp,
    auto_watermark: bool,
    /// Row representation: interned (default) canonicalizes string
    /// columns at admission so operator state keys on symbol ids.
    representation: Representation,
    /// The engine's string dictionary (shared with its operators).
    interner: InternerRef,
    /// Key codec handed to operators at registration.
    codec: KeyCodec,
    /// Whether the batch path hands columnar batches to capable
    /// operators (effective only under the interned representation).
    columnar: bool,
    /// Shared instrument registry (cloneable; see [`Engine::registry`]).
    obs: Registry,
    /// Punctuations delivered via [`Engine::advance_to`].
    punctuations: Counter,
    /// Malformed arrivals rejected at ingest (all streams).
    rejected_tuples: Counter,
    /// Arrivals beyond the disorder slack, dead-lettered (all streams).
    late_tuples: Counter,
    /// Watermarks rejected by [`Engine::advance_watermark`] for
    /// regressing below the high-water mark.
    stale_watermarks: Counter,
    /// The most recent rejected arrivals, oldest first.
    dead_letters: VecDeque<DeadLetter>,
    /// Flight recorder: off by default; one relaxed load per site while
    /// disabled (see [`crate::trace`]).
    trace: FlightRecorder,
    /// Sampled ingest→emit latency (1-in-64 admissions).
    tuple_latency: Histogram,
    /// Admission instant of the in-flight sampled tuple, cleared when
    /// its cascade completes. A plain field swap — no allocation — so
    /// the latency path stays inside the zero-allocs-per-tuple budget.
    lat_sample: Option<std::time::Instant>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Fresh engine with built-in aggregates, no streams or queries,
    /// running the default interned representation.
    pub fn new() -> Engine {
        Engine::with_representation(Representation::Interned)
    }

    /// Fresh engine with an explicit row representation. `Seed` keeps
    /// raw string bytes in state keys — the pre-interning layout the R1
    /// bench sweep measures against.
    pub fn with_representation(representation: Representation) -> Engine {
        let obs = Registry::new();
        let punctuations = obs.counter("eslev_punctuations_total", &[]);
        let rejected_tuples = obs.counter("eslev_rejected_tuples_total", &[]);
        let late_tuples = obs.counter("eslev_late_tuples_total", &[]);
        let stale_watermarks = obs.counter("eslev_stale_watermarks_total", &[]);
        let tuple_latency = obs.histogram("eslev_tuple_latency_ns", &[]);
        let interner: InternerRef = Arc::new(StrInterner::new());
        let codec = match representation {
            Representation::Interned => KeyCodec::interned(interner.clone()),
            Representation::Seed => KeyCodec::raw(),
        };
        Engine {
            streams: HashMap::new(),
            tables: HashMap::new(),
            materialized: HashMap::new(),
            funcs: FunctionRegistry::new(),
            aggs: AggregateRegistry::new(),
            queries: Vec::new(),
            subs: HashMap::new(),
            shared: Vec::new(),
            shared_execution: false,
            next_seq: 0,
            now: Timestamp::ZERO,
            auto_watermark: true,
            representation,
            interner,
            codec,
            columnar: false,
            obs,
            punctuations,
            rejected_tuples,
            late_tuples,
            stale_watermarks,
            dead_letters: VecDeque::new(),
            trace: FlightRecorder::default(),
            tuple_latency,
            lat_sample: None,
        }
    }

    /// The engine's flight recorder; clones share the ring and the
    /// enabled flag, so a handle taken before moving the engine into a
    /// driver keeps draining live events.
    pub fn tracer(&self) -> FlightRecorder {
        self.trace.clone()
    }

    /// Turn flight-recorder tracing on or off (off by default).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Whether flight-recorder tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.trace.enabled()
    }

    /// Drain the buffered trace events, oldest first.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// The engine's row representation.
    pub fn representation(&self) -> Representation {
        self.representation
    }

    /// Opt the batch path into columnar (SoA) execution: batches to
    /// columnar-capable operators are converted to [`ColumnBatch`]es
    /// once per batch and run through their kernels. Only effective
    /// under the interned representation — the seed representation has
    /// no symbol columns and silently stays on the row path.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// Whether columnar execution is *effective*: requested via
    /// [`Engine::set_columnar`] and running the interned representation.
    pub fn columnar(&self) -> bool {
        self.columnar && self.representation == Representation::Interned
    }

    /// The key codec operators are bound with at registration — the
    /// planner uses it to bind freshly lowered plans when rendering
    /// EXPLAIN output.
    pub fn key_codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// Dictionary size: `(entries, content bytes)` of the engine's
    /// interner.
    pub fn interner_stats(&self) -> (usize, usize) {
        (self.interner.entries(), self.interner.bytes())
    }

    /// Total encoded state-key bytes across all registered queries.
    /// Shared chains are counted exactly once (their subscribers' taps
    /// report residual-only bytes).
    pub fn state_key_bytes(&self) -> usize {
        let private: usize = self.queries.iter().map(|q| q.op.state_key_bytes()).sum();
        let shared: usize = self
            .shared
            .iter()
            .map(|e| e.core.lock().op.state_key_bytes())
            .sum();
        private + shared
    }

    /// The engine's instrument registry. Clones share the underlying
    /// instruments, so a clone taken before handing the engine to a
    /// [`crate::driver::EngineDriver`] keeps reading live values.
    pub fn registry(&self) -> Registry {
        self.obs.clone()
    }

    /// Disable per-tuple watermarks (multiple unsynchronized feeds).
    pub fn set_auto_watermark(&mut self, on: bool) {
        self.auto_watermark = on;
    }

    /// Register a stream; errors on duplicate names.
    pub fn create_stream(&mut self, schema: SchemaRef) -> Result<()> {
        let name = schema.name.clone();
        if schema.time_column.is_none() {
            return Err(DsmsError::schema(format!(
                "stream `{name}` must declare a time column"
            )));
        }
        if self.streams.contains_key(&name) || self.tables.contains_key(&name) {
            return Err(DsmsError::duplicate(name));
        }
        let labels = [("stream", name.as_str())];
        let pushed_ctr = self.obs.counter("eslev_stream_pushed_total", &labels);
        let rejected_ctr = self.obs.counter("eslev_stream_rejected_total", &labels);
        let str_cols = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ty == ValueType::Str)
            .map(|(i, _)| i)
            .collect();
        self.streams.insert(
            name,
            StreamEntry {
                schema,
                str_cols,
                last_ts: Timestamp::ZERO,
                pushed: 0,
                pushed_ctr,
                rejected_ctr,
                reorder: None,
            },
        );
        Ok(())
    }

    /// Register a table; errors on duplicate names.
    pub fn create_table(&mut self, schema: SchemaRef) -> Result<TableRef> {
        let name = schema.name.clone();
        if self.streams.contains_key(&name) || self.tables.contains_key(&name) {
            return Err(DsmsError::duplicate(name));
        }
        let t = Table::new(schema);
        self.tables.insert(name, t.clone());
        Ok(t)
    }

    /// Handle to a registered table.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DsmsError::unknown(format!("table `{name}`")))
    }

    /// Schema of a registered stream.
    pub fn stream_schema(&self, name: &str) -> Result<SchemaRef> {
        self.streams
            .get(&name.to_ascii_lowercase())
            .map(|e| e.schema.clone())
            .ok_or_else(|| DsmsError::unknown(format!("stream `{name}`")))
    }

    /// Mutable access to the scalar-function registry.
    pub fn functions_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.funcs
    }

    /// The scalar-function registry.
    pub fn functions(&self) -> &FunctionRegistry {
        &self.funcs
    }

    /// Mutable access to the aggregate registry.
    pub fn aggregates_mut(&mut self) -> &mut AggregateRegistry {
        &mut self.aggs
    }

    /// The aggregate registry.
    pub fn aggregates(&self) -> &AggregateRegistry {
        &self.aggs
    }

    /// Tolerate out-of-order arrivals on a stream up to `slack`: pushes
    /// buffer inside the engine and release in global `(ts, seq)` order
    /// once every disorder-tolerant stream's newest arrival is `slack`
    /// ahead of them (a *global* release bound — releasing one stream
    /// independently would let a multi-stream detector see cross-stream
    /// inversions). Tuples arriving behind what has already been
    /// released are too late to re-order: they are counted, dead-lettered
    /// with [`RejectReason::Late`], and never silently applied or
    /// dropped. Call [`Engine::flush_disorder`] (or push something
    /// `slack` newer) to drain the tail.
    pub fn set_disorder_tolerance(
        &mut self,
        stream: &str,
        slack: crate::time::Duration,
    ) -> Result<()> {
        let lower = stream.to_ascii_lowercase();
        if !self.streams.contains_key(&lower) {
            return Err(DsmsError::unknown(format!("stream `{stream}`")));
        }
        let labels = [("stream", lower.as_str())];
        let buffered_ctr = self.obs.counter("eslev_disorder_buffered_total", &labels);
        let flushed_ctr = self.obs.counter("eslev_disorder_flushed_total", &labels);
        let entry = self
            .streams
            .get_mut(&lower)
            .ok_or_else(|| DsmsError::unknown(format!("stream `{stream}`")))?;
        entry.reorder = Some(ReorderState {
            slack,
            max_seen: Timestamp::ZERO,
            pending: std::collections::BTreeMap::new(),
            buffered_ctr,
            flushed_ctr,
        });
        Ok(())
    }

    /// Drain every buffered out-of-order tuple on every stream (end of
    /// feed), merged across streams in global `(ts, seq)` order;
    /// advances stream time to the newest drained arrival.
    pub fn flush_disorder(&mut self) -> Result<()> {
        let mut drained: Vec<(String, Tuple)> = Vec::new();
        for (name, entry) in self.streams.iter_mut() {
            let Some(r) = entry.reorder.as_mut() else {
                continue;
            };
            let all: Vec<Tuple> = std::mem::take(&mut r.pending).into_values().collect();
            r.flushed_ctr.add(all.len() as u64);
            drained.extend(all.into_iter().map(|t| (name.clone(), t)));
        }
        drained.sort_by_key(|(_, t)| t.order_key());
        for (name, t) in drained {
            self.deliver_ordered(&name, t, Deliver::OrderedOnly)?;
        }
        Ok(())
    }

    /// The global release bound: every buffered tuple at or below it is
    /// provably ordered, because each disorder-tolerant stream's
    /// high-water mark is at least `slack` past it. `None` without any
    /// tolerant stream.
    fn release_bound(&self) -> Option<Timestamp> {
        self.streams
            .values()
            .filter_map(|e| e.reorder.as_ref())
            .map(|r| r.max_seen.saturating_sub(r.slack))
            .min()
    }

    /// How far the reorder buffer has already released: the newest
    /// delivered event time across disorder-tolerant streams. An arrival
    /// behind this cannot be re-ordered any more and is late.
    fn released_frontier(&self) -> Timestamp {
        self.streams
            .values()
            .filter(|e| e.reorder.is_some())
            .map(|e| e.last_ts)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Release every buffered tuple at or below the global bound, merged
    /// across streams in `(ts, seq)` order, to consistent queries.
    fn release_ready(&mut self) -> Result<()> {
        let Some(bound) = self.release_bound() else {
            return Ok(());
        };
        let mut ready: Vec<(String, Tuple)> = Vec::new();
        for (name, entry) in self.streams.iter_mut() {
            let Some(r) = entry.reorder.as_mut() else {
                continue;
            };
            let mut released = 0u64;
            while let Some(first) = r.pending.first_entry() {
                if first.key().0 <= bound {
                    ready.push((name.clone(), first.remove()));
                    released += 1;
                } else {
                    break;
                }
            }
            r.flushed_ctr.add(released);
        }
        ready.sort_by_key(|(_, t)| t.order_key());
        for (name, t) in ready {
            self.deliver_ordered(&name, t, Deliver::OrderedOnly)?;
        }
        Ok(())
    }

    /// Whether any active fast-consistency query subscribes to a stream
    /// (such arrivals are dispatched speculatively at push time).
    fn has_fast_subscriber(&self, lower: &str) -> bool {
        self.subs.get(lower).is_some_and(|subs| {
            subs.iter().any(|(idx, _)| {
                self.queries[*idx].active && self.queries[*idx].consistency == Consistency::Fast
            })
        })
    }

    fn deliver_ordered(&mut self, lower: &str, t: Tuple, mode: Deliver) -> Result<()> {
        let entry = self.streams.get_mut(lower).expect("stream exists");
        debug_assert!(t.ts() >= entry.last_ts, "reorder buffer releases in order");
        entry.last_ts = t.ts();
        entry.pushed += 1;
        entry.pushed_ctr.inc();
        let ts = t.ts();
        if self.auto_watermark && ts > self.now {
            self.advance_to(ts)?;
        }
        self.dispatch_batch(lower.to_string(), vec![t], mode)
    }

    /// Maintain a materialized window over a stream for ad-hoc snapshot
    /// queries (§2.1 of the paper: query the recent past of a stream
    /// without persisting it). Returns the queryable handle.
    pub fn materialize(&mut self, stream: &str, extent: WindowExtent) -> Result<SnapshotRef> {
        let lower = stream.to_ascii_lowercase();
        let schema = self.stream_schema(&lower)?;
        let m = MaterializedWindow::new(schema, extent)?;
        self.materialized.entry(lower).or_default().push(m.clone());
        Ok(m)
    }

    /// The first materialized window registered over a stream, if any.
    pub fn snapshot_of(&self, stream: &str) -> Option<SnapshotRef> {
        self.materialized
            .get(&stream.to_ascii_lowercase())
            .and_then(|v| v.first())
            .cloned()
    }

    /// Register a continuous query reading from `sources` (port i =
    /// sources\[i\]) through `op` into `sink`, at the default
    /// [`Consistency::Consistent`] level.
    pub fn register_query(
        &mut self,
        name: impl Into<String>,
        sources: Vec<&str>,
        op: Box<dyn Operator>,
        sink: Sink,
    ) -> Result<QueryId> {
        self.register_query_with(name, sources, op, sink, Consistency::Consistent)
    }

    /// Register a continuous query with an explicit consistency level.
    ///
    /// `Fast` wraps the operator tree in a [`SpeculativeGate`]: the
    /// query receives every admitted arrival immediately (before the
    /// reorder buffer proves order) and issues typed retraction tuples
    /// when a late arrival invalidates prior output. Retractions do not
    /// cascade through derived streams, so a fast query cannot feed a
    /// [`Sink::Stream`].
    pub fn register_query_with(
        &mut self,
        name: impl Into<String>,
        sources: Vec<&str>,
        op: Box<dyn Operator>,
        sink: Sink,
        consistency: Consistency,
    ) -> Result<QueryId> {
        let name = name.into();
        let op = if consistency == Consistency::Fast {
            if matches!(sink, Sink::Stream(_)) {
                return Err(DsmsError::plan(format!(
                    "fast-consistency query `{name}` cannot feed a derived stream: \
                     retraction tuples do not cascade; use a collector, table or \
                     discard sink"
                )));
            }
            let labels = [("query", name.as_str())];
            let retractions = self.obs.counter("eslev_retractions_total", &labels);
            Box::new(SpeculativeGate::new(op, self.auto_watermark)?.with_counter(retractions))
                as Box<dyn Operator>
        } else {
            op
        };
        if sources.len() != op.num_ports() {
            return Err(DsmsError::plan(format!(
                "operator `{}` expects {} inputs, got {}",
                op.name(),
                op.num_ports(),
                sources.len()
            )));
        }
        for s in &sources {
            let lower = s.to_ascii_lowercase();
            if !self.streams.contains_key(&lower) {
                return Err(DsmsError::unknown(format!("stream `{s}`")));
            }
        }
        if let Sink::Stream(s) = &sink {
            if !self.streams.contains_key(&s.to_ascii_lowercase()) {
                return Err(DsmsError::unknown(format!("sink stream `{s}`")));
            }
        }
        if let Sink::Table(t) = &sink {
            if !self.tables.contains_key(&t.to_ascii_lowercase()) {
                return Err(DsmsError::unknown(format!("sink table `{t}`")));
            }
        }
        let idx = self.queries.len();
        for (port, s) in sources.iter().enumerate() {
            self.subs
                .entry(s.to_ascii_lowercase())
                .or_default()
                .push((idx, port));
        }
        let id = idx.to_string();
        let labels = [("query", name.as_str()), ("id", id.as_str())];
        let tuples_in = self.obs.counter("eslev_query_tuples_in_total", &labels);
        let tuples_out = self.obs.counter("eslev_query_tuples_out_total", &labels);
        let wall = self.obs.histogram("eslev_query_wall_ns", &labels);
        let mut op = op;
        op.bind_interner(&self.codec);
        self.queries.push(QueryState {
            name,
            op,
            sink,
            emitted: 0,
            active: true,
            consistency,
            tuples_in,
            tuples_out,
            wall,
        });
        Ok(QueryId(idx))
    }

    /// Convenience: register a query whose outputs are collected.
    pub fn register_collected(
        &mut self,
        name: impl Into<String>,
        sources: Vec<&str>,
        op: Box<dyn Operator>,
    ) -> Result<(QueryId, Collector)> {
        let c = Collector::new();
        let id = self.register_query(name, sources, op, Sink::Collect(c.clone()))?;
        Ok((id, c))
    }

    /// Convenience: register a collected query at an explicit
    /// consistency level.
    pub fn register_collected_with(
        &mut self,
        name: impl Into<String>,
        sources: Vec<&str>,
        op: Box<dyn Operator>,
        consistency: Consistency,
    ) -> Result<(QueryId, Collector)> {
        let c = Collector::new();
        let id =
            self.register_query_with(name, sources, op, Sink::Collect(c.clone()), consistency)?;
        Ok((id, c))
    }

    /// The consistency level a query was registered at.
    pub fn query_consistency(&self, id: QueryId) -> Consistency {
        self.queries[id.0].consistency
    }

    /// Turn multi-query shared execution on or off (off by default).
    /// Only affects queries registered *after* the call via
    /// [`Engine::register_shared`]-aware frontends.
    pub fn set_shared_execution(&mut self, on: bool) {
        self.shared_execution = on;
    }

    /// Whether shared execution is enabled.
    pub fn shared_execution(&self) -> bool {
        self.shared_execution
    }

    /// Register a continuous query whose plan splits into a shared core
    /// (identified by `fingerprint` + `canon`) and an optional
    /// per-query residual stage. If a chain with the same identity
    /// exists and has not consumed input yet, the query attaches to it
    /// as an additional subscriber — the core executes once per batch
    /// and each subscriber applies only its residual. Otherwise a fresh
    /// chain is created from `core_op`.
    ///
    /// Chains are reference-counted by their subscribers' activity:
    /// deregistering one subscriber leaves the core (and its state) in
    /// place for the survivors, and a fully-deregistered chain is never
    /// re-attached once warm — a later identical registration gets a
    /// fresh chain, exactly like an independent one would.
    #[allow(clippy::too_many_arguments)]
    pub fn register_shared(
        &mut self,
        name: impl Into<String>,
        sources: Vec<&str>,
        fingerprint: u64,
        canon: &str,
        label: &str,
        core_op: Box<dyn Operator>,
        residual: Option<Box<dyn Operator>>,
        sink: Sink,
    ) -> Result<QueryId> {
        let name = name.into();
        let existing = self.shared.iter().position(|e| {
            e.fingerprint == fingerprint && e.canon == canon && e.core.lock().tuples_in == 0
        });
        let (idx, created) = match existing {
            Some(i) => (i, false),
            None => {
                let mut core_op = core_op;
                core_op.bind_interner(&self.codec);
                self.shared.push(SharedEntry {
                    fingerprint,
                    canon: canon.to_string(),
                    label: label.to_string(),
                    core: SharedCore::new(core_op),
                    subscriber_ids: Vec::new(),
                });
                (self.shared.len() - 1, true)
            }
        };
        let core = self.shared[idx].core.clone();
        let mut tap = SharedTap::new(core.clone(), residual);
        let sid = idx.to_string();
        let labels = [("query", name.as_str()), ("chain", sid.as_str())];
        tap.set_hit_counter(self.obs.counter("eslev_shared_memo_hits_total", &labels));
        match self.register_query(name.clone(), sources, Box::new(tap), sink) {
            Ok(qid) => {
                core.lock().subscribers.push(name);
                self.shared[idx].subscriber_ids.push(qid.0);
                Ok(qid)
            }
            Err(e) => {
                if created {
                    self.shared.pop();
                }
                Err(e)
            }
        }
    }

    /// Introspection: one row per shared chain, in creation order.
    pub fn shared_stats(&self) -> Vec<SharedInfo> {
        self.shared
            .iter()
            .map(|e| {
                let core = e.core.lock();
                SharedInfo {
                    label: e.label.clone(),
                    fingerprint: e.fingerprint,
                    subscribers: core.subscribers.clone(),
                    active_subscribers: e
                        .subscriber_ids
                        .iter()
                        .filter(|&&i| self.queries[i].active)
                        .count(),
                    tuples_in: core.tuples_in,
                    memo_hits: core.memo_hits,
                    retained: core.op.retained(),
                    state_key_bytes: core.op.state_key_bytes(),
                }
            })
            .collect()
    }

    /// Names of the queries subscribed to the chain with this identity
    /// (the newest matching chain, when churn created several).
    pub fn shared_subscribers(&self, fingerprint: u64, canon: &str) -> Option<Vec<String>> {
        self.shared
            .iter()
            .rev()
            .find(|e| e.fingerprint == fingerprint && e.canon == canon)
            .map(|e| e.core.lock().subscribers.clone())
    }

    /// Push a row into a stream; cascades through all affected queries.
    ///
    /// Delegates to the batched ingest path as a batch of one, so
    /// single-tuple and batch ingestion share one code path — the same
    /// validation, metrics, watermark handling and dispatch.
    pub fn push(&mut self, stream: &str, values: Vec<Value>) -> Result<()> {
        self.ingest(stream, vec![(values, None)])
    }

    /// Push a row with a caller-assigned sequence number instead of the
    /// engine's internal counter. Used by the shard router to stamp every
    /// replica of a tuple with one global cause index so per-shard
    /// tie-breaks — `(ts, seq)` order keys inside detectors and reorder
    /// buffers — agree with the single-engine reference. The internal
    /// counter is bumped past `seq` so derived-stream tuples never reuse
    /// it within this engine.
    pub fn push_with_seq(&mut self, stream: &str, values: Vec<Value>, seq: u64) -> Result<()> {
        self.ingest(stream, vec![(values, Some(seq))])
    }

    /// Whether any active query requires the exact per-tuple watermark
    /// and delivery schedule: punctuation-sensitive operators
    /// (window-close emission, timeout detection, periodic reports)
    /// observe every watermark, and multi-port operators observe the
    /// relative arrival order of different streams, which batch delivery
    /// would coarsen. While this is `false` the engine delivers whole
    /// batches and coalesces their auto-watermarks into one trailing
    /// punctuation — with byte-identical query output.
    pub fn needs_per_tuple_watermarks(&self) -> bool {
        self.queries
            .iter()
            .any(|q| q.active && (q.op.punctuation_sensitive() || q.op.num_ports() > 1))
    }

    /// Core ingest: rows of *one* stream, in arrival order. Decides once
    /// per call between the coalesced batch schedule and the exact
    /// per-tuple watermark schedule.
    fn ingest(&mut self, stream: &str, mut group: Vec<(Vec<Value>, Option<u64>)>) -> Result<()> {
        let batched = !self.needs_per_tuple_watermarks();
        let max = self.ingest_group(stream, &mut group, batched)?;
        if batched && self.auto_watermark {
            self.advance_to(max)?;
        }
        // The sampled admission's cascade is over; a stamp still pending
        // produced no output and is discarded rather than left to
        // inflate a later emission's measurement.
        self.lat_sample = None;
        Ok(())
    }

    /// Validate and deliver one stream's rows. In batched mode the whole
    /// group is dispatched as a single batch and the caller issues one
    /// trailing watermark; the returned timestamp is the newest delivered
    /// event time (`ZERO` when the per-tuple path already advanced).
    fn ingest_group(
        &mut self,
        stream: &str,
        group: &mut Vec<(Vec<Value>, Option<u64>)>,
        batched: bool,
    ) -> Result<Timestamp> {
        let lower = stream.to_ascii_lowercase();
        let entry = self
            .streams
            .get_mut(&lower)
            .ok_or_else(|| DsmsError::unknown(format!("stream `{stream}`")))?;
        if !batched || entry.reorder.is_some() {
            // Exact schedule: watermark-before-tuple for every row
            // (punctuation-sensitive queries), and the disorder buffer's
            // own release discipline. `push_impl` advances internally.
            for (values, seq) in group.drain(..) {
                self.push_impl(stream, values, seq)?;
            }
            return Ok(Timestamp::ZERO);
        }
        let mut batch = Vec::with_capacity(group.len());
        let mut max = Timestamp::ZERO;
        for (mut values, seq) in group.drain(..) {
            let seqno = seq.unwrap_or(self.next_seq);
            let ts = match Tuple::validate_against(&entry.schema, &values) {
                Ok(ts) => ts,
                Err(e) => {
                    Self::reject(
                        &mut self.dead_letters,
                        &self.rejected_tuples,
                        &self.trace,
                        stream,
                        values,
                        RejectReason::Malformed,
                        &e,
                    );
                    return Err(e);
                }
            };
            // With the columnar path on, interning moves from ingest to
            // batch conversion: `sym_of_column` interns each string
            // column under one dictionary lock per column instead of one
            // per value here. Row-path operators stay correct on
            // un-canonicalized strings (their key codecs fall back to
            // content lookups), they just lose the pointer fast path.
            if self.representation == Representation::Interned && !self.columnar {
                for &c in &entry.str_cols {
                    self.interner.canonicalize(&mut values[c]);
                }
            }
            let t = Tuple::new(values, ts, seqno);
            self.next_seq = self.next_seq.max(seqno + 1);
            if t.ts() < entry.last_ts {
                entry.rejected_ctr.inc();
                let e = DsmsError::OutOfOrder(format!(
                    "stream `{stream}` regressed from {} to {}",
                    entry.last_ts,
                    t.ts()
                ));
                Self::reject(
                    &mut self.dead_letters,
                    &self.late_tuples,
                    &self.trace,
                    stream,
                    t.values().to_vec(),
                    RejectReason::Late,
                    &e,
                );
                return Err(e);
            }
            entry.last_ts = t.ts();
            max = max.max(t.ts());
            if seqno & WALL_SAMPLE_MASK == 0 {
                self.lat_sample = Some(std::time::Instant::now());
                self.trace.record(|| TraceKind::TupleAdmitted {
                    stream: lower.clone(),
                    seq: seqno,
                });
            }
            batch.push(t);
        }
        entry.pushed += batch.len() as u64;
        entry.pushed_ctr.add(batch.len() as u64);
        self.dispatch_batch(lower, batch, Deliver::All)?;
        Ok(max)
    }

    fn push_impl(
        &mut self,
        stream: &str,
        mut values: Vec<Value>,
        seq_override: Option<u64>,
    ) -> Result<()> {
        let lower = stream.to_ascii_lowercase();
        let entry = self
            .streams
            .get_mut(&lower)
            .ok_or_else(|| DsmsError::unknown(format!("stream `{stream}`")))?;
        let seq = seq_override.unwrap_or(self.next_seq);
        let ts = match Tuple::validate_against(&entry.schema, &values) {
            Ok(ts) => ts,
            Err(e) => {
                Self::reject(
                    &mut self.dead_letters,
                    &self.rejected_tuples,
                    &self.trace,
                    stream,
                    values,
                    RejectReason::Malformed,
                    &e,
                );
                return Err(e);
            }
        };
        // See `ingest_group`: in columnar mode interning happens at
        // batch conversion, not ingest.
        if self.representation == Representation::Interned && !self.columnar {
            for &c in &entry.str_cols {
                self.interner.canonicalize(&mut values[c]);
            }
        }
        let tolerant = entry.reorder.is_some();
        let t = Tuple::new(values, ts, seq);
        self.next_seq = self.next_seq.max(seq + 1);
        if tolerant {
            // Arrivals behind what the reorder buffer has already
            // released cannot be put back in order: count them,
            // dead-letter them, and keep going (no error — late data is
            // an expected condition under bounded disorder, not a caller
            // bug).
            let frontier = self.released_frontier();
            if t.ts() < frontier {
                let e = DsmsError::OutOfOrder(format!(
                    "stream `{stream}` tuple at {} is behind the released frontier {} (slack exceeded)",
                    t.ts(),
                    frontier
                ));
                let entry = self.streams.get_mut(&lower).expect("looked up above");
                entry.rejected_ctr.inc();
                Self::reject(
                    &mut self.dead_letters,
                    &self.late_tuples,
                    &self.trace,
                    stream,
                    t.values().to_vec(),
                    RejectReason::Late,
                    &e,
                );
                return Ok(());
            }
            let speculative = self.has_fast_subscriber(&lower);
            {
                let entry = self.streams.get_mut(&lower).expect("looked up above");
                let r = entry.reorder.as_mut().expect("checked");
                r.max_seen = r.max_seen.max(t.ts());
                r.pending.insert((t.ts(), t.seq()), t.clone());
                r.buffered_ctr.inc();
            }
            if seq & WALL_SAMPLE_MASK == 0 {
                // The stamp closes at the next sink-reaching cascade —
                // the speculative dispatch below, or a later ordered
                // release — so sampled latency includes reorder-buffer
                // residence.
                self.lat_sample = Some(std::time::Instant::now());
                self.trace.record(|| TraceKind::TupleAdmitted {
                    stream: lower.clone(),
                    seq,
                });
            }
            if speculative {
                // Fast-consistency queries see the arrival immediately,
                // in arrival order; their SpeculativeGate repairs any
                // misordering with retractions once proven wrong.
                self.dispatch_batch(lower.clone(), vec![t], Deliver::FastOnly)?;
            }
            return self.release_ready();
        }
        if t.ts() < entry.last_ts {
            entry.rejected_ctr.inc();
            let e = DsmsError::OutOfOrder(format!(
                "stream `{stream}` regressed from {} to {}",
                entry.last_ts,
                t.ts()
            ));
            Self::reject(
                &mut self.dead_letters,
                &self.late_tuples,
                &self.trace,
                stream,
                t.values().to_vec(),
                RejectReason::Late,
                &e,
            );
            return Err(e);
        }
        if seq & WALL_SAMPLE_MASK == 0 {
            self.lat_sample = Some(std::time::Instant::now());
            self.trace.record(|| TraceKind::TupleAdmitted {
                stream: lower.clone(),
                seq,
            });
        }
        // Watermark semantics: this arrival proves no future tuple is
        // earlier than `ts`, so windows and deadlines that closed before
        // `ts` must fire BEFORE the tuple is processed (a timeout that
        // elapsed during a silent period is detected at the next arrival,
        // and is not masked by it).
        let delivered = self.deliver_ordered(&lower, t, Deliver::All);
        self.lat_sample = None;
        delivered
    }

    /// Record a rejected arrival (malformed, or late beyond the disorder
    /// slack) in the bounded dead-letter buffer.
    #[allow(clippy::too_many_arguments)]
    fn reject(
        dead: &mut VecDeque<DeadLetter>,
        ctr: &Counter,
        trace: &FlightRecorder,
        stream: &str,
        values: Vec<Value>,
        reason: RejectReason,
        err: &DsmsError,
    ) {
        ctr.inc();
        trace.record(|| TraceKind::DeadLetter {
            stream: stream.to_string(),
        });
        if dead.len() == DEAD_LETTER_CAP {
            dead.pop_front();
        }
        dead.push_back(DeadLetter {
            stream: stream.to_string(),
            values,
            reason,
            error: err.to_string(),
        });
    }

    /// The rejected arrivals currently held for inspection, oldest first
    /// (bounded; the oldest are dropped once the buffer fills).
    pub fn dead_letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.dead_letters.iter()
    }

    /// Drain the dead-letter buffer.
    pub fn take_dead_letters(&mut self) -> Vec<DeadLetter> {
        self.dead_letters.drain(..).collect()
    }

    /// Malformed arrivals rejected at ingest so far (all streams).
    pub fn rejected_tuples(&self) -> u64 {
        self.rejected_tuples.get()
    }

    /// Arrivals rejected as late beyond the disorder slack (all streams).
    pub fn late_tuples(&self) -> u64 {
        self.late_tuples.get()
    }

    /// Watermarks rejected for regressing behind stream time.
    pub fn stale_watermarks(&self) -> u64 {
        self.stale_watermarks.get()
    }

    /// Push a whole batch (same validation as [`Engine::push`]).
    ///
    /// Consecutive rows of the same stream are validated and dispatched
    /// as one batch, and — when no registered query needs the per-tuple
    /// watermark schedule ([`Engine::needs_per_tuple_watermarks`]) — the
    /// auto-watermarks of the whole call coalesce into a single trailing
    /// punctuation. Query output is byte-identical to pushing the rows
    /// one at a time; on a validation error mid-batch, the failing row's
    /// group is dropped whole (earlier groups are already delivered).
    pub fn push_batch(
        &mut self,
        rows: impl IntoIterator<Item = (String, Vec<Value>)>,
    ) -> Result<()> {
        let batched = !self.needs_per_tuple_watermarks();
        let mut max = Timestamp::ZERO;
        let mut it = rows.into_iter().peekable();
        let mut group: Vec<(Vec<Value>, Option<u64>)> = Vec::new();
        while let Some((stream, values)) = it.next() {
            group.clear();
            group.push((values, None));
            while let Some((next_stream, _)) = it.peek() {
                if next_stream.eq_ignore_ascii_case(&stream) {
                    group.push((it.next().expect("peeked").1, None));
                } else {
                    break;
                }
            }
            max = max.max(self.ingest_group(&stream, &mut group, batched)?);
        }
        if batched && self.auto_watermark {
            self.advance_to(max)?;
        }
        Ok(())
    }

    /// Push a whole batch into *one* stream (same validation and
    /// watermark coalescing as [`Engine::push_batch`], without the
    /// per-row stream naming and grouping).
    pub fn push_batch_to(
        &mut self,
        stream: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<()> {
        self.ingest(stream, rows.into_iter().map(|v| (v, None)).collect())
    }

    /// Advance stream time: delivers a punctuation to every query, which
    /// releases window-close results and expires state (*active
    /// expiration*). Monotone; earlier times are no-ops.
    pub fn advance_to(&mut self, ts: Timestamp) -> Result<()> {
        if ts <= self.now {
            return Ok(());
        }
        self.now = ts;
        // Sample punctuation latency on the same 1-in-64 schedule as
        // tuples (auto-watermark turns every push into a punctuation, so
        // this path is just as hot).
        let sampled = self.punctuations.inc_get() & WALL_SAMPLE_MASK == 0;
        if sampled {
            self.trace.record(|| TraceKind::WatermarkAdvance {
                ts_us: ts.as_micros(),
            });
        }
        for mats in self.materialized.values() {
            for m in mats {
                m.advance(ts);
            }
        }
        let mut work: VecDeque<(String, Vec<Tuple>, Deliver)> = VecDeque::new();
        for idx in 0..self.queries.len() {
            if !self.queries[idx].active {
                continue;
            }
            let mut outs = Vec::new();
            {
                let q = &mut self.queries[idx];
                let started = sampled.then(std::time::Instant::now);
                q.op.on_punctuation(ts, &mut outs)?;
                if let Some(s) = started {
                    q.wall.record_duration(s.elapsed());
                }
            }
            self.route_batch(idx, outs, &mut work)?;
        }
        self.drain_batches(work)
    }

    /// Strict external watermark: like [`Engine::advance_to`], but a
    /// timestamp behind current stream time is a protocol violation —
    /// counted and rejected as [`DsmsError::StaleWatermark`] instead of
    /// being silently swallowed. Use this for watermarks crossing a
    /// trust boundary (the REPL, the shard router); internal callers
    /// that legitimately coalesce keep the lenient `advance_to`.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Result<()> {
        if ts < self.now {
            self.stale_watermarks.inc();
            return Err(DsmsError::stale_watermark(format!(
                "watermark {} regresses behind stream time {}",
                ts, self.now
            )));
        }
        self.advance_to(ts)
    }

    /// Current stream-time high-water mark.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    fn dispatch_batch(
        &mut self,
        stream_lower: String,
        batch: Vec<Tuple>,
        mode: Deliver,
    ) -> Result<()> {
        let mut work = VecDeque::new();
        work.push_back((stream_lower, batch, mode));
        self.drain_batches(work)
    }

    fn drain_batches(&mut self, mut work: VecDeque<(String, Vec<Tuple>, Deliver)>) -> Result<()> {
        // Bounded cascade: a mis-wired query cycle would loop forever;
        // cap the cascade (counted in tuples) generously and report.
        let mut guard: u64 = 0;
        while let Some((stream, batch, mode)) = work.pop_front() {
            // Only the columnar path shares the batch (so a conversion
            // can remember it as its row-form source); the Arc wrap
            // costs an allocation per batch, which row-only engines —
            // including the differential oracle — must not pay.
            let columnar_on = self.columnar && self.representation == Representation::Interned;
            let (shared, plain): (Option<Arc<Vec<Tuple>>>, Vec<Tuple>) = if columnar_on {
                (Some(Arc::new(batch)), Vec::new())
            } else {
                (None, batch)
            };
            let batch: &[Tuple] = shared.as_deref().map_or(&plain, Vec::as_slice);
            guard += batch.len() as u64;
            if guard > 10_000_000 {
                return Err(DsmsError::plan(
                    "query cascade exceeded 10M steps; cyclic stream wiring?",
                ));
            }
            // Materialized windows track every tuple entering the stream,
            // whether pushed externally or derived from a query sink —
            // but only once: a speculative (fast-only) delivery will be
            // followed by the same tuple's ordered release.
            if mode != Deliver::FastOnly {
                if let Some(mats) = self.materialized.get(&stream) {
                    for m in mats {
                        for t in batch.iter() {
                            m.push(t.clone());
                        }
                    }
                }
            }
            let Some(subs) = self.subs.get(&stream) else {
                continue;
            };
            // One subscription-list clone per batch, not per tuple.
            let subs: Vec<(usize, usize)> = subs.clone();
            // Columnar form of this batch, built lazily at the first
            // capable subscriber and shared by the rest. `Some(None)`
            // means conversion was tried and declined (ragged batch).
            let mut cols: Option<Option<ColumnBatch>> = None;
            for (idx, port) in subs {
                if !self.queries[idx].active || !mode.targets(self.queries[idx].consistency) {
                    continue;
                }
                let use_cols = columnar_on && self.queries[idx].op.columnar_capable();
                if use_cols && cols.is_none() {
                    let rows = shared.as_ref().expect("columnar_on implies a shared batch");
                    cols = Some(ColumnBatch::from_shared_tuples(rows, Some(&self.interner)));
                }
                let cb = if use_cols {
                    cols.as_ref().and_then(|c| c.as_ref())
                } else {
                    None
                };
                let mut outs = Vec::new();
                {
                    let q = &mut self.queries[idx];
                    let before = q.tuples_in.get();
                    q.tuples_in.add(batch.len() as u64);
                    // Sample when the batch starts on or crosses a
                    // 1-in-64 tuple ordinal, keeping the sampling rate
                    // independent of batch size.
                    let sampled = before & WALL_SAMPLE_MASK == 0
                        || (before >> 6) != ((before + batch.len() as u64) >> 6);
                    let started = sampled.then(std::time::Instant::now);
                    match cb {
                        Some(cb) => q.op.process_columns(port, cb, &mut outs)?,
                        None => q.op.process_batch(port, batch, &mut outs)?,
                    }
                    if let Some(s) = started {
                        let elapsed = s.elapsed();
                        q.wall.record_duration(elapsed);
                        self.trace.record(|| TraceKind::Stage {
                            query: q.name.clone(),
                            tuples: batch.len() as u64,
                            wall_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                        });
                    }
                }
                self.route_batch(idx, outs, &mut work)?;
            }
        }
        Ok(())
    }

    fn route_batch(
        &mut self,
        idx: usize,
        outs: Vec<Tuple>,
        work: &mut VecDeque<(String, Vec<Tuple>, Deliver)>,
    ) -> Result<()> {
        if outs.is_empty() {
            return Ok(());
        }
        // End-to-end latency: the sampled admission's outputs reached a
        // sink. One field swap + histogram record — no allocation.
        if let Some(t0) = self.lat_sample.take() {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.tuple_latency.record(ns);
            self.trace
                .record(|| TraceKind::TupleEmitted { latency_ns: ns });
        }
        self.queries[idx].emitted += outs.len() as u64;
        self.queries[idx].tuples_out.add(outs.len() as u64);
        match &self.queries[idx].sink {
            Sink::Discard => {}
            Sink::Collect(c) => c.push_many(outs),
            Sink::Table(name) => {
                let table = self.tables[&name.to_ascii_lowercase()].clone();
                for t in &outs {
                    if t.is_retraction() {
                        // A fast query withdrew a speculative emission:
                        // remove the matching row instead of inserting.
                        table.delete_row(t.values())?;
                    } else {
                        table.insert_tuple(t)?;
                    }
                }
            }
            Sink::Stream(name) => {
                let lower = name.to_ascii_lowercase();
                let schema = self.streams[&lower].schema.clone();
                // Derived tuples are re-validated and re-sequenced so
                // downstream queries see a well-formed stream — but the
                // row values are shared with the producer's output, not
                // copied.
                let base = self.next_seq;
                self.next_seq += outs.len() as u64;
                let mut rebound = Vec::with_capacity(outs.len());
                for (k, t) in outs.into_iter().enumerate() {
                    rebound.push(Tuple::rebind_for_schema(&schema, t, base + k as u64)?);
                }
                let e = self
                    .streams
                    .get_mut(&lower)
                    .expect("validated at registration");
                for nt in &rebound {
                    // Derived streams may interleave slightly out of
                    // order (e.g. window-close alerts); track the max.
                    if nt.ts() > e.last_ts {
                        e.last_ts = nt.ts();
                    }
                }
                e.pushed += rebound.len() as u64;
                e.pushed_ctr.add(rebound.len() as u64);
                work.push_back((lower, rebound, Deliver::All));
            }
        }
        Ok(())
    }

    /// Stop a continuous query: it stops receiving tuples and
    /// punctuations (its accumulated stats remain readable). Idempotent.
    pub fn deregister_query(&mut self, id: QueryId) {
        self.queries[id.0].active = false;
    }

    /// Whether a query is still receiving input.
    pub fn is_active(&self, id: QueryId) -> bool {
        self.queries[id.0].active
    }

    /// Introspection: `(id, name, active, emitted, retained)` for every
    /// registered query, in registration order.
    pub fn query_stats(&self) -> Vec<QueryStats> {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryStats {
                id: QueryId(i),
                name: q.name.clone(),
                active: q.active,
                emitted: q.emitted,
                retained: q.op.retained(),
                tuples_in: q.tuples_in.get(),
                tuples_out: q.tuples_out.get(),
                state_key_bytes: q.op.state_key_bytes(),
                wall_p99_ns: q.wall.snapshot().quantile(0.99),
            })
            .collect()
    }

    /// Tuples emitted by a query so far.
    pub fn emitted(&self, id: QueryId) -> u64 {
        self.queries[id.0].emitted
    }

    /// Tuples retained in a query's operator state (the memory metric the
    /// paper's pairing modes are about).
    pub fn retained(&self, id: QueryId) -> usize {
        self.queries[id.0].op.retained()
    }

    /// Tuples pushed into a stream so far.
    pub fn stream_pushed(&self, name: &str) -> Result<u64> {
        self.streams
            .get(&name.to_ascii_lowercase())
            .map(|e| e.pushed)
            .ok_or_else(|| DsmsError::unknown(format!("stream `{name}`")))
    }

    /// Name of a registered query.
    pub fn query_name(&self, id: QueryId) -> &str {
        &self.queries[id.0].name
    }

    /// Watermark lag of a stream in milliseconds: the newest event time
    /// seen (including disorder-buffered arrivals) minus the stream's
    /// low watermark (the newest *delivered* event time). Zero for a
    /// stream whose arrivals are delivered immediately.
    fn lag_ms(e: &StreamEntry) -> u64 {
        let latest = e
            .reorder
            .as_ref()
            .map_or(e.last_ts, |r| r.max_seen.max(e.last_ts));
        latest.as_micros().saturating_sub(e.last_ts.as_micros()) / 1000
    }

    /// Per-stream introspection, sorted by stream name.
    pub fn stream_stats(&self) -> Vec<StreamInfo> {
        let mut rows: Vec<StreamInfo> = self
            .streams
            .iter()
            .map(|(name, e)| StreamInfo {
                name: name.clone(),
                pushed: e.pushed,
                last_ts: e.last_ts,
                buffered: e.reorder.as_ref().map_or(0, |r| r.pending.len()),
                disorder_slack: e.reorder.as_ref().map(|r| r.slack),
                lag_ms: Self::lag_ms(e),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Observability report for a query: the operator tree's per-stage
    /// counters with the engine-level flow totals filled in at the root.
    pub fn query_report(&self, id: QueryId) -> OpReport {
        let q = &self.queries[id.0];
        let mut r = q.op.report();
        r.tuples_in = q.tuples_in.get();
        r.tuples_out = q.tuples_out.get();
        r
    }

    /// [`Engine::query_report`] looked up by name (first registration
    /// wins when names repeat).
    pub fn query_report_by_name(&self, name: &str) -> Option<OpReport> {
        self.queries
            .iter()
            .position(|q| q.name == name)
            .map(|i| self.query_report(QueryId(i)))
    }

    /// Export every metric: the registered instruments (stream/query
    /// counters, latency histograms, driver instruments when driven)
    /// plus derived per-stage operator samples and retention gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.snapshot();
        let (entries, bytes) = self.interner_stats();
        snap.push(
            "eslev_interner_entries",
            &[],
            MetricValue::Gauge(entries as i64),
        );
        snap.push(
            "eslev_interner_bytes",
            &[],
            MetricValue::Gauge(bytes as i64),
        );
        let lat = self.tuple_latency.snapshot();
        if lat.count > 0 {
            for (q, name) in [
                (0.5, "eslev_tuple_latency_ns_p50"),
                (0.9, "eslev_tuple_latency_ns_p90"),
                (0.99, "eslev_tuple_latency_ns_p99"),
            ] {
                snap.push(name, &[], MetricValue::Gauge(lat.quantile(q) as i64));
            }
        }
        for (name, e) in &self.streams {
            snap.push(
                "eslev_watermark_lag_ms",
                &[("stream", name.as_str())],
                MetricValue::Gauge(Self::lag_ms(e) as i64),
            );
            if let Some(r) = &e.reorder {
                snap.push(
                    "eslev_reorder_depth",
                    &[("stream", name.as_str())],
                    MetricValue::Gauge(r.pending.len() as i64),
                );
                // How far the released (proven-ordered) frontier trails
                // the newest arrival — ≤ slack in steady state, so a
                // persistently larger value flags a stalled release.
                snap.push(
                    "eslev_reorder_slack_lag_ms",
                    &[("stream", name.as_str())],
                    MetricValue::Gauge(
                        (r.max_seen.as_micros().saturating_sub(e.last_ts.as_micros()) / 1000)
                            as i64,
                    ),
                );
            }
        }
        for (i, q) in self.queries.iter().enumerate() {
            let id = i.to_string();
            let labels = [("query", q.name.as_str()), ("id", id.as_str())];
            snap.push(
                "eslev_query_retained",
                &labels,
                MetricValue::Gauge(q.op.retained() as i64),
            );
            snap.push(
                "eslev_query_state_key_bytes",
                &labels,
                MetricValue::Gauge(q.op.state_key_bytes() as i64),
            );
            let r = self.query_report(QueryId(i));
            Self::append_report(&mut snap, &q.name, &r);
        }
        snap.push(
            "eslev_shared_subplans",
            &[],
            MetricValue::Gauge(self.shared.len() as i64),
        );
        for (k, e) in self.shared.iter().enumerate() {
            let core = e.core.lock();
            let id = format!("s{k}");
            let labels = [("query", e.label.as_str()), ("id", id.as_str())];
            snap.push(
                "eslev_query_retained",
                &labels,
                MetricValue::Gauge(core.op.retained() as i64),
            );
            snap.push(
                "eslev_query_state_key_bytes",
                &labels,
                MetricValue::Gauge(core.op.state_key_bytes() as i64),
            );
            snap.push(
                "eslev_shared_subscribers",
                &labels,
                MetricValue::Gauge(core.subscribers.len() as i64),
            );
        }
        snap
    }

    fn append_report(snap: &mut MetricsSnapshot, query: &str, r: &OpReport) {
        let labels = [("query", query), ("stage", r.name.as_str())];
        snap.push(
            "eslev_stage_tuples_in_total",
            &labels,
            MetricValue::Counter(r.tuples_in),
        );
        snap.push(
            "eslev_stage_tuples_out_total",
            &labels,
            MetricValue::Counter(r.tuples_out),
        );
        snap.push(
            "eslev_stage_retained",
            &labels,
            MetricValue::Gauge(r.retained as i64),
        );
        if let Some(w) = &r.wall_ns {
            if w.count > 0 {
                snap.push(
                    "eslev_stage_wall_ns",
                    &labels,
                    MetricValue::Histogram(w.clone()),
                );
            }
        }
        for (k, v) in &r.counters {
            snap.push(format!("eslev_op_{k}"), &labels, MetricValue::Counter(*v));
        }
        for child in &r.children {
            Self::append_report(snap, query, child);
        }
    }

    /// Capture the engine's complete mutable state — stream positions,
    /// disorder buffers, per-query operator state, table contents and
    /// materialized windows — as a serializable checkpoint.
    ///
    /// Restoring it into an engine built by the same setup code (same
    /// streams, tables, queries in the same order) via
    /// [`Engine::restore`] resumes processing exactly where the capture
    /// left off: feeding both the original and the restored engine the
    /// same suffix of input produces identical output.
    pub fn checkpoint(&self) -> Result<EngineCheckpoint> {
        let mut stream_names: Vec<&String> = self.streams.keys().collect();
        stream_names.sort();
        let mut streams = Vec::with_capacity(stream_names.len());
        for name in stream_names {
            let e = &self.streams[name];
            let reorder = match &e.reorder {
                None => StateNode::Unit,
                Some(r) => StateNode::List(vec![
                    StateNode::ts(r.max_seen),
                    StateNode::List(
                        r.pending
                            .values()
                            .map(|t| StateNode::Tuple(t.clone()))
                            .collect(),
                    ),
                ]),
            };
            streams.push(StateNode::List(vec![
                StateNode::Str(name.clone()),
                StateNode::ts(e.last_ts),
                StateNode::U64(e.pushed),
                reorder,
            ]));
        }
        let mut queries = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            queries.push(StateNode::List(vec![
                StateNode::Str(q.name.clone()),
                StateNode::Bool(q.active),
                StateNode::U64(q.emitted),
                q.op.save_state()?,
            ]));
        }
        let mut table_names: Vec<&String> = self.tables.keys().collect();
        table_names.sort();
        let tables = table_names
            .iter()
            .map(|n| {
                StateNode::List(vec![
                    StateNode::Str((*n).clone()),
                    self.tables[*n].save_state(),
                ])
            })
            .collect();
        let mut mat_names: Vec<&String> = self.materialized.keys().collect();
        mat_names.sort();
        let materialized = mat_names
            .iter()
            .map(|n| {
                StateNode::List(vec![
                    StateNode::Str((*n).clone()),
                    StateNode::List(
                        self.materialized[*n]
                            .iter()
                            .map(|m| m.save_state())
                            .collect(),
                    ),
                ])
            })
            .collect();
        // Checkpoint v3: shared-chain section. Each chain's state is
        // saved exactly once, with its identity and versioned
        // subscriber list; the subscribers' own entries above carry
        // residual-only state.
        let mut chains = Vec::with_capacity(self.shared.len());
        for e in &self.shared {
            let core = e.core.lock();
            chains.push(StateNode::List(vec![
                StateNode::Str(e.label.clone()),
                StateNode::U64(e.fingerprint),
                StateNode::U64(core.tuples_in),
                StateNode::List(
                    core.subscribers
                        .iter()
                        .map(|s| StateNode::Str(s.clone()))
                        .collect(),
                ),
                core.op.save_state()?,
            ]));
        }
        // Checkpoint v4: dead-letter section, so rejected arrivals
        // (malformed or late) survive kill-and-recover and SHOW REJECTED
        // stays truthful across a restore.
        let dead = self
            .dead_letters
            .iter()
            .map(|d| {
                StateNode::List(vec![
                    StateNode::Str(d.stream.clone()),
                    StateNode::List(d.values.iter().cloned().map(StateNode::Value).collect()),
                    StateNode::U64(match d.reason {
                        RejectReason::Malformed => 0,
                        RejectReason::Late => 1,
                    }),
                    StateNode::Str(d.error.clone()),
                ])
            })
            .collect();
        let root = StateNode::List(vec![
            StateNode::List(streams),
            StateNode::List(queries),
            StateNode::List(tables),
            StateNode::List(materialized),
            StateNode::List(chains),
            StateNode::List(dead),
        ]);
        let ck = EngineCheckpoint::new(self.next_seq, self.now, root)
            .with_dict(self.interner.dictionary());
        // Serializing to measure size is only paid when tracing is on.
        self.trace.record(|| TraceKind::Checkpoint {
            bytes: ck.to_bytes().len() as u64,
        });
        Ok(ck)
    }

    /// Restore state captured by [`Engine::checkpoint`] into this engine.
    ///
    /// The engine must be structurally identical to the one that was
    /// checkpointed — same streams, same tables, and the same queries
    /// registered in the same order (they are matched by name and
    /// position). Structural mismatches are typed checkpoint errors, not
    /// silent partial restores.
    pub fn restore(&mut self, ck: &EngineCheckpoint) -> Result<()> {
        // The dictionary restores FIRST: operator restore re-encodes
        // state keys through the shared codec, and the pre-seeded
        // dictionary makes those keys land on the symbols the capturing
        // engine assigned (journal replay then re-interns the replayed
        // suffix onto the ids that follow).
        self.interner.restore_dictionary(&ck.dict)?;
        for node in ck.root.item(0)?.as_list()? {
            let name = node.item(0)?.as_str()?;
            let entry = self.streams.get_mut(name).ok_or_else(|| {
                DsmsError::ckpt(format!("checkpoint references unknown stream `{name}`"))
            })?;
            entry.last_ts = node.item(1)?.as_ts()?;
            entry.pushed = node.item(2)?.as_u64()?;
            let cur = entry.pushed_ctr.get();
            if entry.pushed > cur {
                entry.pushed_ctr.add(entry.pushed - cur);
            }
            match (node.item(3)?, entry.reorder.as_mut()) {
                (StateNode::Unit, None) => {}
                (StateNode::Unit, Some(r)) => {
                    r.max_seen = Timestamp::ZERO;
                    r.pending.clear();
                }
                (saved, Some(r)) => {
                    r.max_seen = saved.item(0)?.as_ts()?;
                    r.pending.clear();
                    for tn in saved.item(1)?.as_list()? {
                        let t = tn.as_tuple()?.clone();
                        r.pending.insert((t.ts(), t.seq()), t);
                    }
                }
                (_, None) => {
                    return Err(DsmsError::ckpt(format!(
                        "stream `{name}` has no disorder buffer but the checkpoint does"
                    )))
                }
            }
        }
        let queries = ck.root.item(1)?.as_list()?;
        if queries.len() != self.queries.len() {
            return Err(DsmsError::ckpt(format!(
                "engine has {} queries, checkpoint has {}",
                self.queries.len(),
                queries.len()
            )));
        }
        for (q, node) in self.queries.iter_mut().zip(queries) {
            let name = node.item(0)?.as_str()?;
            if name != q.name {
                return Err(DsmsError::ckpt(format!(
                    "query `{}` does not match checkpointed query `{name}`",
                    q.name
                )));
            }
            q.active = node.item(1)?.as_bool()?;
            q.emitted = node.item(2)?.as_u64()?;
            q.op.restore_state(node.item(3)?)?;
        }
        for node in ck.root.item(2)?.as_list()? {
            let name = node.item(0)?.as_str()?;
            let table = self.tables.get(name).ok_or_else(|| {
                DsmsError::ckpt(format!("checkpoint references unknown table `{name}`"))
            })?;
            table.restore_state(node.item(1)?)?;
        }
        for node in ck.root.item(3)?.as_list()? {
            let name = node.item(0)?.as_str()?;
            let saved = node.item(1)?.as_list()?;
            let mats = self.materialized.get(name).ok_or_else(|| {
                DsmsError::ckpt(format!(
                    "checkpoint references unknown materialized stream `{name}`"
                ))
            })?;
            if saved.len() != mats.len() {
                return Err(DsmsError::ckpt(format!(
                    "stream `{name}` has {} materialized windows, checkpoint has {}",
                    mats.len(),
                    saved.len()
                )));
            }
            for (m, s) in mats.iter().zip(saved) {
                m.restore_state(s)?;
            }
        }
        // Shared-chain section (checkpoint v3). Root layouts from v2
        // engines have no fifth element; that is only acceptable when
        // this engine has no shared chains to restore.
        match ck.root.item(4) {
            Err(_) => {
                if !self.shared.is_empty() {
                    return Err(DsmsError::ckpt(format!(
                        "engine has {} shared chains but the checkpoint \
                         (pre-v3 layout) has no shared-chain section",
                        self.shared.len()
                    )));
                }
            }
            Ok(section) => {
                let chains = section.as_list()?;
                if chains.len() != self.shared.len() {
                    return Err(DsmsError::ckpt(format!(
                        "engine has {} shared chains, checkpoint has {}",
                        self.shared.len(),
                        chains.len()
                    )));
                }
                for (e, node) in self.shared.iter().zip(chains) {
                    let label = node.item(0)?.as_str()?;
                    if label != e.label {
                        return Err(DsmsError::ckpt(format!(
                            "shared chain `{}` does not match checkpointed chain `{label}`",
                            e.label
                        )));
                    }
                    let fp = node.item(1)?.as_u64()?;
                    if fp != e.fingerprint {
                        return Err(DsmsError::ckpt(format!(
                            "shared chain `{}` fingerprint mismatch: \
                             engine 0x{:016x}, checkpoint 0x{fp:016x}",
                            e.label, e.fingerprint
                        )));
                    }
                    let mut core = e.core.lock();
                    let saved_subs = node.item(3)?.as_list()?;
                    if saved_subs.len() != core.subscribers.len() {
                        return Err(DsmsError::ckpt(format!(
                            "shared chain `{}` has {} subscribers, checkpoint has {}",
                            e.label,
                            core.subscribers.len(),
                            saved_subs.len()
                        )));
                    }
                    for (have, saved) in core.subscribers.iter().zip(saved_subs) {
                        if saved.as_str()? != have {
                            return Err(DsmsError::ckpt(format!(
                                "shared chain `{}` subscriber `{have}` does not match \
                                 checkpointed subscriber `{}`",
                                e.label,
                                saved.as_str()?
                            )));
                        }
                    }
                    core.tuples_in = node.item(2)?.as_u64()?;
                    core.op.restore_state(node.item(4)?)?;
                    core.reset_memo();
                }
            }
        }
        // Dead-letter section (checkpoint v4); absent in pre-v4 layouts,
        // which simply leave the buffer as-is.
        if let Ok(section) = ck.root.item(5) {
            self.dead_letters.clear();
            for node in section.as_list()? {
                let mut values = Vec::new();
                for v in node.item(1)?.as_list()? {
                    values.push(v.as_value()?.clone());
                }
                self.dead_letters.push_back(DeadLetter {
                    stream: node.item(0)?.as_str()?.to_string(),
                    values,
                    reason: match node.item(2)?.as_u64()? {
                        0 => RejectReason::Malformed,
                        1 => RejectReason::Late,
                        other => {
                            return Err(DsmsError::ckpt(format!(
                                "unknown dead-letter reason tag {other}"
                            )))
                        }
                    },
                    error: node.item(3)?.as_str()?.to_string(),
                });
            }
        }
        self.next_seq = ck.next_seq;
        self.now = ck.now;
        Ok(())
    }
}

/// One row of [`Engine::stream_stats`].
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Stream name (lowercased registry key).
    pub name: String,
    /// Tuples that entered the stream (pushed or derived).
    pub pushed: u64,
    /// Newest delivered event time.
    pub last_ts: Timestamp,
    /// Tuples waiting in the disorder buffer.
    pub buffered: usize,
    /// Disorder tolerance, when enabled.
    pub disorder_slack: Option<crate::time::Duration>,
    /// Watermark lag in milliseconds: newest event time seen minus the
    /// stream's low watermark (newest delivered event time).
    pub lag_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::{Chain, Dedup, Project, Select};
    use crate::schema::Schema;
    use crate::time::Duration;
    use crate::value::ValueType;

    fn engine_with_readings() -> Engine {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        e.create_stream(Schema::readings("cleaned_readings"))
            .unwrap();
        e
    }

    fn reading(secs: u64, reader: &str, tag: &str) -> Vec<Value> {
        vec![
            Value::str(reader),
            Value::str(tag),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    }

    #[test]
    fn example1_dedup_cascades_to_derived_stream() {
        // readings -> dedup -> cleaned_readings -> collector.
        let mut e = engine_with_readings();
        let dedup = Dedup::new(vec![Expr::col(0), Expr::col(1)], Duration::from_secs(1));
        e.register_query(
            "dedup",
            vec!["readings"],
            Box::new(dedup),
            Sink::Stream("cleaned_readings".into()),
        )
        .unwrap();
        let ident = Chain::new(vec![Box::new(Select::new(Expr::lit(true)))]);
        let (_, out) = e
            .register_collected("consume", vec!["cleaned_readings"], Box::new(ident))
            .unwrap();

        e.push("readings", reading(0, "r1", "t1")).unwrap();
        e.push("readings", reading(0, "r1", "t1")).unwrap(); // dup
        e.push("readings", reading(5, "r1", "t1")).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(e.stream_pushed("cleaned_readings").unwrap(), 2);
        assert_eq!(e.stream_pushed("readings").unwrap(), 3);
    }

    #[test]
    fn push_validates_schema_and_order() {
        let mut e = engine_with_readings();
        assert!(e.push("readings", vec![Value::Int(1)]).is_err());
        e.push("readings", reading(10, "r", "t")).unwrap();
        let err = e.push("readings", reading(5, "r", "t")).unwrap_err();
        assert!(matches!(err, DsmsError::OutOfOrder(_)));
        assert!(e.push("nope", reading(1, "r", "t")).is_err());
    }

    #[test]
    fn register_query_validates_wiring() {
        let mut e = engine_with_readings();
        let op = Select::new(Expr::lit(true));
        assert!(e
            .register_query("q", vec!["missing"], Box::new(op), Sink::Discard)
            .is_err());
        let op = Select::new(Expr::lit(true));
        assert!(e
            .register_query(
                "q",
                vec!["readings"],
                Box::new(op),
                Sink::Stream("missing".into())
            )
            .is_err());
        let op = crate::ops::BinaryJoin::new(Duration::from_secs(1), Expr::lit(true));
        assert!(e
            .register_query("q", vec!["readings"], Box::new(op), Sink::Discard)
            .is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut e = engine_with_readings();
        assert!(e.create_stream(Schema::readings("readings")).is_err());
        let tbl = Arc::new(Schema::new("readings", vec![("x", ValueType::Int)], None).unwrap());
        assert!(e.create_table(tbl).is_err());
    }

    #[test]
    fn table_sink_inserts() {
        let mut e = engine_with_readings();
        let tbl_schema = Arc::new(
            Schema::new(
                "log",
                vec![
                    ("reader_id", ValueType::Str),
                    ("tag_id", ValueType::Str),
                    ("read_time", ValueType::Ts),
                ],
                None,
            )
            .unwrap(),
        );
        let tbl = e.create_table(tbl_schema).unwrap();
        e.register_query(
            "persist",
            vec!["readings"],
            Box::new(Select::new(Expr::lit(true))),
            Sink::Table("log".into()),
        )
        .unwrap();
        e.push("readings", reading(1, "r", "t")).unwrap();
        assert_eq!(tbl.len(), 1);
    }

    #[test]
    fn auto_watermark_drives_punctuation() {
        // An aggregate with punctuation emission reports as time passes.
        use crate::ops::{AggSpec, Emission, WindowAggregate};
        let mut e = engine_with_readings();
        let agg = WindowAggregate::new(
            vec![],
            vec![AggSpec {
                agg: e.aggregates().get("count").unwrap(),
                arg: Expr::col(1),
            }],
            None,
            Emission::OnPunctuation,
        );
        let (_, out) = e
            .register_collected("counts", vec!["readings"], Box::new(agg))
            .unwrap();
        e.push("readings", reading(1, "r", "a")).unwrap();
        e.push("readings", reading(2, "r", "b")).unwrap();
        // The watermark accompanying the t=2 arrival fires BEFORE that
        // tuple is delivered, so the report at t=2 counts only the first.
        let col = out.take();
        assert!(!col.is_empty());
        assert_eq!(col.last().unwrap().value(0), &Value::Int(1));
    }

    #[test]
    fn deregister_stops_delivery_and_stats_survive() {
        let mut e = engine_with_readings();
        let (id, out) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        e.push("readings", reading(1, "r", "a")).unwrap();
        assert!(e.is_active(id));
        e.deregister_query(id);
        e.push("readings", reading(2, "r", "b")).unwrap();
        assert_eq!(out.len(), 1, "no delivery after deregistration");
        assert!(!e.is_active(id));
        let stats = e.query_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "all");
        assert_eq!(stats[0].emitted, 1);
        assert!(!stats[0].active);
        // Idempotent.
        e.deregister_query(id);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut e = engine_with_readings();
        e.advance_to(Timestamp::from_secs(10)).unwrap();
        assert_eq!(e.now(), Timestamp::from_secs(10));
        e.advance_to(Timestamp::from_secs(5)).unwrap();
        assert_eq!(e.now(), Timestamp::from_secs(10));
    }

    #[test]
    fn projection_chain_and_stats() {
        let mut e = engine_with_readings();
        let chain = Chain::new(vec![
            Box::new(Select::new(Expr::eq(Expr::col(0), Expr::lit("r1")))),
            Box::new(Project::new(vec![Expr::col(1), Expr::col(2)])),
        ]);
        let (id, out) = e
            .register_collected("proj", vec!["readings"], Box::new(chain))
            .unwrap();
        e.push("readings", reading(1, "r1", "t1")).unwrap();
        e.push("readings", reading(2, "r2", "t2")).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(e.emitted(id), 1);
        assert_eq!(e.query_name(id), "proj");
        assert_eq!(out.take()[0].arity(), 2);
    }

    #[test]
    fn tracing_and_latency_sampling() {
        use crate::trace::TraceKind;
        let mut e = engine_with_readings();
        let (_, _out) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        assert!(!e.tracing(), "tracing is off by default");
        e.set_tracing(true);
        for i in 0..130u64 {
            e.push("readings", reading(i, "r", "t")).unwrap();
        }
        let events = e.take_trace();
        assert!(events
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::TupleAdmitted { .. })));
        assert!(events
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::Stage { .. })));
        assert!(events
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::WatermarkAdvance { .. })));
        assert!(events
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::TupleEmitted { .. })));
        assert!(e.take_trace().is_empty(), "drained");
        let snap = e.metrics_snapshot();
        // Seqs 0, 64 and 128 were latency-sampled.
        let lat = snap.histogram("eslev_tuple_latency_ns", &[]).unwrap();
        assert!(lat.count >= 3, "latency samples: {}", lat.count);
        assert!(snap.gauge("eslev_tuple_latency_ns_p50", &[]).is_some());
        assert!(snap.gauge("eslev_tuple_latency_ns_p99", &[]).is_some());
        assert_eq!(
            snap.gauge("eslev_watermark_lag_ms", &[("stream", "readings")]),
            Some(0),
            "ordered stream has no lag"
        );
    }

    #[test]
    fn watermark_lag_reflects_disorder_buffer() {
        let mut e = engine_with_readings();
        e.set_disorder_tolerance("readings", crate::time::Duration::from_secs(100))
            .unwrap();
        e.push("readings", reading(50, "r", "a")).unwrap();
        // Seen t=50s, delivered nothing: the stream lags 50 s.
        let info = e
            .stream_stats()
            .into_iter()
            .find(|s| s.name == "readings")
            .unwrap();
        assert_eq!(info.lag_ms, 50_000);
        assert_eq!(
            e.metrics_snapshot()
                .gauge("eslev_watermark_lag_ms", &[("stream", "readings")]),
            Some(50_000)
        );
        e.flush_disorder().unwrap();
        let info = e
            .stream_stats()
            .into_iter()
            .find(|s| s.name == "readings")
            .unwrap();
        assert_eq!(info.lag_ms, 0, "flush catches the watermark up");
    }

    #[test]
    fn metrics_survive_deregistration() {
        let mut e = engine_with_readings();
        let (id, _out) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        e.push("readings", reading(1, "r", "a")).unwrap();
        e.push("readings", reading(2, "r", "b")).unwrap();
        let before = e.metrics_snapshot();
        assert_eq!(
            before.counter("eslev_query_tuples_in_total", &[("query", "all")]),
            Some(2)
        );
        e.deregister_query(id);
        // Pushes after deregistration must not advance the query's
        // counters — but must not erase them either.
        e.push("readings", reading(3, "r", "c")).unwrap();
        let after = e.metrics_snapshot();
        assert_eq!(
            after.counter("eslev_query_tuples_in_total", &[("query", "all")]),
            Some(2),
            "deregistered query keeps its accumulated counters"
        );
        assert_eq!(
            after.counter("eslev_query_tuples_out_total", &[("query", "all")]),
            Some(2)
        );
        assert_eq!(
            after.counter("eslev_stream_pushed_total", &[("stream", "readings")]),
            Some(3)
        );
        let stats = e.query_stats();
        assert!(!stats[0].active);
        assert_eq!(stats[0].tuples_in, 2);
        assert_eq!(stats[0].tuples_out, 2);
    }
}

#[cfg(test)]
mod ckpt_tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::{Dedup, Select};
    use crate::schema::Schema;
    use crate::time::Duration;
    use crate::value::ValueType;

    fn reading(secs: u64, reader: &str, tag: &str) -> Vec<Value> {
        vec![
            Value::str(reader),
            Value::str(tag),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    }

    /// A cascading pipeline with dedup state, a table sink and a
    /// materialized window — the structural template both the original
    /// and the recovered engine are built from.
    fn build() -> (Engine, Collector, TableRef, SnapshotRef) {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        e.create_stream(Schema::readings("cleaned_readings"))
            .unwrap();
        let log_schema = Arc::new(
            Schema::new(
                "log",
                vec![
                    ("reader_id", ValueType::Str),
                    ("tag_id", ValueType::Str),
                    ("read_time", ValueType::Ts),
                ],
                None,
            )
            .unwrap(),
        );
        let tbl = e.create_table(log_schema).unwrap();
        let m = e
            .materialize("readings", WindowExtent::Preceding(Duration::from_secs(30)))
            .unwrap();
        let dedup = Dedup::new(vec![Expr::col(0), Expr::col(1)], Duration::from_secs(5));
        e.register_query(
            "dedup",
            vec!["readings"],
            Box::new(dedup),
            Sink::Stream("cleaned_readings".into()),
        )
        .unwrap();
        let (_, out) = e
            .register_collected(
                "consume",
                vec!["cleaned_readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        e.register_query(
            "persist",
            vec!["cleaned_readings"],
            Box::new(Select::new(Expr::lit(true))),
            Sink::Table("log".into()),
        )
        .unwrap();
        (e, out, tbl, m)
    }

    fn feed() -> Vec<Vec<Value>> {
        vec![
            reading(0, "r1", "t1"),
            reading(1, "r1", "t2"),
            reading(2, "r1", "t1"), // dup of t1 within 5s — needs dedup state
            reading(3, "r2", "t3"),
            reading(7, "r1", "t1"), // past the 5s horizon — passes again
            reading(8, "r1", "t2"),
        ]
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        let (mut reference, ref_out, ref_tbl, ref_m) = build();
        for row in feed() {
            reference.push("readings", row).unwrap();
        }

        let (mut first, out1, _, _) = build();
        for row in feed().drain(..3) {
            first.push("readings", row).unwrap();
        }
        // Serialize through bytes so the whole codec path is exercised.
        let bytes = first.checkpoint().unwrap().to_bytes();
        let ck = EngineCheckpoint::from_bytes(&bytes).unwrap();
        let (mut resumed, out2, tbl2, m2) = build();
        resumed.restore(&ck).unwrap();
        drop(first);
        for row in feed().drain(3..) {
            resumed.push("readings", row).unwrap();
        }

        let mut got = out1.take();
        got.extend(out2.take());
        let want = ref_out.take();
        assert_eq!(
            got.iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect::<Vec<_>>(),
            want.iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect::<Vec<_>>(),
        );
        assert_eq!(resumed.now(), reference.now());
        assert_eq!(
            resumed.stream_pushed("cleaned_readings").unwrap(),
            reference.stream_pushed("cleaned_readings").unwrap()
        );
        assert_eq!(tbl2.len(), ref_tbl.len());
        assert_eq!(
            m2.snapshot().iter().map(Tuple::ts).collect::<Vec<_>>(),
            ref_m.snapshot().iter().map(Tuple::ts).collect::<Vec<_>>(),
        );
        let stats_ref = reference.query_stats();
        let stats_res = resumed.query_stats();
        for (a, b) in stats_ref.iter().zip(&stats_res) {
            assert_eq!(a.emitted, b.emitted, "query `{}`", a.name);
            assert_eq!(a.retained, b.retained, "query `{}`", a.name);
        }
    }

    #[test]
    fn checkpoint_preserves_disorder_buffer() {
        let build = || {
            let mut e = Engine::new();
            e.create_stream(Schema::readings("readings")).unwrap();
            e.set_disorder_tolerance("readings", Duration::from_secs(10))
                .unwrap();
            let (_, out) = e
                .register_collected(
                    "all",
                    vec!["readings"],
                    Box::new(Select::new(Expr::lit(true))),
                )
                .unwrap();
            (e, out)
        };
        let (mut first, out1) = build();
        first.push("readings", reading(100, "r", "a")).unwrap();
        first.push("readings", reading(95, "r", "b")).unwrap();
        let ck = first.checkpoint().unwrap();
        let (mut resumed, out2) = build();
        resumed.restore(&ck).unwrap();
        // Buffered arrivals survive: the flush releases them in order.
        resumed.flush_disorder().unwrap();
        let tags: Vec<String> = out1
            .take()
            .into_iter()
            .chain(out2.take())
            .map(|t| t.value(1).as_str().unwrap().to_string())
            .collect();
        assert_eq!(tags, vec!["b", "a"]);
    }

    #[test]
    fn restore_rejects_structural_mismatch() {
        let (first, _, _, _) = build();
        let ck = first.checkpoint().unwrap();
        // Missing queries.
        let mut bare = Engine::new();
        bare.create_stream(Schema::readings("readings")).unwrap();
        bare.create_stream(Schema::readings("cleaned_readings"))
            .unwrap();
        let err = bare.restore(&ck).unwrap_err();
        assert!(err.to_string().contains("queries"), "{err}");
        // Same shape, different query name.
        let mut renamed = Engine::new();
        renamed.create_stream(Schema::readings("readings")).unwrap();
        let ck_small = renamed.checkpoint().unwrap();
        let mut other = Engine::new();
        other.create_stream(Schema::readings("other")).unwrap();
        let err = other.restore(&ck_small).unwrap_err();
        assert!(err.to_string().contains("unknown stream"), "{err}");
    }

    #[test]
    fn malformed_pushes_dead_letter_and_count() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let err = e.push("readings", vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DsmsError::TupleShape(_)));
        assert_eq!(e.rejected_tuples(), 1);
        let dl: Vec<&DeadLetter> = e.dead_letters().collect();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0].stream, "readings");
        assert_eq!(dl[0].values, vec![Value::Int(1)]);
        assert!(dl[0].error.contains("columns"), "{}", dl[0].error);
        assert_eq!(
            e.metrics_snapshot()
                .counter("eslev_rejected_tuples_total", &[]),
            Some(1)
        );
        // Valid traffic still flows after a rejection.
        e.push(
            "readings",
            vec![
                Value::str("r"),
                Value::str("t"),
                Value::Ts(Timestamp::from_secs(1)),
            ],
        )
        .unwrap();
        assert_eq!(e.stream_pushed("readings").unwrap(), 1);
    }

    #[test]
    fn dead_letter_buffer_is_bounded() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        for i in 0..300i64 {
            let _ = e.push("readings", vec![Value::Int(i)]);
        }
        assert_eq!(e.rejected_tuples(), 300);
        assert_eq!(e.dead_letters().count(), DEAD_LETTER_CAP);
        // Oldest dropped first: the survivor window is 44..300.
        assert_eq!(
            e.dead_letters().next().unwrap().values,
            vec![Value::Int(44)]
        );
        let drained = e.take_dead_letters();
        assert_eq!(drained.len(), DEAD_LETTER_CAP);
        assert_eq!(e.dead_letters().count(), 0);
    }
}

#[cfg(test)]
mod disorder_tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::Select;
    use crate::schema::Schema;
    use crate::time::Duration;

    fn reading(ms: u64, tag: &str) -> Vec<Value> {
        vec![
            Value::str("r"),
            Value::str(tag),
            Value::Ts(Timestamp::from_millis(ms)),
        ]
    }

    fn engine_with_collector() -> (Engine, crate::engine::Collector) {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        let (_, c) = e
            .register_collected(
                "all",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        (e, c)
    }

    #[test]
    fn jittered_arrivals_are_reordered() {
        let (mut e, out) = engine_with_collector();
        e.set_disorder_tolerance("readings", Duration::from_millis(100))
            .unwrap();
        // Arrivals out of order by < 100 ms.
        for (ms, tag) in [(50u64, "a"), (20, "b"), (70, "c"), (60, "d"), (400, "e")] {
            e.push("readings", reading(ms, tag)).unwrap();
        }
        e.flush_disorder().unwrap();
        let tags: Vec<String> = out
            .take()
            .iter()
            .map(|t| t.value(1).as_str().unwrap().to_string())
            .collect();
        assert_eq!(tags, vec!["b", "a", "d", "c", "e"]);
    }

    #[test]
    fn matches_in_order_run_exactly() {
        // Shuffled feed through the buffer == sorted feed without it.
        let base: Vec<(u64, String)> = (0..200u64)
            .map(|i| (i * 10 + (i * 7919) % 9, format!("t{i}")))
            .collect();
        let mut shuffled = base.clone();
        // Deterministic local shuffle with displacement < 5 positions
        // (< 50 ms of time).
        for i in (1..shuffled.len()).step_by(2) {
            shuffled.swap(i - 1, i);
        }
        let run = |feed: &[(u64, String)], tolerant: bool| -> Vec<u64> {
            let (mut e, out) = engine_with_collector();
            if tolerant {
                e.set_disorder_tolerance("readings", Duration::from_millis(200))
                    .unwrap();
            }
            for (ms, tag) in feed {
                e.push("readings", reading(*ms, tag)).unwrap();
            }
            e.flush_disorder().unwrap();
            out.take().iter().map(|t| t.ts().as_micros()).collect()
        };
        let mut sorted = base.clone();
        sorted.sort();
        assert_eq!(run(&shuffled, true), run(&sorted, false));
    }

    #[test]
    fn beyond_slack_is_rejected() {
        let (mut e, _) = engine_with_collector();
        e.set_disorder_tolerance("readings", Duration::from_millis(100))
            .unwrap();
        e.push("readings", reading(1000, "a")).unwrap();
        // 1000 - 100 = 900 released nothing yet; push at 2000 releases "a"
        // (bound 1900).
        e.push("readings", reading(2000, "b")).unwrap();
        assert_eq!(e.stream_pushed("readings").unwrap(), 1);
        // A tuple before the last delivered (1000) can no longer fit: it
        // is counted and dead-lettered, not applied and not an error.
        e.push("readings", reading(500, "late")).unwrap();
        assert_eq!(e.stream_pushed("readings").unwrap(), 1);
        assert_eq!(e.late_tuples(), 1);
        let dead: Vec<&DeadLetter> = e.dead_letters().collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].reason, RejectReason::Late);
        assert_eq!(dead[0].stream, "readings");
        // Malformed arrivals keep their own reason tag and counter.
        assert!(e.push("readings", vec![Value::Int(1)]).is_err());
        assert_eq!(e.rejected_tuples(), 1);
        let dead: Vec<&DeadLetter> = e.dead_letters().collect();
        assert_eq!(dead.len(), 2);
        assert_eq!(dead[1].reason, RejectReason::Malformed);
    }

    #[test]
    fn watermarks_follow_released_time_only() {
        let (mut e, _) = engine_with_collector();
        e.set_disorder_tolerance("readings", Duration::from_millis(100))
            .unwrap();
        e.push("readings", reading(1000, "a")).unwrap();
        // Nothing released yet → stream time has not advanced to 1000.
        assert!(e.now() < Timestamp::from_millis(1000));
        e.push("readings", reading(2000, "b")).unwrap();
        assert_eq!(e.now(), Timestamp::from_millis(1000));
        e.flush_disorder().unwrap();
        assert_eq!(e.now(), Timestamp::from_millis(2000));
    }

    /// Apply retractions to a signed emission log, returning the
    /// surviving rows in canonical order.
    fn reconcile(tuples: Vec<Tuple>) -> Vec<(Vec<Value>, Timestamp)> {
        let mut live: Vec<Tuple> = Vec::new();
        for t in tuples {
            if t.is_retraction() {
                let pos = live
                    .iter()
                    .rposition(|p| {
                        p.values() == t.values() && p.ts() == t.ts() && p.seq() == t.seq()
                    })
                    .expect("retraction matches a prior emission");
                live.remove(pos);
            } else {
                live.push(t);
            }
        }
        live.into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect()
    }

    #[test]
    fn fast_reconciles_to_consistent_output() {
        let feed = [
            (50u64, "a"),
            (20, "b"),
            (70, "c"),
            (60, "d"),
            (400, "e"),
            (350, "f"),
            (500, "g"),
        ];
        let run = |consistency: Consistency| -> Vec<Tuple> {
            let mut e = Engine::new();
            e.create_stream(Schema::readings("readings")).unwrap();
            let (_, c) = e
                .register_collected_with(
                    "q",
                    vec!["readings"],
                    Box::new(Select::new(Expr::lit(true))),
                    consistency,
                )
                .unwrap();
            e.set_disorder_tolerance("readings", Duration::from_millis(200))
                .unwrap();
            for (ms, tag) in feed {
                e.push("readings", reading(ms, tag)).unwrap();
            }
            e.flush_disorder().unwrap();
            c.take()
        };
        let consistent = run(Consistency::Consistent);
        assert!(consistent.iter().all(|t| !t.is_retraction()));
        let fast = run(Consistency::Fast);
        // The misordered arrivals force at least one speculative
        // emission to be withdrawn.
        assert!(fast.iter().any(|t| t.is_retraction()));
        assert!(fast.len() > consistent.len());
        let expected: Vec<(Vec<Value>, Timestamp)> = consistent
            .iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        assert_eq!(reconcile(fast), expected);
    }

    #[test]
    fn fast_cannot_feed_derived_stream() {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        e.create_stream(Schema::readings("derived")).unwrap();
        let err = e
            .register_query_with(
                "q",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
                Sink::Stream("derived".into()),
                Consistency::Fast,
            )
            .unwrap_err();
        assert!(err.to_string().contains("retraction"));
    }

    #[test]
    fn stale_watermark_is_rejected_and_counted() {
        let (mut e, _) = engine_with_collector();
        e.advance_watermark(Timestamp::from_millis(100)).unwrap();
        let err = e.advance_watermark(Timestamp::from_millis(50)).unwrap_err();
        assert!(matches!(err, DsmsError::StaleWatermark(_)));
        assert_eq!(e.stale_watermarks(), 1);
        // Equal re-announcement is a harmless no-op, not a regression.
        e.advance_watermark(Timestamp::from_millis(100)).unwrap();
        assert_eq!(e.now(), Timestamp::from_millis(100));
        // The lenient internal path still swallows earlier times.
        e.advance_to(Timestamp::from_millis(10)).unwrap();
        assert_eq!(e.stale_watermarks(), 1);
    }

    #[test]
    fn checkpoint_round_trips_dead_letters() {
        let (mut e, _) = engine_with_collector();
        e.set_disorder_tolerance("readings", Duration::from_millis(100))
            .unwrap();
        e.push("readings", reading(1000, "a")).unwrap();
        e.push("readings", reading(2000, "b")).unwrap();
        e.push("readings", reading(500, "late")).unwrap();
        let _ = e.push("readings", vec![Value::Int(1)]);
        let bytes = e.checkpoint().unwrap().to_bytes();
        let ck = crate::ckpt::EngineCheckpoint::from_bytes(&bytes).unwrap();
        let (mut f, _) = engine_with_collector();
        f.set_disorder_tolerance("readings", Duration::from_millis(100))
            .unwrap();
        f.restore(&ck).unwrap();
        let dead: Vec<&DeadLetter> = f.dead_letters().collect();
        assert_eq!(dead.len(), 2);
        assert_eq!(dead[0].reason, RejectReason::Late);
        assert_eq!(dead[1].reason, RejectReason::Malformed);
        assert_eq!(dead[1].values, vec![Value::Int(1)]);
    }
}
