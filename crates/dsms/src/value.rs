//! Dynamically typed column values.
//!
//! RFID readings and their derived streams carry a small set of scalar
//! types: tag/reader identifiers (strings), counters (integers), sensor
//! measurements (floats), flags (booleans) and observation timestamps.
//! `Value` is the runtime representation of one column of one tuple.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single column value.
///
/// Strings are reference-counted so that cloning tuples (which happens on
/// every window insert and match binding) never copies string bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (sensor measurements).
    Float(f64),
    /// Interned immutable string (tag ids, reader ids, EPCs, locations).
    Str(Arc<str>),
    /// Boolean flag.
    Bool(bool),
    /// Observation timestamp.
    Ts(Timestamp),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a timestamp, if it is one.
    pub fn as_ts(&self) -> Option<Timestamp> {
        match self {
            Value::Ts(t) => Some(*t),
            _ => None,
        }
    }

    /// The runtime type of this value, for error reporting and binding.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Ts(_) => ValueType::Ts,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL
    /// or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Ts(a), Value::Ts(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality: NULL never equals anything.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

/// Equality used for grouping keys and test assertions: NULL == NULL here
/// (unlike SQL comparison semantics), and floats compare bitwise.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Ts(a), Value::Ts(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Ts(t) => t.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ts(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Ts(v)
    }
}

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// The type of NULL literals before coercion.
    Null,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Timestamp.
    Ts,
}

impl ValueType {
    /// Whether a value of type `self` can be stored in a column of type
    /// `target` (NULL is storable anywhere; Int widens to Float).
    pub fn coercible_to(self, target: ValueType) -> bool {
        self == target
            || self == ValueType::Null
            || (self == ValueType::Int && target == ValueType::Float)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "NULL",
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Str => "VARCHAR",
            ValueType::Bool => "BOOLEAN",
            ValueType::Ts => "TIMESTAMP",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Value::Ts(Timestamp::from_secs(1)).as_ts(),
            Some(Timestamp::from_secs(1))
        );
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn sql_comparison_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_comparison_numeric_widening() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Float(2.0).sql_eq(&Value::Int(2)), Some(true));
    }

    #[test]
    fn sql_comparison_mismatched_types() {
        assert_eq!(Value::str("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn grouping_equality_treats_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::str("a"));
        s.insert(Value::str("a"));
        s.insert(Value::Int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn coercions() {
        assert!(ValueType::Int.coercible_to(ValueType::Float));
        assert!(ValueType::Null.coercible_to(ValueType::Str));
        assert!(!ValueType::Float.coercible_to(ValueType::Int));
        assert!(ValueType::Str.coercible_to(ValueType::Str));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
