//! Self-contained observability: counters, gauges, log-bucketed
//! histograms, a process-local registry, and text exporters.
//!
//! Everything here is hand-rolled on `std::sync::atomic` so the engine
//! stays dependency-free and builds offline. Instruments are cheap,
//! cloneable handles around shared atomics: the single-threaded
//! [`Engine`](crate::engine::Engine) and the concurrent
//! [`EngineDriver`](crate::driver::EngineDriver) use the same types, and
//! a [`Registry`] clone held outside the driver's worker thread reads
//! live values without any coordination beyond relaxed atomic loads.
//!
//! The exporters produce the Prometheus text exposition format
//! ([`MetricsSnapshot::to_prometheus`]) and a stable JSON rendering
//! ([`MetricsSnapshot::to_json`]) without any serialization crate.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two histogram buckets (bucket `i` holds values `v`
/// with `2^(i-1) <= v < 2^i`; bucket 0 holds zero).
const HIST_BUCKETS: usize = 65;

/// Monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one and return the value *before* the increment — one atomic
    /// op where hot paths would otherwise pair [`Counter::get`] with
    /// [`Counter::inc`] (e.g. the engine's wall-clock sampling decision).
    #[inline]
    pub fn inc_get(&self) -> u64 {
        self.v.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, retained state, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    /// Fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Shift the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Log-bucketed distribution of `u64` observations (typically
/// nanoseconds). Power-of-two buckets trade precision for a fixed
/// footprint and a branch-free record path.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            }),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Bucket index of a value: 0 for 0, else position of the highest set bit
/// plus one (so `2^(i-1) <= v < 2^i` lands in bucket `i`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state (buckets are read
    /// without a global lock; concurrent recording may skew totals by the
    /// in-flight handful).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.inner.count.load(Ordering::Relaxed);
        let sum = self.inner.sum.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            // Inclusive upper bound of bucket i is 2^i - 1 (bucket 0: 0).
            let le = if i >= 64 {
                u64::MAX
            } else {
                (1u64 << i).saturating_sub(1)
            };
            buckets.push((le, cumulative));
        }
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (within a factor of two of the true value; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        for &(le, cumulative) in &self.buckets {
            if cumulative >= rank {
                return le;
            }
        }
        self.buckets.last().map(|&(le, _)| le).unwrap_or(0)
    }
}

/// The value part of one exported metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Signed level.
    Gauge(i64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

/// One exported metric: name, labels, value.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Metric name (`snake_case`, conventionally `eslev_`-prefixed).
    pub name: String,
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

impl MetricSample {
    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && labels
                .iter()
                .all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

/// A point-in-time export of every registered instrument (plus any
/// samples appended by the caller, e.g. per-operator stage metrics).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All samples, in registration/append order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Append a sample (used by the engine for derived metrics that have
    /// no registered instrument, like per-stage operator reports).
    pub fn push(&mut self, name: impl Into<String>, labels: &[(&str, &str)], value: MetricValue) {
        self.samples.push(MetricSample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Append every sample from `other` with one extra label pair — how
    /// the shard router folds N per-shard driver snapshots into a single
    /// snapshot whose samples stay distinguishable by a `shard` label.
    pub fn absorb_labeled(&mut self, other: MetricsSnapshot, key: &str, value: &str) {
        for mut s in other.samples {
            s.labels.push((key.to_string(), value.to_string()));
            self.samples.push(s);
        }
    }

    /// First counter matching `name` whose labels include all of
    /// `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples.iter().find_map(|s| match s.value {
            MetricValue::Counter(v) if s.matches(name, labels) => Some(v),
            _ => None,
        })
    }

    /// First gauge matching `name` whose labels include all of `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.samples.iter().find_map(|s| match s.value {
            MetricValue::Gauge(v) if s.matches(name, labels) => Some(v),
            _ => None,
        })
    }

    /// First histogram matching `name` whose labels include all of
    /// `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.samples.iter().find_map(|s| match &s.value {
            MetricValue::Histogram(h) if s.matches(name, labels) => Some(h),
            _ => None,
        })
    }

    /// Render in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        v
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        v
                    ));
                }
                MetricValue::Histogram(h) => {
                    for &(le, cumulative) in &h.buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.name,
                            prom_labels(&s.labels, Some(&le.to_string())),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        prom_labels(&s.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        h.count
                    ));
                    // Approximate (bucket-upper-bound) quantiles in the
                    // summary style, so dashboards get p50/p90/p99
                    // without PromQL over the log buckets.
                    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        let mut labels = s.labels.clone();
                        labels.push(("quantile".to_string(), tag.to_string()));
                        out.push_str(&format!(
                            "{}{} {}\n",
                            s.name,
                            prom_labels(&labels, None),
                            h.quantile(q)
                        ));
                    }
                }
            }
        }
        out
    }

    /// Render as JSON: `{"metrics": [{"name", "labels", "type", ...}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &s.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push('}');
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    for (j, (le, cumulative)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{le},{cumulative}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Render a Prometheus label set, optionally with an extra `le` label.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Append a JSON string literal (quotes and control chars escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A shared, cloneable collection of named instruments.
///
/// Registration is idempotent: asking for the same `(name, labels)` again
/// returns a handle to the same underlying atomics, so callers can
/// re-derive handles instead of threading them through.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "Registry({n} instruments)")
    }
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn with_entries<R>(&self, f: impl FnOnce(&mut Vec<Entry>) -> R) -> R {
        let mut guard = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }

    /// Register (or re-fetch) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.with_entries(|entries| {
            for e in entries.iter() {
                if let Instrument::Counter(c) = &e.instrument {
                    if e.name == name && label_eq(&e.labels, labels) {
                        return c.clone();
                    }
                }
            }
            let c = Counter::new();
            entries.push(Entry {
                name: name.to_string(),
                labels: own_labels(labels),
                instrument: Instrument::Counter(c.clone()),
            });
            c
        })
    }

    /// Register (or re-fetch) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.with_entries(|entries| {
            for e in entries.iter() {
                if let Instrument::Gauge(g) = &e.instrument {
                    if e.name == name && label_eq(&e.labels, labels) {
                        return g.clone();
                    }
                }
            }
            let g = Gauge::new();
            entries.push(Entry {
                name: name.to_string(),
                labels: own_labels(labels),
                instrument: Instrument::Gauge(g.clone()),
            });
            g
        })
    }

    /// Register (or re-fetch) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.with_entries(|entries| {
            for e in entries.iter() {
                if let Instrument::Histogram(h) = &e.instrument {
                    if e.name == name && label_eq(&e.labels, labels) {
                        return h.clone();
                    }
                }
            }
            let h = Histogram::new();
            entries.push(Entry {
                name: name.to_string(),
                labels: own_labels(labels),
                instrument: Instrument::Histogram(h.clone()),
            });
            h
        })
    }

    /// Point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_entries(|entries| {
            let samples = entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect();
            MetricsSnapshot { samples }
        })
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn label_eq(owned: &[(String, String)], borrowed: &[(&str, &str)]) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed)
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        // Zero lands in bucket 0 with upper bound 0.
        assert_eq!(s.buckets[0], (0, 1));
        // Everything is within the largest bucket's bound.
        assert!(s.quantile(1.0) >= 1000);
        assert!(s.quantile(0.5) <= 3);
        assert!((s.mean() - 1105.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_of_is_monotone_and_tight() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn registry_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("hits", &[("q", "one")]);
        let b = r.counter("hits", &[("q", "one")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("hits", &[("q", "two")]);
        other.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits", &[("q", "one")]), Some(2));
        assert_eq!(snap.counter("hits", &[("q", "two")]), Some(1));
        assert_eq!(snap.counter("hits", &[("q", "three")]), None);
    }

    #[test]
    fn registry_clones_share_instruments() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("n", &[]).add(3);
        assert_eq!(r2.snapshot().counter("n", &[]), Some(3));
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("eslev_pushed_total", &[("stream", "r1")]).add(5);
        r.gauge("eslev_depth", &[]).set(-2);
        let h = r.histogram("eslev_lat_ns", &[("q", "dedup")]);
        h.record(3);
        h.record(100);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("eslev_pushed_total{stream=\"r1\"} 5"));
        assert!(text.contains("eslev_depth -2"));
        assert!(text.contains("eslev_lat_ns_bucket{q=\"dedup\",le=\"3\"} 1"));
        assert!(text.contains("eslev_lat_ns_bucket{q=\"dedup\",le=\"+Inf\"} 2"));
        assert!(text.contains("eslev_lat_ns_sum{q=\"dedup\"} 103"));
        assert!(text.contains("eslev_lat_ns_count{q=\"dedup\"} 2"));
    }

    #[test]
    fn prometheus_histogram_quantile_lines() {
        let r = Registry::new();
        let h = r.histogram("eslev_lat_ns", &[]);
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1000);
        let text = r.snapshot().to_prometheus();
        // p50/p90 land in the bucket ending at 3; p99 rank 99 too.
        assert!(text.contains("eslev_lat_ns{quantile=\"0.5\"} 3"));
        assert!(text.contains("eslev_lat_ns{quantile=\"0.9\"} 3"));
        assert!(text.contains("eslev_lat_ns{quantile=\"0.99\"} 3"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut snap = MetricsSnapshot::default();
        snap.push("m", &[("q", "we\"ird\nname")], MetricValue::Counter(1));
        let json = snap.to_json();
        assert!(json.contains("\"we\\\"ird\\nname\""));
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let h = Histogram::new();
        let c = Counter::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..1000u64 {
                    h.record(v);
                    c.inc();
                }
            }));
        }
        for jh in handles {
            jh.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.last().unwrap().1, 4000);
    }
}
