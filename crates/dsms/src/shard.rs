//! EPC-partitioned scale-out: a hash router in front of N engines.
//!
//! The paper's queries (dedup, `SEQ`, star sequences, pairing modes) are
//! all keyed by EPC, so the stream partitions cleanly by tag: a
//! [`ShardedEngine`] routes each pushed tuple to `hash(key) % N` where an
//! independent [`Engine`] on its own worker thread holds every bit of
//! state for that key. Three mechanisms make the result *deterministic* —
//! byte-identical to the single-threaded reference regardless of N:
//!
//! 1. **Cause indexing.** The router stamps every `push`/`advance_to`
//!    with a monotone *cause index* and uses it as the tuple's global
//!    sequence number ([`Engine::push_with_seq`]), so `(ts, seq)`
//!    tie-breaks inside detectors match the single-engine order.
//! 2. **Watermark broadcast.** A keyed tuple's timestamp is broadcast to
//!    every *other* shard as a punctuation carrying the same cause index.
//!    Each shard therefore observes the identical watermark sequence the
//!    single engine derives from its auto-watermark, so *active
//!    expiration* (window close, `EXCEPTION_SEQ` timeouts) fires at the
//!    same stream-time on every shard.
//! 3. **Cause-ordered merge.** A tap on each worker thread drains
//!    collector outputs right after the command that produced them,
//!    tagging them with its cause. The merge stage releases outputs only
//!    up to the *low-water frontier* (the smallest cause every shard has
//!    acknowledged) and orders them by `(cause, shard)` — reproducing the
//!    single engine's emission order for tuple-caused outputs.
//!
//! Streams without an EPC-like key column (tables, context lookups) are
//! *broadcast*: every shard sees every row, so non-keyed state stays
//! replica-consistent. The router assumes the feed is globally
//! time-ordered (the same discipline the single engine's auto-watermark
//! expects).

use crate::ckpt::EngineCheckpoint;
use crate::driver::{BatchItem, EngineDriver, EngineInput, Tap};
use crate::engine::{Collector, DeadLetter, Engine, RejectReason};
use crate::error::{DsmsError, Result};
use crate::hash::FnvBuildHasher;
use crate::journal::Journal;
use crate::obs::{Counter, Gauge, Histogram, MetricValue, MetricsSnapshot, Registry};
use crate::time::{Duration, Timestamp};
use crate::trace::{FlightRecorder, LatencyStamps, TraceEvent, TraceKind};
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Column names recognised as the EPC/tag key when a [`ShardSpec`] does
/// not name one explicitly (first match wins, case-insensitive).
pub const EPC_KEY_COLUMNS: &[&str] = &["tag_id", "tagid", "tid", "epc", "tag"];

/// Bits reserved below the cause index when it is used as a tuple
/// sequence number: routed tuples get `cause << 16`, leaving shard-local
/// room for up to 65535 derived-stream tuples per cause without seq
/// collisions inside a shard.
const CAUSE_SEQ_SHIFT: u32 = 16;

/// Reserved journal stream name for broadcast punctuations. Real stream
/// names are lowercased identifiers, so a control character cannot
/// collide with one.
const ADVANCE_STREAM: &str = "\u{1}advance";

/// How many crash/restart rounds [`ShardedEngine::flush`] tolerates
/// before giving up — a shard that dies again immediately after every
/// recovery is a deterministic fault, not transient.
const MAX_FLUSH_RESTARTS: usize = 4;

/// Router dead-letter retention (same bound as the engine's buffer).
const ROUTER_DEAD_CAP: usize = 256;

/// Router-side bounded-disorder state for one stream. Order is restored
/// *at the router*, before rows are routed: shard engines then see
/// in-order streams and the cause-ordered merge reproduces the
/// single-engine output exactly — disorder never reaches the workers.
struct RouterReorder {
    slack: Duration,
    max_seen: Timestamp,
    /// `(event time, arrival number) -> row`, released in key order.
    pending: BTreeMap<(Timestamp, u64), Vec<Value>>,
}

/// How a stream's tuples travel to shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteRule {
    /// Hash of the named key columns picks exactly one shard.
    Key(Vec<usize>),
    /// Every shard receives every tuple (non-keyed constructs: tables,
    /// context streams, heartbeats).
    Broadcast,
}

/// Per-stream routing configuration for [`ShardedEngine::build`].
///
/// Streams not mentioned here fall back to the EPC auto-detect list
/// ([`EPC_KEY_COLUMNS`]); streams with no recognisable key column are
/// broadcast. Routes resolve lazily on a stream's first push, so streams
/// created after build (e.g. via REPL DDL) are covered too.
#[derive(Clone, Debug, Default)]
pub struct ShardSpec {
    keys: HashMap<String, Vec<String>>,
    broadcast: Vec<String>,
    no_epc_default: bool,
}

impl ShardSpec {
    /// Spec with EPC auto-detection and no explicit routes.
    pub fn new() -> ShardSpec {
        ShardSpec::default()
    }

    /// Route `stream` by hashing the named columns.
    pub fn key(mut self, stream: &str, columns: &[&str]) -> ShardSpec {
        self.keys.insert(
            stream.to_ascii_lowercase(),
            columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        );
        self
    }

    /// Route every tuple of `stream` to all shards.
    pub fn broadcast(mut self, stream: &str) -> ShardSpec {
        self.broadcast.push(stream.to_ascii_lowercase());
        self
    }

    /// Disable EPC auto-detection: unspecified streams broadcast.
    pub fn without_epc_default(mut self) -> ShardSpec {
        self.no_epc_default = true;
        self
    }
}

/// Shard assignment: a pure function of the key values — FNV-1a over the
/// display rendering of each key column, so the same key always lands on
/// the same shard, in every process, on every run.
pub fn shard_of(values: &[Value], key_cols: &[usize], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut text = String::new();
    for c in key_cols {
        use std::fmt::Write as _;
        text.clear();
        let v = values.get(*c).unwrap_or(&Value::Null);
        let _ = write!(text, "{v}");
        for b in text.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash apart.
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Tracks one watermark per shard and exposes their minimum — the only
/// stream-time the merged output may trust, since a shard behind the
/// others can still emit results at its own (earlier) clock.
#[derive(Clone, Debug)]
pub struct WatermarkAggregator {
    marks: Vec<Timestamp>,
}

impl WatermarkAggregator {
    /// Aggregator over `shards` clocks, all starting at time zero.
    pub fn new(shards: usize) -> WatermarkAggregator {
        WatermarkAggregator {
            marks: vec![Timestamp::default(); shards],
        }
    }

    /// Advance `shard`'s watermark (monotone; earlier times are no-ops).
    pub fn advance(&mut self, shard: usize, ts: Timestamp) {
        if let Some(m) = self.marks.get_mut(shard) {
            *m = (*m).max(ts);
        }
    }

    /// `shard`'s current watermark.
    pub fn mark(&self, shard: usize) -> Timestamp {
        self.marks.get(shard).copied().unwrap_or_default()
    }

    /// The low-water mark: minimum over all shards.
    pub fn low_water(&self) -> Timestamp {
        self.marks.iter().copied().min().unwrap_or_default()
    }

    /// The high-water mark: maximum over all shards (how far the feed
    /// itself has progressed).
    pub fn high_water(&self) -> Timestamp {
        self.marks.iter().copied().max().unwrap_or_default()
    }
}

/// Live per-shard counters for `SHOW SHARDS` and the bench harness.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Tuples routed directly to this shard (broadcast rows excluded).
    pub routed: u64,
    /// Commands queued but not yet processed by the worker.
    pub queue_depth: i64,
    /// Highest cause index the worker has acknowledged.
    pub processed_cause: u64,
    /// The shard engine's stream-time high-water mark.
    pub watermark: Timestamp,
    /// Watermark the router has *sent* to this shard.
    pub sent_watermark: Timestamp,
}

/// One resolved route: rule plus the schema's time column (used to lift
/// tuple timestamps into broadcast watermarks).
#[derive(Clone, Debug)]
struct Route {
    rule: RouteRule,
    time_col: Option<usize>,
}

struct SlotBuf {
    collector: Collector,
    /// Cause-tagged outputs awaiting the merge frontier.
    buf: VecDeque<(u64, Tuple)>,
}

/// Worker-side output state for one shard: the tap drains collectors
/// into cause-tagged buffers under this lock, right after the command
/// that produced them.
type SharedOutputs = Arc<Mutex<Vec<SlotBuf>>>;

/// The per-shard engine bootstrap. The router keeps it for the lifetime
/// of the sharded engine so a crashed shard can be rebuilt from scratch
/// (streams, queries, UDFs) before its checkpoint is restored and its
/// journal tail replayed.
type Setup = Arc<dyn Fn(&mut Engine) -> Result<Vec<Collector>> + Send + Sync>;

/// Recovery posture of one shard, for `SHOW RECOVERY` and the tests.
#[derive(Clone, Debug)]
pub struct ShardRecovery {
    /// Shard index.
    pub shard: usize,
    /// Journal entries currently retained (replay tail upper bound).
    pub journal_len: usize,
    /// Total entries ever journaled for this shard.
    pub journal_appended: u64,
    /// Cause position of the shard's last checkpoint (`None` before the
    /// first [`ShardedEngine::checkpoint`]).
    pub checkpoint_cause: Option<u64>,
    /// The most recent captured panic message, if this shard has ever
    /// crashed (survives the restart that recovered from it).
    pub last_panic: Option<String>,
}

/// Router-level recovery counters plus per-shard posture.
#[derive(Clone, Debug)]
pub struct RecoveryStats {
    /// Checkpoint rounds completed (`eslev_checkpoints_total`).
    pub checkpoints: u64,
    /// Shard restarts performed (`eslev_shard_restarts_total`).
    pub restarts: u64,
    /// Journal entries replayed across all restarts
    /// (`eslev_replayed_tuples_total`).
    pub replayed_tuples: u64,
    /// Per-shard journal/checkpoint/panic state.
    pub shards: Vec<ShardRecovery>,
}

/// N single-threaded engines behind a deterministic hash router — see
/// the module docs for the full protocol.
pub struct ShardedEngine {
    drivers: Vec<EngineDriver>,
    inputs: Vec<EngineInput>,
    outs: Vec<SharedOutputs>,
    /// Highest cause acknowledged by each worker (written by the tap).
    acked: Vec<Arc<AtomicU64>>,
    /// Each shard engine's `now()` in micros (written by the tap).
    now_us: Vec<Arc<AtomicU64>>,
    /// Cause of the last command sent to each shard (0 = none yet).
    last_sent: Vec<u64>,
    next_cause: u64,
    spec: ShardSpec,
    routes: HashMap<String, Route>,
    /// Memoised shard assignment for single-string-column key routes,
    /// keyed by *string content* (`Arc<str>` hashes and compares by
    /// contents, not pointer), so routing is byte-identical to the
    /// uncached [`shard_of`] regardless of interning or shard-local
    /// symbol ids. Entries are computed by `shard_of` on first sight.
    key_cache: HashMap<Arc<str>, usize, FnvBuildHasher>,
    sent_marks: WatermarkAggregator,
    /// Whether [`ShardedEngine::push_batch`] may coalesce the per-row
    /// watermark broadcasts into one trailing punctuation per shard:
    /// true iff no shard has an active query needing the exact
    /// per-tuple schedule ([`Engine::needs_per_tuple_watermarks`]).
    /// Refreshed synchronously wherever queries can change — at build
    /// and after every exec closure — so it is never stale when a
    /// batch is routed.
    coalesce_marks: AtomicBool,
    slots: usize,
    /// Merge slots created by the setup closure; restart can only
    /// rebuild these (see [`ShardedEngine::restart_shard`]).
    build_slots: usize,
    /// Highest cause released to the consumer per slot — the floor below
    /// which a restarted shard's regenerated outputs are duplicates.
    released: Vec<u64>,
    /// The stored bootstrap, re-run to rebuild a crashed shard.
    setup: Setup,
    /// Command queue capacity, reused when respawning a shard driver.
    queue: usize,
    /// Per-shard input journals (appended *before* the send, so a row
    /// lost in a crashed worker's queue is still replayable).
    journals: Vec<Journal>,
    /// Per-shard last durable checkpoint: (cause position, bytes).
    ckpts: Vec<Option<(u64, Vec<u8>)>>,
    /// Most recent captured panic per shard (survives restarts).
    last_panics: Vec<Option<String>>,
    /// Router-level bounded-disorder buffers, keyed by stream (lower).
    reorder: HashMap<String, RouterReorder>,
    /// Monotone arrival number tie-breaking equal event times in the
    /// reorder buffers (arrival order, like the engine's seq).
    reorder_seq: u64,
    /// Newest event time already released from the reorder buffers —
    /// arrivals behind it are late beyond slack.
    reorder_released: Timestamp,
    /// Router-side dead letters (late arrivals rejected before routing).
    dead: VecDeque<DeadLetter>,
    obs: Registry,
    routed: Vec<Counter>,
    late: Counter,
    stale: Counter,
    broadcasts: Counter,
    merge_lag: Gauge,
    checkpoints: Counter,
    restarts: Counter,
    replayed: Counter,
    /// Router-side flight recorder (checkpoints, restarts, merged
    /// releases); per-shard engine rings are folded in by
    /// [`ShardedEngine::take_trace`].
    trace: FlightRecorder,
    /// Admission stamps for 1-in-64 sampled causes, taken again when the
    /// cause is released by the merge — router-level end-to-end latency.
    lat_stamps: LatencyStamps,
    /// Sampled route→merged-release latency (`eslev_tuple_latency_ns`).
    tuple_latency: Histogram,
}

impl ShardedEngine {
    /// Spin up `shards` engines, each initialised by `setup` (which must
    /// create the same streams/queries on every shard and return its
    /// collectors — they become the merge slots, in order). `queue`
    /// bounds each worker's command channel. The closure is retained:
    /// when a shard worker panics, the router rebuilds the shard by
    /// re-running `setup` on a fresh engine, restoring the last
    /// checkpoint and replaying the journal tail.
    pub fn build<F>(shards: usize, queue: usize, spec: ShardSpec, setup: F) -> Result<ShardedEngine>
    where
        F: Fn(&mut Engine) -> Result<Vec<Collector>> + Send + Sync + 'static,
    {
        if shards == 0 {
            return Err(DsmsError::plan("sharded engine needs at least 1 shard"));
        }
        let setup: Setup = Arc::new(setup);
        let obs = Registry::new();
        let late = obs.counter("eslev_late_tuples_total", &[]);
        let stale = obs.counter("eslev_stale_watermarks_total", &[]);
        let broadcasts = obs.counter("eslev_shard_broadcast_total", &[]);
        let merge_lag = obs.gauge("eslev_shard_merge_lag", &[]);
        let checkpoints = obs.counter("eslev_checkpoints_total", &[]);
        let restarts = obs.counter("eslev_shard_restarts_total", &[]);
        let replayed = obs.counter("eslev_replayed_tuples_total", &[]);
        let tuple_latency = obs.histogram("eslev_tuple_latency_ns", &[]);
        let mut drivers = Vec::with_capacity(shards);
        let mut inputs = Vec::with_capacity(shards);
        let mut outs = Vec::with_capacity(shards);
        let mut acked = Vec::with_capacity(shards);
        let mut now_us = Vec::with_capacity(shards);
        let mut routed = Vec::with_capacity(shards);
        let mut slots = None;
        let mut per_tuple_marks = false;
        for i in 0..shards {
            let mut engine = Engine::new();
            let collectors = setup(&mut engine)?;
            per_tuple_marks |= engine.needs_per_tuple_watermarks();
            match slots {
                None => slots = Some(collectors.len()),
                Some(n) if n == collectors.len() => {}
                Some(n) => {
                    return Err(DsmsError::plan(format!(
                        "setup returned {} collectors on shard {i}, {n} on shard 0",
                        collectors.len()
                    )))
                }
            }
            let shared: SharedOutputs = Arc::new(Mutex::new(
                collectors
                    .into_iter()
                    .map(|collector| SlotBuf {
                        collector,
                        buf: VecDeque::new(),
                    })
                    .collect(),
            ));
            let ack = Arc::new(AtomicU64::new(0));
            let now = Arc::new(AtomicU64::new(0));
            let tap = Self::make_tap(shared.clone(), ack.clone(), now.clone());
            let driver = EngineDriver::spawn_with_tap(engine, queue, Some(tap))?;
            inputs.push(driver.input());
            drivers.push(driver);
            outs.push(shared);
            acked.push(ack);
            now_us.push(now);
            let idx = i.to_string();
            routed.push(obs.counter("eslev_shard_tuples_total", &[("shard", &idx)]));
        }
        let slots = slots.unwrap_or(0);
        Ok(ShardedEngine {
            drivers,
            inputs,
            outs,
            acked,
            now_us,
            last_sent: vec![0; shards],
            next_cause: 1,
            spec,
            routes: HashMap::new(),
            key_cache: HashMap::default(),
            sent_marks: WatermarkAggregator::new(shards),
            coalesce_marks: AtomicBool::new(!per_tuple_marks),
            slots,
            build_slots: slots,
            released: vec![0; slots],
            setup,
            queue,
            journals: (0..shards).map(|_| Journal::new()).collect(),
            ckpts: vec![None; shards],
            last_panics: vec![None; shards],
            reorder: HashMap::new(),
            reorder_seq: 0,
            reorder_released: Timestamp::ZERO,
            dead: VecDeque::new(),
            obs,
            routed,
            late,
            stale,
            broadcasts,
            merge_lag,
            checkpoints,
            restarts,
            replayed,
            trace: FlightRecorder::default(),
            lat_stamps: LatencyStamps::new(),
            tuple_latency,
        })
    }

    /// The worker-thread tap shared by build and restart: drains
    /// collectors into cause-tagged merge buffers and publishes the
    /// shard's acknowledgement frontier and stream-time. `fetch_max`
    /// (not a plain store) keeps the frontier monotone across a restart,
    /// where a freshly spawned worker briefly reports cause 0.
    fn make_tap(shared: SharedOutputs, ack: Arc<AtomicU64>, now: Arc<AtomicU64>) -> Tap {
        Box::new(move |engine: &mut Engine, cause: u64| {
            let mut slots = shared.lock();
            for slot in slots.iter_mut() {
                for t in slot.collector.take() {
                    slot.buf.push_back((cause, t));
                }
            }
            ack.fetch_max(cause, Ordering::AcqRel);
            now.store(engine.now().as_micros(), Ordering::Relaxed);
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.drivers.len()
    }

    /// Number of merge slots (collectors per shard).
    pub fn output_slots(&self) -> usize {
        self.slots
    }

    /// The cause index the next routed command will be stamped with —
    /// the fault-injection plan keys its schedule on this.
    pub fn next_cause(&self) -> u64 {
        self.next_cause
    }

    fn route_for(&mut self, lower: &str) -> Result<Route> {
        if let Some(r) = self.routes.get(lower) {
            return Ok(r.clone());
        }
        let name = lower.to_string();
        let schema = self.drivers[0].exec(move |e| e.stream_schema(&name))??;
        let rule = if self.spec.broadcast.iter().any(|s| s == lower) {
            RouteRule::Broadcast
        } else if let Some(cols) = self.spec.keys.get(lower) {
            let mut idx = Vec::with_capacity(cols.len());
            for c in cols {
                idx.push(schema.column_index(c).ok_or_else(|| {
                    DsmsError::schema(format!("shard key column `{c}` not in stream `{lower}`"))
                })?);
            }
            RouteRule::Key(idx)
        } else if self.spec.no_epc_default {
            RouteRule::Broadcast
        } else {
            EPC_KEY_COLUMNS
                .iter()
                .find_map(|c| schema.column_index(c))
                .map(|i| RouteRule::Key(vec![i]))
                .unwrap_or(RouteRule::Broadcast)
        };
        let route = Route {
            rule,
            time_col: schema.time_column,
        };
        self.routes.insert(lower.to_string(), route.clone());
        Ok(route)
    }

    /// Shard assignment for one keyed row: delegates to [`shard_of`],
    /// memoising the result per string value when the route key is a
    /// single string column (the EPC case — by far the hottest route).
    /// The cached value *is* a `shard_of` result, so the mapping stays
    /// byte-identical to the uncached path.
    fn shard_for(&mut self, values: &[Value], cols: &[usize]) -> usize {
        let shards = self.shards();
        if let [col] = cols {
            if let Some(Value::Str(s)) = values.get(*col) {
                if let Some(&target) = self.key_cache.get(s) {
                    return target;
                }
                let target = shard_of(values, cols, shards);
                self.key_cache.insert(s.clone(), target);
                return target;
            }
        }
        shard_of(values, cols, shards)
    }

    /// Journal one push for `shard` and send it, restarting the shard in
    /// place when the send finds the worker dead of a panic — the
    /// journal entry (appended before the send) is replayed as part of
    /// the restart, so the row is never lost.
    fn journal_push(
        &mut self,
        shard: usize,
        stream: &str,
        values: Vec<Value>,
        cause: u64,
    ) -> Result<()> {
        self.journals[shard].append(stream, values.clone(), cause)?;
        self.last_sent[shard] = self.last_sent[shard].max(cause);
        let seq = cause << CAUSE_SEQ_SHIFT;
        match self.inputs[shard].push_routed(stream, values, Some(seq), cause) {
            Err(DsmsError::WorkerPanicked { .. }) => self.restart_shard(shard).map(|_| ()),
            other => other,
        }
    }

    /// Journal one punctuation for `shard` and send it; same crash
    /// handling as [`ShardedEngine::journal_push`].
    fn journal_advance(&mut self, shard: usize, ts: Timestamp, cause: u64) -> Result<()> {
        self.journals[shard].append(ADVANCE_STREAM, vec![Value::Ts(ts)], cause)?;
        self.last_sent[shard] = self.last_sent[shard].max(cause);
        match self.inputs[shard].advance_routed(ts, cause) {
            Err(DsmsError::WorkerPanicked { .. }) => self.restart_shard(shard).map(|_| ()),
            other => other,
        }
    }

    /// Route one row: hash-partition keyed streams (broadcasting the
    /// tuple's timestamp to the other shards as a watermark), replicate
    /// broadcast streams everywhere. Streams with a router-level
    /// disorder tolerance ([`ShardedEngine::set_disorder_tolerance`])
    /// are buffered and released in event-time order first.
    pub fn push(&mut self, stream: &str, values: Vec<Value>) -> Result<()> {
        let lower = stream.to_ascii_lowercase();
        if self.reorder.contains_key(&lower) {
            return self.push_disordered(lower, values);
        }
        self.route_now(&lower, values)
    }

    /// Tolerate out-of-order arrivals on a stream up to `slack`, at the
    /// router. The router assumes globally time-ordered feeds; this
    /// buffers a disordered stream *before* routing, so shard engines
    /// and the watermark broadcast still see the ordered discipline they
    /// rely on. Arrivals behind what has already been released are
    /// counted and dead-lettered at the router
    /// ([`ShardedEngine::dead_letters`]).
    pub fn set_disorder_tolerance(&mut self, stream: &str, slack: Duration) -> Result<()> {
        let lower = stream.to_ascii_lowercase();
        let route = self.route_for(&lower)?;
        if route.time_col.is_none() {
            return Err(DsmsError::schema(format!(
                "stream `{stream}` has no timestamp column to reorder by"
            )));
        }
        self.reorder.insert(
            lower,
            RouterReorder {
                slack,
                max_seen: Timestamp::ZERO,
                pending: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Buffer one row for a disorder-tolerant stream, then release
    /// everything the (global, min-across-streams) slack bound proves
    /// ordered, merged across streams in `(ts, arrival)` order.
    fn push_disordered(&mut self, lower: String, values: Vec<Value>) -> Result<()> {
        let route = self.route_for(&lower)?;
        let ts = route
            .time_col
            .and_then(|i| values.get(i).and_then(Value::as_ts))
            .ok_or_else(|| {
                DsmsError::schema(format!("stream `{lower}` row has no usable timestamp"))
            })?;
        if ts < self.reorder_released {
            self.late.inc();
            let err = DsmsError::OutOfOrder(format!(
                "stream `{lower}` tuple at {} is behind the released frontier {} (slack exceeded)",
                ts, self.reorder_released
            ));
            if self.dead.len() == ROUTER_DEAD_CAP {
                self.dead.pop_front();
            }
            self.dead.push_back(DeadLetter {
                stream: lower,
                values,
                reason: RejectReason::Late,
                error: err.to_string(),
            });
            return Ok(());
        }
        let seq = self.reorder_seq;
        self.reorder_seq += 1;
        let r = self.reorder.get_mut(&lower).expect("checked by caller");
        r.max_seen = r.max_seen.max(ts);
        r.pending.insert((ts, seq), values);
        self.release_ready()
    }

    /// Route every buffered row at or below the global release bound.
    fn release_ready(&mut self) -> Result<()> {
        let Some(bound) = self
            .reorder
            .values()
            .map(|r| r.max_seen.saturating_sub(r.slack))
            .min()
        else {
            return Ok(());
        };
        let mut ready: Vec<((Timestamp, u64), String, Vec<Value>)> = Vec::new();
        for (name, r) in self.reorder.iter_mut() {
            while let Some(first) = r.pending.first_entry() {
                if first.key().0 <= bound {
                    let k = *first.key();
                    ready.push((k, name.clone(), first.remove()));
                } else {
                    break;
                }
            }
        }
        ready.sort_by_key(|(k, _, _)| *k);
        for (k, name, values) in ready {
            self.reorder_released = self.reorder_released.max(k.0);
            self.route_now(&name, values)?;
        }
        Ok(())
    }

    /// Drain every buffered out-of-order row (end of feed), merged
    /// across streams in `(ts, arrival)` order.
    pub fn flush_disorder(&mut self) -> Result<()> {
        let mut ready: Vec<((Timestamp, u64), String, Vec<Value>)> = Vec::new();
        for (name, r) in self.reorder.iter_mut() {
            let pending = std::mem::take(&mut r.pending);
            ready.extend(pending.into_iter().map(|(k, v)| (k, name.clone(), v)));
        }
        ready.sort_by_key(|(k, _, _)| *k);
        for (k, name, values) in ready {
            self.reorder_released = self.reorder_released.max(k.0);
            self.route_now(&name, values)?;
        }
        Ok(())
    }

    /// Strict external watermark: a timestamp behind the router's
    /// broadcast high-water mark is a protocol violation — counted and
    /// rejected as [`DsmsError::StaleWatermark`] rather than silently
    /// broadcast for every shard engine to swallow.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Result<()> {
        let hi = self.sent_marks.high_water();
        if ts < hi {
            self.stale.inc();
            return Err(DsmsError::stale_watermark(format!(
                "watermark {ts} regresses behind the broadcast high-water {hi}"
            )));
        }
        self.advance_to(ts)
    }

    /// Rows rejected as late beyond the router's disorder slack.
    pub fn late_tuples(&self) -> u64 {
        self.late.get()
    }

    /// Watermarks rejected for regressing behind the broadcast frontier.
    pub fn stale_watermarks(&self) -> u64 {
        self.stale.get()
    }

    /// Every dead letter in the system, oldest first per origin: router
    /// rejections (late beyond slack, shard `None`) followed by each
    /// shard engine's buffer (malformed rows, tagged with its index).
    pub fn dead_letters(&self) -> Result<Vec<(Option<usize>, DeadLetter)>> {
        let mut out: Vec<(Option<usize>, DeadLetter)> =
            self.dead.iter().cloned().map(|d| (None, d)).collect();
        let per_shard =
            self.exec_all(|e| e.dead_letters().cloned().collect::<Vec<DeadLetter>>())?;
        for (i, letters) in per_shard.into_iter().enumerate() {
            out.extend(letters.into_iter().map(move |d| (Some(i), d)));
        }
        Ok(out)
    }

    fn route_now(&mut self, lower: &str, values: Vec<Value>) -> Result<()> {
        let route = self.route_for(lower)?;
        let cause = self.next_cause;
        self.next_cause += 1;
        if LatencyStamps::sampled(cause) {
            self.lat_stamps.stamp(cause);
        }
        let ts = route
            .time_col
            .and_then(|i| values.get(i).and_then(Value::as_ts));
        match &route.rule {
            RouteRule::Key(cols) => {
                let target = self.shard_for(&values, cols);
                self.journal_push(target, lower, values, cause)?;
                self.routed[target].inc();
                if let Some(ts) = ts {
                    self.sent_marks.advance(target, ts);
                    for j in 0..self.shards() {
                        if j == target {
                            continue;
                        }
                        self.journal_advance(j, ts, cause)?;
                        self.sent_marks.advance(j, ts);
                    }
                }
            }
            RouteRule::Broadcast => {
                for j in 0..self.shards() {
                    self.journal_push(j, lower, values.clone(), cause)?;
                    if let Some(ts) = ts {
                        self.sent_marks.advance(j, ts);
                    }
                }
                self.broadcasts.inc();
            }
        }
        Ok(())
    }

    /// Route a whole batch of rows with one channel message per shard.
    ///
    /// Rows get the same consecutive cause indices [`ShardedEngine::push`]
    /// would assign, so merged output is identical — the difference is
    /// transport cost. When every shard reports that no active query
    /// needs the exact per-tuple watermark schedule
    /// ([`Engine::needs_per_tuple_watermarks`]), the per-row watermark
    /// broadcasts to non-owner shards are coalesced into a single
    /// trailing punctuation per shard at the batch's maximum timestamp
    /// (tagged with the batch's last cause, mirroring how per-row
    /// broadcasts reuse their push's cause). Otherwise every broadcast
    /// travels with the batch, one item per row, preserving the exact
    /// punctuation schedule.
    ///
    /// Routing errors (unknown stream, bad key column) abort before
    /// anything is sent: the batch is all-or-nothing at the router.
    pub fn push_batch(
        &mut self,
        rows: impl IntoIterator<Item = (String, Vec<Value>)>,
    ) -> Result<()> {
        if !self.reorder.is_empty() {
            // Disorder-tolerant streams need the reorder buffer's release
            // discipline row by row; batching is a transport optimisation
            // that assumes ordered input.
            for (stream, values) in rows {
                self.push(&stream, values)?;
            }
            return Ok(());
        }
        let coalesce = self.coalesce_marks.load(Ordering::Relaxed);
        let shards = self.shards();
        let mut per_shard: Vec<Vec<BatchItem>> = (0..shards).map(|_| Vec::new()).collect();
        let mut max_ts: Option<Timestamp> = None;
        let mut last_cause = 0u64;
        let mut routed = vec![0u64; shards];
        let mut broadcasts = 0u64;
        for (stream, mut values) in rows {
            let lower = stream.to_ascii_lowercase();
            let route = self.route_for(&lower)?;
            let cause = self.next_cause;
            self.next_cause += 1;
            last_cause = cause;
            if LatencyStamps::sampled(cause) {
                self.lat_stamps.stamp(cause);
            }
            let seq = cause << CAUSE_SEQ_SHIFT;
            let ts = route
                .time_col
                .and_then(|i| values.get(i).and_then(Value::as_ts));
            if let Some(t) = ts {
                max_ts = Some(max_ts.map_or(t, |m| m.max(t)));
            }
            match &route.rule {
                RouteRule::Key(cols) => {
                    let target = self.shard_for(&values, cols);
                    per_shard[target].push(BatchItem::Push {
                        stream: lower,
                        values,
                        seq: Some(seq),
                        cause,
                    });
                    routed[target] += 1;
                    if let Some(ts) = ts {
                        self.sent_marks.advance(target, ts);
                        if !coalesce {
                            for (j, items) in per_shard.iter_mut().enumerate() {
                                if j == target {
                                    continue;
                                }
                                items.push(BatchItem::Advance { ts, cause });
                                self.sent_marks.advance(j, ts);
                            }
                        }
                    }
                }
                RouteRule::Broadcast => {
                    for (j, items) in per_shard.iter_mut().enumerate() {
                        let v = if j + 1 == shards {
                            std::mem::take(&mut values)
                        } else {
                            values.clone()
                        };
                        items.push(BatchItem::Push {
                            stream: lower.clone(),
                            values: v,
                            seq: Some(seq),
                            cause,
                        });
                        if let Some(ts) = ts {
                            self.sent_marks.advance(j, ts);
                        }
                    }
                    broadcasts += 1;
                }
            }
        }
        if coalesce {
            if let Some(ts) = max_ts {
                for (j, items) in per_shard.iter_mut().enumerate() {
                    items.push(BatchItem::Advance {
                        ts,
                        cause: last_cause,
                    });
                    self.sent_marks.advance(j, ts);
                }
            }
        }
        for (j, items) in per_shard.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            // Journal the shard's whole batch before the send — routing
            // errors already aborted above, so everything journaled here
            // is definitely on its way to the worker.
            let mut hi = 0u64;
            for item in &items {
                match item {
                    BatchItem::Push {
                        stream,
                        values,
                        cause,
                        ..
                    } => {
                        self.journals[j].append(stream.as_str(), values.clone(), *cause)?;
                        hi = hi.max(*cause);
                    }
                    BatchItem::Advance { ts, cause } => {
                        self.journals[j].append(ADVANCE_STREAM, vec![Value::Ts(*ts)], *cause)?;
                        hi = hi.max(*cause);
                    }
                }
            }
            self.last_sent[j] = self.last_sent[j].max(hi);
            match self.inputs[j].send_batch(items) {
                Err(DsmsError::WorkerPanicked { .. }) => {
                    self.restart_shard(j)?;
                }
                other => other?,
            }
            self.routed[j].add(routed[j]);
        }
        self.broadcasts.add(broadcasts);
        Ok(())
    }

    /// Re-read every shard's watermark-schedule requirement and cache
    /// the coalescing decision. Runs synchronously (one exec round-trip
    /// per shard), so by the time any later `push_batch` consults the
    /// flag, all query changes from earlier exec calls are reflected.
    fn refresh_watermark_mode(&self) -> Result<()> {
        let mut coalesce = true;
        for d in &self.drivers {
            if d.exec(|e| e.needs_per_tuple_watermarks())? {
                coalesce = false;
            }
        }
        self.coalesce_marks.store(coalesce, Ordering::Relaxed);
        Ok(())
    }

    /// Global heartbeat: broadcast a punctuation to every shard (active
    /// expiration during silent periods).
    pub fn advance_to(&mut self, ts: Timestamp) -> Result<()> {
        let cause = self.next_cause;
        self.next_cause += 1;
        for j in 0..self.shards() {
            self.journal_advance(j, ts, cause)?;
            self.sent_marks.advance(j, ts);
        }
        Ok(())
    }

    /// Block until every shard has processed everything routed so far —
    /// afterwards the merge frontier covers every cause and
    /// [`ShardedEngine::take_output`] returns complete results.
    ///
    /// A shard found dead of a panic is restarted in place (checkpoint
    /// restore + journal replay) and the flush retried, up to a small
    /// bound — a shard that keeps dying is a deterministic fault and
    /// surfaces as the captured panic error.
    pub fn flush(&mut self) -> Result<()> {
        for _round in 0..=MAX_FLUSH_RESTARTS {
            let mut restarted = false;
            for i in 0..self.drivers.len() {
                match self.drivers[i].flush() {
                    Ok(()) => {}
                    Err(DsmsError::WorkerPanicked { .. }) => {
                        self.restart_shard(i)?;
                        restarted = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !restarted {
                return Ok(());
            }
        }
        Err(DsmsError::worker_panicked(format!(
            "shard kept panicking through {MAX_FLUSH_RESTARTS} restart rounds{}",
            self.last_panics
                .iter()
                .flatten()
                .last()
                .map(|d| format!(": {d}"))
                .unwrap_or_default()
        )))
    }

    /// The merge frontier: the highest cause index that is *complete* —
    /// no shard can still emit an output tagged at or below it.
    fn frontier(&self) -> u64 {
        let mut f = u64::MAX;
        for (i, ack) in self.acked.iter().enumerate() {
            let a = ack.load(Ordering::Acquire);
            // A fully drained shard (everything sent is acknowledged)
            // imposes no bound; an in-flight one bounds the frontier at
            // its acknowledgement.
            if a < self.last_sent[i] {
                f = f.min(a);
            }
        }
        f
    }

    /// Drain merged output for one slot, deterministically ordered by
    /// `(cause, shard)`. Only outputs at or below the merge frontier are
    /// released; call [`ShardedEngine::flush`] first for completeness.
    pub fn take_output(&mut self, slot: usize) -> Result<Vec<Tuple>> {
        if slot >= self.slots {
            return Err(DsmsError::unknown(format!(
                "output slot {slot} (have {})",
                self.slots
            )));
        }
        let frontier = self.frontier();
        let mut entries: Vec<(u64, usize, Tuple)> = Vec::new();
        let mut lag = 0i64;
        let mut released_hi = 0u64;
        for (shard, shared) in self.outs.iter().enumerate() {
            let mut slots = shared.lock();
            if let Some(sb) = slots.get_mut(slot) {
                while let Some((cause, _)) = sb.buf.front() {
                    if *cause > frontier {
                        break;
                    }
                    let (cause, t) = sb.buf.pop_front().expect("peeked");
                    released_hi = released_hi.max(cause);
                    entries.push((cause, shard, t));
                }
            }
            lag += slots.iter().map(|sb| sb.buf.len() as i64).sum::<i64>();
        }
        self.merge_lag.set(lag);
        // Sampled causes crossing the merge complete their end-to-end
        // latency measurement here — route time to merged release. The
        // stamp table vacates on first take, so a broadcast cause (one
        // entry per shard) is counted once.
        for (cause, _, _) in &entries {
            if let Some(d) = self.lat_stamps.take(*cause) {
                let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                self.tuple_latency.record(ns);
                self.trace
                    .record(|| TraceKind::TupleEmitted { latency_ns: ns });
            }
        }
        // Remember the highest cause handed to the consumer: a restarted
        // shard regenerates outputs above its checkpoint, and anything
        // at or below this floor has already been delivered once.
        if let Some(r) = self.released.get_mut(slot) {
            *r = (*r).max(released_hi);
        }
        // Stable by (cause, shard): per-shard drain order (the shard's
        // own emission order) breaks ties within one cause and shard.
        entries.sort_by_key(|(cause, shard, _)| (*cause, *shard));
        Ok(entries.into_iter().map(|(_, _, t)| t).collect())
    }

    /// Checkpoint every shard: flush, serialize each engine's state on
    /// its worker thread ([`Engine::checkpoint`]), and truncate the
    /// journal prefix the checkpoint now covers. After this returns,
    /// [`ShardedEngine::restart_shard`] recovers any shard from the
    /// stored bytes plus the (bounded) journal tail.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.flush()?;
        for i in 0..self.drivers.len() {
            let at = self.last_sent[i];
            let bytes = self.drivers[i].exec(|e| e.checkpoint().map(|c| c.to_bytes()))??;
            self.ckpts[i] = Some((at, bytes));
            self.journals[i].truncate_through(at);
        }
        self.checkpoints.inc();
        let bytes: u64 = self
            .ckpts
            .iter()
            .flatten()
            .map(|(_, b)| b.len() as u64)
            .sum();
        self.trace.record(|| TraceKind::Checkpoint { bytes });
        Ok(())
    }

    /// Rebuild one shard in place: fresh engine via the stored setup
    /// closure, restore of the last checkpoint, replay of the journal
    /// tail, and a merge-buffer splice that keeps delivery exactly-once
    /// (outputs already released to the consumer are not regenerated
    /// into the merge; outputs not yet released are). Works on a dead
    /// (panicked) shard — the usual caller — and on a healthy one.
    ///
    /// Returns the number of journal entries replayed.
    ///
    /// Two recovery limits are typed errors rather than silent
    /// divergence: queries registered after build
    /// ([`ShardedEngine::exec_with_outputs`]) are not part of the setup
    /// closure and cannot be rebuilt, and [`ShardedEngine::exec_all`]
    /// closures are not journaled, so their effects (UDF registration
    /// aside — that belongs in setup) are lost on restart.
    pub fn restart_shard(&mut self, shard: usize) -> Result<u64> {
        if shard >= self.shards() {
            return Err(DsmsError::unknown(format!(
                "shard {shard} (have {})",
                self.shards()
            )));
        }
        if self.slots > self.build_slots {
            return Err(DsmsError::ckpt(format!(
                "cannot restart shard {shard}: {} merge slot(s) were registered after build \
                 and are not reproducible from the setup closure",
                self.slots - self.build_slots
            )));
        }
        self.restarts.inc();
        if let Some(detail) = self.drivers[shard].panic_detail() {
            self.last_panics[shard] = Some(detail);
        }
        let ckpt_cause = self.ckpts[shard].as_ref().map_or(0, |(c, _)| *c);
        // Rebuild from scratch, then restore. The setup closure recreates
        // streams, queries and UDFs; the checkpoint refills their state.
        let mut engine = Engine::new();
        let collectors = (self.setup)(&mut engine)?;
        if collectors.len() != self.build_slots {
            return Err(DsmsError::plan(format!(
                "setup returned {} collectors on restart of shard {shard}, expected {}",
                collectors.len(),
                self.build_slots
            )));
        }
        if let Some((_, bytes)) = &self.ckpts[shard] {
            engine.restore(&EngineCheckpoint::from_bytes(bytes)?)?;
        }
        let now0 = engine.now().as_micros();
        let tap = Self::make_tap(
            self.outs[shard].clone(),
            self.acked[shard].clone(),
            self.now_us[shard].clone(),
        );
        let driver = EngineDriver::spawn_with_tap(engine, self.queue, Some(tap))?;
        self.inputs[shard] = driver.input();
        self.drivers.push(driver);
        let old = self.drivers.swap_remove(shard);
        // Join the old worker before touching the shared merge buffers:
        // a panicked worker is already gone, a healthy one drains its
        // queue into the *old* collectors (discarded with the old
        // engine) and then stops. Its error, if any, was already
        // captured in `last_panics`.
        let _ = old.stop();
        {
            // Drop buffered outputs above the checkpoint: replay will
            // regenerate them. Outputs at or below it survive — the
            // checkpointed engine will not produce them again.
            let mut slots = self.outs[shard].lock();
            for (sb, collector) in slots.iter_mut().zip(collectors) {
                sb.collector = collector;
                sb.buf.retain(|(cause, _)| *cause <= ckpt_cause);
            }
        }
        self.acked[shard].store(ckpt_cause, Ordering::Release);
        self.now_us[shard].store(now0, Ordering::Relaxed);
        // Replay the journal tail with the original cause indices, so
        // `(ts, seq)` order keys — and therefore every detector
        // tie-break — match the uncrashed run exactly.
        let mut replayed = 0u64;
        for entry in self.journals[shard].tail_after(ckpt_cause) {
            let cause = entry.seq;
            if entry.stream == ADVANCE_STREAM {
                let ts = entry.values.first().and_then(Value::as_ts).ok_or_else(|| {
                    DsmsError::ckpt("journaled punctuation is missing its timestamp")
                })?;
                self.inputs[shard].advance_routed(ts, cause)?;
            } else {
                self.inputs[shard].push_routed(
                    &entry.stream,
                    entry.values.clone(),
                    Some(cause << CAUSE_SEQ_SHIFT),
                    cause,
                )?;
            }
            replayed += 1;
        }
        self.replayed.add(replayed);
        self.drivers[shard].flush()?;
        {
            // Exactly-once splice: regenerated outputs whose cause the
            // consumer already drained (above the checkpoint, at or
            // below the released floor) are duplicates — drop them.
            let mut slots = self.outs[shard].lock();
            for (idx, sb) in slots.iter_mut().enumerate() {
                let floor = self.released.get(idx).copied().unwrap_or(0);
                sb.buf
                    .retain(|(cause, _)| !(*cause > ckpt_cause && *cause <= floor));
            }
        }
        self.trace.record(|| TraceKind::ShardRestart {
            shard: shard as u32,
            replayed,
        });
        Ok(replayed)
    }

    /// Restart every shard whose worker died of a panic; returns the
    /// indices restarted (empty when all workers are healthy).
    pub fn recover(&mut self) -> Result<Vec<usize>> {
        let mut restarted = Vec::new();
        for i in 0..self.drivers.len() {
            if self.drivers[i].panic_detail().is_some() {
                self.restart_shard(i)?;
                restarted.push(i);
            }
        }
        Ok(restarted)
    }

    /// Queue `f` against one shard's engine without waiting for a
    /// result — the fault-injection hook. A panic inside the closure
    /// kills the worker exactly like an operator bug would; the next
    /// flush (or [`ShardedEngine::recover`]) restarts the shard from its
    /// checkpoint and journal.
    pub fn inject_fault(
        &self,
        shard: usize,
        f: impl FnOnce(&mut Engine) + Send + 'static,
    ) -> Result<()> {
        let input = self
            .inputs
            .get(shard)
            .ok_or_else(|| DsmsError::unknown(format!("shard {shard} (have {})", self.shards())))?;
        input.exec_detached(f)
    }

    /// The captured panic message of `shard`'s *current* worker (`None`
    /// while healthy). After a restart the new worker reports `None`;
    /// the pre-restart message lives on in [`ShardedEngine::recovery_stats`].
    pub fn shard_panic(&self, shard: usize) -> Option<String> {
        self.drivers.get(shard).and_then(|d| d.panic_detail())
    }

    /// Recovery counters and per-shard journal/checkpoint/panic posture
    /// (`SHOW RECOVERY` in the REPL, assertions in the crash tests).
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            checkpoints: self.checkpoints.get(),
            restarts: self.restarts.get(),
            replayed_tuples: self.replayed.get(),
            shards: (0..self.shards())
                .map(|i| ShardRecovery {
                    shard: i,
                    journal_len: self.journals[i].len(),
                    journal_appended: self.journals[i].appended(),
                    checkpoint_cause: self.ckpts[i].as_ref().map(|(c, _)| *c),
                    last_panic: self.last_panics[i]
                        .clone()
                        .or_else(|| self.drivers[i].panic_detail()),
                })
                .collect(),
        }
    }

    /// Enable or disable flight-recorder tracing everywhere: the
    /// router's own recorder and every shard engine's.
    pub fn set_tracing(&self, on: bool) -> Result<()> {
        self.trace.set_enabled(on);
        self.exec_all(move |e| e.set_tracing(on))?;
        Ok(())
    }

    /// Whether the router is currently capturing trace events.
    pub fn tracing(&self) -> bool {
        self.trace.enabled()
    }

    /// Opt every shard engine into (or out of) columnar batch
    /// execution — see [`Engine::set_columnar`]. Routing itself is
    /// unaffected: shards receive row batches and convert at their own
    /// dispatch point, so the row/columnar choice stays a per-engine
    /// execution detail.
    pub fn set_columnar(&self, on: bool) -> Result<()> {
        self.exec_all(move |e| e.set_columnar(on))?;
        Ok(())
    }

    /// Drain every shard's flight recorder plus the router's own events
    /// into one wall-clock-ordered timeline. Shard events carry their
    /// shard index; router events (checkpoints, restarts, merged
    /// releases) are tagged one past the highest shard so they render as
    /// their own track in the chrome export.
    pub fn take_trace(&self) -> Result<Vec<TraceEvent>> {
        let mut parts: Vec<(u32, Vec<TraceEvent>)> = self
            .exec_all(|e| e.take_trace())?
            .into_iter()
            .enumerate()
            .map(|(i, events)| (i as u32, events))
            .collect();
        parts.push((self.shards() as u32, self.trace.drain()));
        Ok(FlightRecorder::merge(parts))
    }

    /// Run `f` on every shard engine (on its worker thread, serialized
    /// with routed commands) and collect the results in shard order.
    pub fn exec_all<R, F>(&self, f: F) -> Result<Vec<R>>
    where
        R: Send + 'static,
        F: Fn(&mut Engine) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut results = Vec::with_capacity(self.shards());
        for d in &self.drivers {
            let f = f.clone();
            results.push(d.exec(move |e| f(e))?);
        }
        // The closure may have registered or dropped queries.
        self.refresh_watermark_mode()?;
        Ok(results)
    }

    /// Run `f` on every shard engine and register the collectors it
    /// returns as new merge slots (the registration happens on the
    /// worker thread, so no output can slip past the cause tagging).
    /// Returns the per-shard results and the new slot indices. Every
    /// shard must return the same number of collectors.
    pub fn exec_with_outputs<R, F>(&mut self, f: F) -> Result<(Vec<R>, Vec<usize>)>
    where
        R: Send + 'static,
        F: Fn(&mut Engine) -> Result<(R, Vec<Collector>)> + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut results = Vec::with_capacity(self.shards());
        let mut added = None;
        for (i, d) in self.drivers.iter().enumerate() {
            let f = f.clone();
            let shared = self.outs[i].clone();
            let res: Result<(R, usize)> = d.exec(move |e| {
                let (r, collectors) = f(e)?;
                let mut slots = shared.lock();
                let n = collectors.len();
                for collector in collectors {
                    slots.push(SlotBuf {
                        collector,
                        buf: VecDeque::new(),
                    });
                }
                Ok((r, n))
            })?;
            let (r, n) = res?;
            match added {
                None => added = Some(n),
                Some(m) if m == n => {}
                Some(m) => {
                    return Err(DsmsError::plan(format!(
                        "shard {i} registered {n} collectors, shard 0 registered {m}"
                    )))
                }
            }
            results.push(r);
        }
        let n = added.unwrap_or(0);
        let first = self.slots;
        self.slots += n;
        self.released.resize(self.slots, 0);
        // The closure registered queries; the new ones may demand the
        // exact per-tuple watermark schedule.
        self.refresh_watermark_mode()?;
        Ok((results, (first..first + n).collect()))
    }

    /// Outputs currently buffered for `slot` across all shards (drained
    /// collectors awaiting the merge frontier). Approximate while
    /// workers are busy.
    pub fn buffered(&self, slot: usize) -> usize {
        self.outs
            .iter()
            .map(|shared| shared.lock().get(slot).map_or(0, |sb| sb.buf.len()))
            .sum()
    }

    /// Minimum engine stream-time across shards — the only watermark the
    /// merged output may trust.
    pub fn low_watermark(&self) -> Timestamp {
        self.now_us
            .iter()
            .map(|n| Timestamp::from_micros(n.load(Ordering::Relaxed)))
            .min()
            .unwrap_or_default()
    }

    /// The router-side watermark aggregator (what has been *sent*; the
    /// engines may still be catching up).
    pub fn sent_watermarks(&self) -> &WatermarkAggregator {
        &self.sent_marks
    }

    /// Live per-shard stats for `SHOW SHARDS` and the bench harness.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards())
            .map(|i| ShardStats {
                shard: i,
                routed: self.routed[i].get(),
                queue_depth: self.drivers[i]
                    .metrics()
                    .gauge("eslev_driver_queue_depth", &[])
                    .unwrap_or(0),
                processed_cause: self.acked[i].load(Ordering::Acquire),
                watermark: Timestamp::from_micros(self.now_us[i].load(Ordering::Relaxed)),
                sent_watermark: self.sent_marks.mark(i),
            })
            .collect()
    }

    /// Resolved routes, sorted by stream name, rendered for display
    /// (`key(tag_id)` / `broadcast`). Routes resolve on first push, so
    /// streams never pushed do not appear.
    pub fn routing(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = self
            .routes
            .iter()
            .map(|(stream, r)| {
                let desc = match &r.rule {
                    RouteRule::Key(cols) => {
                        let names: Vec<String> = cols.iter().map(|c| format!("#{c}")).collect();
                        format!("key({})", names.join(","))
                    }
                    RouteRule::Broadcast => "broadcast".to_string(),
                };
                (stream.clone(), desc)
            })
            .collect();
        rows.sort();
        rows
    }

    /// Router metrics plus every shard's driver/engine snapshot, each
    /// sample labelled with its shard index.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.snapshot();
        let lat = self.tuple_latency.snapshot();
        if lat.count > 0 {
            for (q, name) in [
                (0.5, "eslev_tuple_latency_ns_p50"),
                (0.9, "eslev_tuple_latency_ns_p90"),
                (0.99, "eslev_tuple_latency_ns_p99"),
            ] {
                snap.push(name, &[], MetricValue::Gauge(lat.quantile(q) as i64));
            }
        }
        // Router-level watermark lag: what has been *sent* ahead of the
        // slowest shard's stream-time (ms).
        let lag_ms = self
            .sent_marks
            .high_water()
            .as_micros()
            .saturating_sub(self.low_watermark().as_micros())
            / 1000;
        snap.push(
            "eslev_watermark_lag_ms",
            &[],
            MetricValue::Gauge(lag_ms as i64),
        );
        for (name, r) in &self.reorder {
            snap.push(
                "eslev_reorder_depth",
                &[("stream", name.as_str())],
                MetricValue::Gauge(r.pending.len() as i64),
            );
        }
        for (i, d) in self.drivers.iter().enumerate() {
            snap.absorb_labeled(d.metrics(), "shard", &i.to_string());
        }
        snap
    }

    /// Stop every worker and recover the shard engines in index order.
    /// The first worker error wins, but all workers are stopped either
    /// way.
    pub fn stop(self) -> Result<Vec<Engine>> {
        let mut engines = Vec::with_capacity(self.drivers.len());
        let mut first_err = None;
        for d in self.drivers {
            match d.stop() {
                Ok(e) => engines.push(e),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(engines),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::Select;
    use crate::schema::Schema;

    fn reading(secs: u64, tag: &str) -> Vec<Value> {
        vec![
            Value::str("r1"),
            Value::str(tag),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    }

    fn passthrough_setup(e: &mut Engine) -> Result<Vec<Collector>> {
        e.create_stream(Schema::readings("readings"))?;
        let (_, out) = e.register_collected(
            "all",
            vec!["readings"],
            Box::new(Select::new(Expr::lit(true))),
        )?;
        Ok(vec![out])
    }

    #[test]
    fn zero_shards_is_an_error() {
        let err = ShardedEngine::build(0, 8, ShardSpec::new(), passthrough_setup)
            .err()
            .expect("zero shards rejected");
        assert!(err.to_string().contains("at least 1 shard"));
    }

    #[test]
    fn epc_column_auto_detected() {
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), passthrough_setup).unwrap();
        se.push("readings", reading(1, "t0")).unwrap();
        se.flush().unwrap();
        // Schema::readings keys on tag_id (column 1).
        assert_eq!(
            se.routing(),
            vec![("readings".to_string(), "key(#1)".to_string())]
        );
        se.stop().unwrap();
    }

    #[test]
    fn merged_output_matches_single_engine_order() {
        // Reference: one engine, rows in push order.
        let mut single = Engine::new();
        let single_out = passthrough_setup(&mut single).unwrap().remove(0);
        let rows: Vec<Vec<Value>> = (0..64)
            .map(|i| reading(i, &format!("tag{}", i % 7)))
            .collect();
        for r in &rows {
            single.push("readings", r.clone()).unwrap();
        }
        let want: Vec<(Vec<Value>, Timestamp)> = single_out
            .take()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        for shards in [1usize, 2, 3, 4] {
            let mut se =
                ShardedEngine::build(shards, 16, ShardSpec::new(), passthrough_setup).unwrap();
            for r in &rows {
                se.push("readings", r.clone()).unwrap();
            }
            se.flush().unwrap();
            let got: Vec<(Vec<Value>, Timestamp)> = se
                .take_output(0)
                .unwrap()
                .into_iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            assert_eq!(
                got, want,
                "merge must reproduce single-engine order at N={shards}"
            );
            se.stop().unwrap();
        }
    }

    #[test]
    fn tracing_merges_shard_timelines_in_time_order() {
        let mut se = ShardedEngine::build(2, 16, ShardSpec::new(), passthrough_setup).unwrap();
        assert!(!se.tracing());
        se.set_tracing(true).unwrap();
        assert!(se.tracing());
        for i in 0..130 {
            se.push("readings", reading(i, &format!("t{}", i % 5)))
                .unwrap();
        }
        se.flush().unwrap();
        se.checkpoint().unwrap();
        let _ = se.take_output(0).unwrap();
        let events = se.take_trace().unwrap();
        assert!(!events.is_empty());
        assert!(
            events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "merged timeline must be wall-clock ordered"
        );
        assert!(
            events.iter().all(|e| e.shard.is_some()),
            "every merged event carries a source track"
        );
        // Shard engines contributed admissions; the router contributed
        // its checkpoint (tagged one past the highest shard) and the
        // sampled merge-release latencies.
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::TupleAdmitted { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Checkpoint { .. }) && e.shard == Some(2)));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::TupleEmitted { .. })));
        // Causes 64 and 128 were latency-sampled at the router.
        let snap = se.metrics_snapshot();
        assert!(snap.histogram("eslev_tuple_latency_ns", &[]).unwrap().count >= 2);
        assert!(snap.gauge("eslev_tuple_latency_ns_p50", &[]).is_some());
        assert!(snap.gauge("eslev_tuple_latency_ns_p99", &[]).is_some());
        assert!(snap.gauge("eslev_watermark_lag_ms", &[]).is_some());
        // Drained: a second take starts empty.
        assert!(se.take_trace().unwrap().is_empty());
        se.stop().unwrap();
    }

    #[test]
    fn broadcast_replicates_to_every_shard() {
        let spec = ShardSpec::new().broadcast("readings");
        let mut se = ShardedEngine::build(3, 8, spec, passthrough_setup).unwrap();
        for i in 0..10 {
            se.push("readings", reading(i, &format!("t{i}"))).unwrap();
        }
        se.flush().unwrap();
        let pushed = se
            .exec_all(|e| e.stream_pushed("readings").unwrap())
            .unwrap();
        assert_eq!(pushed, vec![10, 10, 10]);
        // The merge then carries 3 replicas per cause, ordered by shard.
        let merged = se.take_output(0).unwrap();
        assert_eq!(merged.len(), 30);
        se.stop().unwrap();
    }

    #[test]
    fn watermark_broadcast_reaches_idle_shards() {
        let mut se = ShardedEngine::build(4, 8, ShardSpec::new(), passthrough_setup).unwrap();
        // All rows share one tag, so one shard owns every tuple — the
        // rest only ever see broadcast watermarks.
        for i in 0..20 {
            se.push("readings", reading(i, "lonely")).unwrap();
        }
        se.flush().unwrap();
        assert_eq!(se.low_watermark(), Timestamp::from_secs(19));
        for s in se.shard_stats() {
            assert_eq!(s.watermark, Timestamp::from_secs(19));
            assert_eq!(s.queue_depth, 0);
        }
        se.stop().unwrap();
    }

    #[test]
    fn take_output_withholds_unacked_causes() {
        let mut agg = WatermarkAggregator::new(3);
        agg.advance(0, Timestamp::from_secs(5));
        agg.advance(1, Timestamp::from_secs(3));
        assert_eq!(
            agg.low_water(),
            Timestamp::default(),
            "shard 2 never advanced"
        );
        agg.advance(2, Timestamp::from_secs(9));
        assert_eq!(agg.low_water(), Timestamp::from_secs(3));
        // Regressions are no-ops.
        agg.advance(1, Timestamp::from_secs(1));
        assert_eq!(agg.mark(1), Timestamp::from_secs(3));
    }

    #[test]
    fn queries_registered_after_build_merge_too() {
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), |e| {
            e.create_stream(Schema::readings("readings"))?;
            Ok(vec![])
        })
        .unwrap();
        let (_, slots) = se
            .exec_with_outputs(|e| {
                let (_, out) = e.register_collected(
                    "late",
                    vec!["readings"],
                    Box::new(Select::new(Expr::lit(true))),
                )?;
                Ok(((), vec![out]))
            })
            .unwrap();
        assert_eq!(slots, vec![0]);
        for i in 0..8 {
            se.push("readings", reading(i, &format!("t{i}"))).unwrap();
        }
        se.flush().unwrap();
        assert_eq!(se.take_output(0).unwrap().len(), 8);
        se.stop().unwrap();
    }

    #[test]
    fn push_batch_matches_per_push_merge() {
        let rows: Vec<(String, Vec<Value>)> = (0..48)
            .map(|i| ("readings".to_string(), reading(i, &format!("tag{}", i % 5))))
            .collect();
        for shards in [1usize, 2, 3] {
            let mut per_push =
                ShardedEngine::build(shards, 64, ShardSpec::new(), passthrough_setup).unwrap();
            for (s, v) in &rows {
                per_push.push(s, v.clone()).unwrap();
            }
            per_push.flush().unwrap();
            let want: Vec<(Vec<Value>, Timestamp)> = per_push
                .take_output(0)
                .unwrap()
                .into_iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            per_push.stop().unwrap();

            let mut batched =
                ShardedEngine::build(shards, 64, ShardSpec::new(), passthrough_setup).unwrap();
            assert!(
                batched.coalesce_marks.load(Ordering::Relaxed),
                "passthrough queries must allow coalesced watermarks"
            );
            for chunk in rows.chunks(7) {
                batched.push_batch(chunk.to_vec()).unwrap();
            }
            batched.flush().unwrap();
            let got: Vec<(Vec<Value>, Timestamp)> = batched
                .take_output(0)
                .unwrap()
                .into_iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            assert_eq!(got, want, "batched routing diverged at N={shards}");
            assert_eq!(
                batched.low_watermark(),
                Timestamp::from_secs(47),
                "trailing punctuation must reach every shard"
            );
            batched.stop().unwrap();
        }
    }

    #[test]
    fn sensitive_query_disables_coalescing() {
        // A query whose operator emits on punctuation forces the exact
        // per-tuple watermark schedule onto the batch path.
        struct OnPunct;
        impl crate::ops::Operator for OnPunct {
            fn on_tuple(
                &mut self,
                _port: usize,
                _t: &Tuple,
                _out: &mut Vec<Tuple>,
            ) -> crate::error::Result<()> {
                Ok(())
            }
            fn name(&self) -> &str {
                "on_punct"
            }
        }
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), |e| {
            e.create_stream(Schema::readings("readings"))?;
            let (_, out) = e.register_collected("p", vec!["readings"], Box::new(OnPunct))?;
            Ok(vec![out])
        })
        .unwrap();
        assert!(
            !se.coalesce_marks.load(Ordering::Relaxed),
            "default-sensitive operator must force per-tuple watermarks"
        );
        se.push_batch(vec![
            ("readings".to_string(), reading(1, "a")),
            ("readings".to_string(), reading(2, "b")),
        ])
        .unwrap();
        se.flush().unwrap();
        // Every shard still observes every watermark, one per row.
        for s in se.shard_stats() {
            assert_eq!(s.watermark, Timestamp::from_secs(2));
        }
        se.stop().unwrap();
    }

    #[test]
    fn exec_refreshes_watermark_mode() {
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), |e| {
            e.create_stream(Schema::readings("readings"))?;
            Ok(vec![])
        })
        .unwrap();
        assert!(se.coalesce_marks.load(Ordering::Relaxed));
        // Registering a join (two ports) after build must flip the flag:
        // cross-stream interleaving depends on the watermark schedule.
        se.exec_with_outputs(|e| {
            e.create_stream(Schema::readings("other"))?;
            let (_, out) = e.register_collected(
                "j",
                vec!["readings", "other"],
                Box::new(crate::ops::BinaryJoin::new(
                    crate::time::Duration::from_secs(10),
                    Expr::eq(Expr::qcol(0, 1), Expr::qcol(1, 1)),
                )),
            )?;
            Ok(((), vec![out]))
        })
        .unwrap();
        assert!(
            !se.coalesce_marks.load(Ordering::Relaxed),
            "multi-port query must disable coalescing"
        );
        se.stop().unwrap();
    }

    /// Setup with real per-key state: dedup over (reader, tag) with a
    /// 5 s window, so a restart that loses state emits extra rows and a
    /// restart that restores it matches the reference exactly.
    fn dedup_setup(e: &mut Engine) -> Result<Vec<Collector>> {
        e.create_stream(Schema::readings("readings"))?;
        let (_, out) = e.register_collected(
            "dedup",
            vec!["readings"],
            Box::new(crate::ops::Dedup::new(
                vec![Expr::col(0), Expr::col(1)],
                crate::time::Duration::from_secs(5),
            )),
        )?;
        Ok(vec![out])
    }

    /// Duplicate-heavy feed: every tag re-read within the window.
    fn dedup_feed(rows: usize) -> Vec<Vec<Value>> {
        (0..rows)
            .map(|i| {
                let tag = format!("tag{}", i % 6);
                let mut v = reading(i as u64, &tag);
                if i % 3 != 0 {
                    // Re-read of the previous second's tag: a duplicate
                    // whenever that tag appeared within 5 s.
                    v = reading(i as u64, &format!("tag{}", (i.max(1) - 1) % 6));
                }
                v
            })
            .collect()
    }

    fn run_reference(rows: &[Vec<Value>]) -> Vec<(Vec<Value>, Timestamp)> {
        let mut single = Engine::new();
        let out = dedup_setup(&mut single).unwrap().remove(0);
        for r in rows {
            single.push("readings", r.clone()).unwrap();
        }
        out.take()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect()
    }

    /// Kill-and-recover differential: checkpoint mid-feed, drain some
    /// output, crash a shard, keep feeding (the router restarts it in
    /// place), and the concatenated output must equal the uncrashed
    /// single-engine run — with the original panic message and the
    /// restart counter surfaced in the recovery stats.
    #[test]
    fn crashed_shard_restarts_from_checkpoint_and_replays() {
        let rows = dedup_feed(60);
        let want = run_reference(&rows);
        assert!(!want.is_empty());
        for shards in [2usize, 4] {
            let mut se = ShardedEngine::build(shards, 64, ShardSpec::new(), dedup_setup).unwrap();
            let mut got = Vec::new();
            for r in &rows[..20] {
                se.push("readings", r.clone()).unwrap();
            }
            se.checkpoint().unwrap();
            for r in &rows[20..40] {
                se.push("readings", r.clone()).unwrap();
            }
            se.flush().unwrap();
            got.extend(se.take_output(0).unwrap());
            // Crash shard 0 between two pushes; the next flush restarts
            // it from the checkpoint and replays causes 21..40 plus
            // whatever lands meanwhile.
            se.inject_fault(0, |_| panic!("injected: dedup state corrupt"))
                .unwrap();
            for r in &rows[40..] {
                se.push("readings", r.clone()).unwrap();
            }
            se.flush().unwrap();
            got.extend(se.take_output(0).unwrap());
            let stats = se.recovery_stats();
            assert!(
                stats.restarts >= 1,
                "N={shards}: restart counter must increment"
            );
            assert!(stats.replayed_tuples > 0, "N={shards}: replay must run");
            assert_eq!(stats.checkpoints, 1);
            assert!(
                stats.shards[0]
                    .last_panic
                    .as_deref()
                    .is_some_and(|d| d.contains("dedup state corrupt")),
                "N={shards}: original panic message must survive the restart"
            );
            assert_eq!(se.shard_panic(0), None, "restarted worker is healthy");
            let got: Vec<(Vec<Value>, Timestamp)> = got
                .into_iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            assert_eq!(
                got, want,
                "N={shards}: kill-and-recover must equal the uncrashed run"
            );
            se.stop().unwrap();
        }
    }

    /// With no checkpoint ever taken, recovery is pure journal replay
    /// from cause zero.
    #[test]
    fn journal_only_recovery_without_checkpoint() {
        let rows = dedup_feed(30);
        let want = run_reference(&rows);
        let mut se = ShardedEngine::build(3, 64, ShardSpec::new(), dedup_setup).unwrap();
        for r in &rows {
            se.push("readings", r.clone()).unwrap();
        }
        se.inject_fault(1, |_| panic!("injected: mid-air")).unwrap();
        let restarted = {
            se.flush().unwrap();
            // flush() already restarted it; recover() then finds all
            // workers healthy.
            se.recover().unwrap()
        };
        assert!(restarted.is_empty(), "flush already recovered the shard");
        let stats = se.recovery_stats();
        assert_eq!(stats.checkpoints, 0);
        assert!(stats.restarts >= 1);
        assert!(stats.shards[1].checkpoint_cause.is_none());
        let got: Vec<(Vec<Value>, Timestamp)> = se
            .take_output(0)
            .unwrap()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        assert_eq!(got, want, "journal-only replay must equal uncrashed run");
        se.stop().unwrap();
    }

    /// Checkpointing truncates each shard's journal prefix, keeping the
    /// replay tail bounded across cycles.
    #[test]
    fn checkpoint_truncates_journal_prefix() {
        let mut se = ShardedEngine::build(2, 64, ShardSpec::new(), passthrough_setup).unwrap();
        for cycle in 0..5u64 {
            for i in 0..20 {
                se.push("readings", reading(cycle * 20 + i, &format!("t{i}")))
                    .unwrap();
            }
            se.checkpoint().unwrap();
            for s in &se.recovery_stats().shards {
                assert_eq!(
                    s.journal_len, 0,
                    "cycle {cycle}: checkpoint must cover the whole journal"
                );
            }
        }
        let stats = se.recovery_stats();
        assert_eq!(stats.checkpoints, 5);
        // Every cause was journaled once per shard it was sent to, then
        // truncated away.
        assert!(stats.shards.iter().all(|s| s.journal_appended >= 100));
        se.stop().unwrap();
    }

    /// Slots registered after build are not reproducible from the setup
    /// closure — restart must refuse rather than silently diverge.
    #[test]
    fn restart_refuses_post_build_slots() {
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), passthrough_setup).unwrap();
        se.exec_with_outputs(|e| {
            let (_, out) = e.register_collected(
                "late",
                vec!["readings"],
                Box::new(Select::new(Expr::lit(true))),
            )?;
            Ok(((), vec![out]))
        })
        .unwrap();
        let err = se.restart_shard(0).unwrap_err();
        assert!(
            err.to_string().contains("registered after build"),
            "typed refusal, got: {err}"
        );
        se.stop().unwrap();
    }

    /// A healthy shard can be restarted too (rolling restart): output
    /// still matches and nothing is duplicated or lost.
    #[test]
    fn rolling_restart_of_healthy_shard() {
        let rows = dedup_feed(40);
        let want = run_reference(&rows);
        let mut se = ShardedEngine::build(2, 64, ShardSpec::new(), dedup_setup).unwrap();
        for r in &rows[..25] {
            se.push("readings", r.clone()).unwrap();
        }
        se.checkpoint().unwrap();
        let replayed = se.restart_shard(0).unwrap();
        assert_eq!(replayed, 0, "checkpoint covers everything sent so far");
        for r in &rows[25..] {
            se.push("readings", r.clone()).unwrap();
        }
        se.flush().unwrap();
        let got: Vec<(Vec<Value>, Timestamp)> = se
            .take_output(0)
            .unwrap()
            .into_iter()
            .map(|t| (t.values().to_vec(), t.ts()))
            .collect();
        assert_eq!(got, want);
        se.stop().unwrap();
    }

    #[test]
    fn metrics_carry_shard_labels() {
        let mut se = ShardedEngine::build(2, 8, ShardSpec::new(), passthrough_setup).unwrap();
        for i in 0..12 {
            se.push("readings", reading(i, &format!("t{i}"))).unwrap();
        }
        se.flush().unwrap();
        let m = se.metrics_snapshot();
        let total: u64 = (0..2)
            .filter_map(|i| m.counter("eslev_shard_tuples_total", &[("shard", &i.to_string())]))
            .sum();
        assert_eq!(total, 12, "every tuple routed to exactly one shard");
        for i in ["0", "1"] {
            assert!(
                m.counter("eslev_driver_commands_total", &[("shard", i)])
                    .is_some(),
                "per-shard driver metrics must be labelled"
            );
        }
        se.stop().unwrap();
    }
}
