//! Stream-to-table context retrieval (§2.1 of the paper).
//!
//! RFID tags carry only an EPC; business meaning (product, owner,
//! authorization, ...) lives in database tables. A context-lookup
//! continuous query enriches each arriving reading with the matching
//! table row, producing a wider stream for downstream queries.

use crate::error::Result;
use crate::expr::Expr;
use crate::ops::Operator;
use crate::table::TableRef;
use crate::tuple::Tuple;
use crate::value::Value;

/// How a reading with no matching context row is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissPolicy {
    /// Drop the reading (inner-join semantics).
    Drop,
    /// Emit with NULLs in the context columns (left-outer semantics).
    NullPad,
}

/// Enriches stream tuples with columns from a table row found by key.
///
/// For each input tuple, evaluates `key` and looks up `table` rows where
/// `table_key_column == key`; emits `input ++ row` per match (multiple
/// matches fan out).
pub struct TableLookup {
    table: TableRef,
    key: Expr,
    table_key_column: String,
    miss: MissPolicy,
}

impl TableLookup {
    /// Build the lookup; create an index on `table_key_column` for O(1)
    /// probes (done here so callers can't forget).
    pub fn new(
        table: TableRef,
        key: Expr,
        table_key_column: &str,
        miss: MissPolicy,
    ) -> Result<TableLookup> {
        table.create_index(table_key_column)?;
        Ok(TableLookup {
            table,
            key,
            table_key_column: table_key_column.to_string(),
            miss,
        })
    }
}

impl Operator for TableLookup {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let key = self.key.eval(&[t])?;
        let rows = self.table.lookup(&self.table_key_column, &key)?;
        if rows.is_empty() {
            if self.miss == MissPolicy::NullPad {
                let mut vals = t.values().to_vec();
                vals.extend(std::iter::repeat_n(
                    Value::Null,
                    self.table.schema().arity(),
                ));
                out.push(Tuple::new(vals, t.ts(), t.seq()));
            }
            return Ok(());
        }
        for row in rows {
            let mut vals = Vec::with_capacity(t.arity() + row.arity());
            vals.extend_from_slice(t.values());
            vals.extend_from_slice(row.values());
            out.push(Tuple::new(vals, t.ts(), t.seq()));
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "table-lookup"
    }
}

/// Stream-to-table `[NOT] EXISTS` (Example 2's location tracking).
///
/// For each input tuple, checks whether any table row satisfies the
/// correlated predicate (evaluated over the row `[stream tuple, table
/// row]`); emits the input tuple when the check matches the polarity.
/// Tables are current-state relations, so the check happens at arrival
/// time — no windowing is involved.
pub struct TableExists {
    table: TableRef,
    /// Predicate over `[outer, table_row]`.
    pred: Expr,
    negated: bool,
    /// Fast path: `(table_column, outer key expr)` equality lifted out of
    /// the predicate so the probe uses a hash index instead of a scan.
    index_probe: Option<(String, Expr)>,
}

impl TableExists {
    /// Build the operator. When `index_probe` is provided, an index is
    /// created on the table column and only rows with
    /// `table.column == key(outer)` are tested against `pred`.
    pub fn new(
        table: TableRef,
        pred: Expr,
        negated: bool,
        index_probe: Option<(String, Expr)>,
    ) -> Result<TableExists> {
        if let Some((col, _)) = &index_probe {
            table.create_index(col)?;
        }
        Ok(TableExists {
            table,
            pred,
            negated,
            index_probe,
        })
    }
}

impl Operator for TableExists {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let rows = match &self.index_probe {
            Some((col, key)) => self.table.lookup(col, &key.eval(&[t])?)?,
            None => self.table.scan(),
        };
        let mut found = false;
        for row in &rows {
            if self.pred.eval_bool(&[t, row])? {
                found = true;
                break;
            }
        }
        if found != self.negated {
            out.push(t.clone());
        }
        Ok(())
    }

    fn name(&self) -> &str {
        if self.negated {
            "table-not-exists"
        } else {
            "table-exists"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::time::Timestamp;
    use crate::value::ValueType;
    use std::sync::Arc;

    fn context_table() -> TableRef {
        let t = Table::new(Arc::new(
            Schema::new(
                "tag_context",
                vec![
                    ("tagid", ValueType::Str),
                    ("product", ValueType::Str),
                    ("authorized", ValueType::Bool),
                ],
                None,
            )
            .unwrap(),
        ));
        t.insert(vec![
            Value::str("t1"),
            Value::str("pump"),
            Value::Bool(true),
        ])
        .unwrap();
        t.insert(vec![
            Value::str("t2"),
            Value::str("valve"),
            Value::Bool(false),
        ])
        .unwrap();
        t
    }

    fn reading(tag: &str) -> Tuple {
        Tuple::new(vec![Value::str(tag)], Timestamp::from_secs(1), 0)
    }

    #[test]
    fn enriches_with_context() {
        let mut op =
            TableLookup::new(context_table(), Expr::col(0), "tagid", MissPolicy::Drop).unwrap();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("t1"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(2), &Value::str("pump"));
        assert_eq!(out[0].value(3), &Value::Bool(true));
    }

    #[test]
    fn miss_drop_vs_nullpad() {
        let mut drop_op =
            TableLookup::new(context_table(), Expr::col(0), "tagid", MissPolicy::Drop).unwrap();
        let mut out = Vec::new();
        drop_op.on_tuple(0, &reading("unknown"), &mut out).unwrap();
        assert!(out.is_empty());

        let mut pad_op =
            TableLookup::new(context_table(), Expr::col(0), "tagid", MissPolicy::NullPad).unwrap();
        pad_op.on_tuple(0, &reading("unknown"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arity(), 4);
        assert!(out[0].value(1).is_null());
    }

    #[test]
    fn table_not_exists_gates_inserts() {
        // Example 2's shape: pass the reading only when (tag, loc) is not
        // already recorded.
        let table = Table::new(Arc::new(
            Schema::new(
                "object_movement",
                vec![("tagid", ValueType::Str), ("location", ValueType::Str)],
                None,
            )
            .unwrap(),
        ));
        table
            .insert(vec![Value::str("t1"), Value::str("dock")])
            .unwrap();
        // pred: table.tagid = outer.tag AND table.location = outer.loc
        let pred = Expr::and(
            Expr::eq(Expr::qcol(1, 0), Expr::qcol(0, 0)),
            Expr::eq(Expr::qcol(1, 1), Expr::qcol(0, 1)),
        );
        let mut op = TableExists::new(
            table.clone(),
            pred,
            true,
            Some(("tagid".into(), Expr::col(0))),
        )
        .unwrap();
        let mk = |tag: &str, loc: &str| {
            Tuple::new(
                vec![Value::str(tag), Value::str(loc)],
                Timestamp::from_secs(1),
                0,
            )
        };
        let mut out = Vec::new();
        op.on_tuple(0, &mk("t1", "dock"), &mut out).unwrap(); // already known
        assert!(out.is_empty());
        op.on_tuple(0, &mk("t1", "aisle"), &mut out).unwrap(); // moved
        assert_eq!(out.len(), 1);
        op.on_tuple(0, &mk("t2", "dock"), &mut out).unwrap(); // new object
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn table_exists_positive_polarity() {
        let table = context_table();
        let pred = Expr::and(
            Expr::eq(Expr::qcol(1, 0), Expr::qcol(0, 0)),
            Expr::eq(Expr::qcol(1, 2), Expr::lit(true)),
        );
        let mut op = TableExists::new(table, pred, false, None).unwrap();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("t1"), &mut out).unwrap(); // authorized
        op.on_tuple(0, &reading("t2"), &mut out).unwrap(); // not authorized
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::str("t1"));
    }

    #[test]
    fn fan_out_on_multiple_matches() {
        let table = context_table();
        table
            .insert(vec![
                Value::str("t1"),
                Value::str("spare"),
                Value::Bool(true),
            ])
            .unwrap();
        let mut op = TableLookup::new(table, Expr::col(0), "tagid", MissPolicy::Drop).unwrap();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("t1"), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }
}
