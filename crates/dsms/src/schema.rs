//! Stream and table schemas.
//!
//! A schema names the columns of a stream or table and fixes their types.
//! Every registered stream additionally designates one `Ts` column as its
//! *event-time* column; window semantics and the temporal operators order
//! tuples by that column.

use crate::error::{DsmsError, Result};
use crate::value::ValueType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-insensitive lookup, stored lower-case).
    pub name: String,
    /// Static type.
    pub ty: ValueType,
}

/// A named, ordered set of typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Relation (stream or table) name, stored lower-case.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Index of the event-time column, if any. Streams must have one;
    /// tables need not.
    pub time_column: Option<usize>,
}

/// Shared schema handle; schemas are immutable after registration.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema. Column and relation names are lower-cased. The
    /// event-time column, when named, must exist and have type `Ts`.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(&str, ValueType)>,
        time_column: Option<&str>,
    ) -> Result<Schema> {
        let name = name.into().to_ascii_lowercase();
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(n, ty)| Column {
                name: n.to_ascii_lowercase(),
                ty,
            })
            .collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DsmsError::schema(format!(
                    "duplicate column `{}` in `{}`",
                    c.name, name
                )));
            }
        }
        let time_column = match time_column {
            None => None,
            Some(tc) => {
                let tc = tc.to_ascii_lowercase();
                let idx = columns.iter().position(|c| c.name == tc).ok_or_else(|| {
                    DsmsError::schema(format!("time column `{tc}` not found in `{name}`"))
                })?;
                if columns[idx].ty != ValueType::Ts {
                    return Err(DsmsError::schema(format!(
                        "time column `{tc}` of `{name}` must be TIMESTAMP, found {}",
                        columns[idx].ty
                    )));
                }
                Some(idx)
            }
        };
        Ok(Schema {
            name,
            columns,
            time_column,
        })
    }

    /// Convenience constructor for the ubiquitous RFID reading shape
    /// `(reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)` used by
    /// the paper's `readings` stream.
    pub fn readings(name: impl Into<String>) -> SchemaRef {
        Arc::new(
            Schema::new(
                name,
                vec![
                    ("reader_id", ValueType::Str),
                    ("tag_id", ValueType::Str),
                    ("read_time", ValueType::Ts),
                ],
                Some("read_time"),
            )
            .expect("static schema is valid"),
        )
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Look up a column index, erroring with context when absent.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name)
            .ok_or_else(|| DsmsError::schema(format!("no column `{}` in `{}`", name, self.name)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether two schemas have identical column types (names may differ),
    /// which is the requirement for `INSERT INTO s SELECT ...`.
    pub fn layout_compatible(&self, other: &Schema) -> bool {
        self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| b.ty.coercible_to(a.ty))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_lowercases() {
        let s = Schema::new(
            "Readings",
            vec![("Reader_ID", ValueType::Str), ("T", ValueType::Ts)],
            Some("T"),
        )
        .unwrap();
        assert_eq!(s.name, "readings");
        assert_eq!(s.column_index("READER_id"), Some(0));
        assert_eq!(s.time_column, Some(1));
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::new(
            "s",
            vec![("a", ValueType::Int), ("A", ValueType::Str)],
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate column"));
    }

    #[test]
    fn rejects_missing_time_column() {
        let err = Schema::new("s", vec![("a", ValueType::Int)], Some("t")).unwrap_err();
        assert!(err.to_string().contains("not found"));
    }

    #[test]
    fn rejects_non_ts_time_column() {
        let err = Schema::new("s", vec![("t", ValueType::Int)], Some("t")).unwrap_err();
        assert!(err.to_string().contains("must be TIMESTAMP"));
    }

    #[test]
    fn readings_shape() {
        let s = Schema::readings("r1");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.time_column, Some(2));
        assert_eq!(
            s.to_string(),
            "r1(reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)"
        );
    }

    #[test]
    fn layout_compatibility() {
        let a = Schema::new("a", vec![("x", ValueType::Float)], None).unwrap();
        let b = Schema::new("b", vec![("y", ValueType::Int)], None).unwrap();
        // Int coerces into Float column, not vice versa.
        assert!(a.layout_compatible(&b));
        assert!(!b.layout_compatible(&a));
    }
}
