//! Compact state keys: a flat byte encoding of a key column list.
//!
//! Stateful operators (dedup, grouped aggregation, table indexes, SEQ
//! partition state) used to key their maps with `Vec<Value>` — one heap
//! allocation per probe plus a `Value` clone per column. A [`StateKey`]
//! is a single flat buffer: one tag byte per column followed by a
//! fixed-width payload (4-byte symbol ids for interned strings, raw bits
//! for ints/floats/timestamps). Probes encode into a reusable scratch
//! buffer and look up by `&[u8]` — zero allocations on the hit path; the
//! buffer is boxed only when a new key is inserted.
//!
//! The encoding mirrors `Value`'s grouping equality exactly: variants
//! are discriminated by tag (so `Int(1)` ≠ `Float(1.0)`), floats encode
//! their bit pattern (NaN-safe), `NULL` equals `NULL`, and equal strings
//! map to equal symbols because the engine's interner canonicalizes
//! them. The seed (un-interned) representation uses the same codec with
//! raw string bytes, so both representations run identical operator
//! code.

use crate::error::{DsmsError, Result};
use crate::intern::{InternerRef, Sym};
use crate::time::Timestamp;
use crate::value::Value;
use std::borrow::Borrow;
use std::sync::Arc;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR_SYM: u8 = 3;
const TAG_STR_RAW: u8 = 4;
const TAG_BOOL: u8 = 5;
const TAG_TS: u8 = 6;

/// An encoded key column list, used as the map key in operator state.
///
/// Hashing and equality delegate to the byte slice, and `Borrow<[u8]>`
/// lets maps be probed with a borrowed scratch buffer — the alloc-free
/// hot path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey(Box<[u8]>);

impl StateKey {
    /// Box a finished scratch buffer (insert path).
    pub fn from_slice(bytes: &[u8]) -> StateKey {
        StateKey(bytes.into())
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Encoded length in bytes (the state-size metric).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key has no columns (unpartitioned state).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Borrow<[u8]> for StateKey {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

/// Encoder/decoder for [`StateKey`]s: interned (symbols) or raw (seed)
/// string encoding, shared by every operator an engine registers.
#[derive(Clone, Debug, Default)]
pub struct KeyCodec {
    interner: Option<InternerRef>,
}

impl KeyCodec {
    /// Seed codec: strings encode as raw length-prefixed bytes.
    pub fn raw() -> KeyCodec {
        KeyCodec::default()
    }

    /// Interned codec: strings encode as 4-byte symbol ids.
    pub fn interned(interner: InternerRef) -> KeyCodec {
        KeyCodec {
            interner: Some(interner),
        }
    }

    /// The interner behind this codec, when interned.
    pub fn interner(&self) -> Option<&InternerRef> {
        self.interner.as_ref()
    }

    /// Append one value's encoding to `buf`.
    pub fn encode_value_into(&self, buf: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Null => buf.push(TAG_NULL),
            Value::Int(i) => {
                buf.push(TAG_INT);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                buf.push(TAG_FLOAT);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => match &self.interner {
                Some(i) => {
                    buf.push(TAG_STR_SYM);
                    buf.extend_from_slice(&i.sym_of(s).0.to_le_bytes());
                }
                None => {
                    buf.push(TAG_STR_RAW);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
            },
            Value::Bool(b) => {
                buf.push(TAG_BOOL);
                buf.push(u8::from(*b));
            }
            Value::Ts(t) => {
                buf.push(TAG_TS);
                buf.extend_from_slice(&t.as_micros().to_le_bytes());
            }
        }
    }

    /// Append an already-interned symbol's encoding — the columnar
    /// dedup kernel's path: the symbol comes straight off a `Str`
    /// column, so no dictionary lookup (or lock) is needed. Produces
    /// exactly the bytes [`KeyCodec::encode_value_into`] would for the
    /// symbol's string under an interned codec.
    pub fn encode_sym_into(&self, buf: &mut Vec<u8>, sym: Sym) {
        buf.push(TAG_STR_SYM);
        buf.extend_from_slice(&sym.0.to_le_bytes());
    }

    /// Append the NULL encoding (columnar kernels encode invalid rows
    /// without building a `Value`).
    pub fn encode_null_into(&self, buf: &mut Vec<u8>) {
        buf.push(TAG_NULL);
    }

    /// Encode a full key column list into a reusable scratch buffer
    /// (cleared first). Probe maps with `scratch.as_slice()` afterwards.
    pub fn encode_into(&self, buf: &mut Vec<u8>, vals: &[Value]) {
        buf.clear();
        for v in vals {
            self.encode_value_into(buf, v);
        }
    }

    /// Encode a key column list into an owned [`StateKey`].
    pub fn encode(&self, vals: &[Value]) -> StateKey {
        let mut buf = Vec::with_capacity(vals.len() * 9);
        for v in vals {
            self.encode_value_into(&mut buf, v);
        }
        StateKey(buf.into())
    }

    /// Encode one value as it would appear if already interned — never
    /// grows the dictionary. `None` means the string is not interned,
    /// so no stored key can equal it (probe-side miss).
    pub fn try_encode_value(&self, v: &Value) -> Option<Vec<u8>> {
        let mut buf = Vec::with_capacity(9);
        if let (Value::Str(s), Some(i)) = (v, &self.interner) {
            let sym = i.lookup_sym(s)?;
            buf.push(TAG_STR_SYM);
            buf.extend_from_slice(&sym.0.to_le_bytes());
        } else {
            self.encode_value_into(&mut buf, v);
        }
        Some(buf)
    }

    /// Decode an encoded key back to its column values.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<Value>> {
        let mut vals = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let tag = bytes[pos];
            pos += 1;
            vals.push(match tag {
                TAG_NULL => Value::Null,
                TAG_INT => Value::Int(i64::from_le_bytes(take8(bytes, &mut pos)?)),
                TAG_FLOAT => {
                    Value::Float(f64::from_bits(u64::from_le_bytes(take8(bytes, &mut pos)?)))
                }
                TAG_STR_SYM => {
                    let sym = Sym(u32::from_le_bytes(take4(bytes, &mut pos)?));
                    let i = self.interner.as_ref().ok_or_else(|| {
                        DsmsError::ckpt("symbol-encoded key in a raw-representation engine")
                    })?;
                    Value::Str(i.resolve(sym)?)
                }
                TAG_STR_RAW => {
                    let len = u32::from_le_bytes(take4(bytes, &mut pos)?) as usize;
                    let end = pos
                        .checked_add(len)
                        .filter(|&e| e <= bytes.len())
                        .ok_or_else(|| DsmsError::ckpt("truncated state key"))?;
                    let s = std::str::from_utf8(&bytes[pos..end])
                        .map_err(|_| DsmsError::ckpt("invalid UTF-8 in state key"))?;
                    pos = end;
                    Value::Str(Arc::from(s))
                }
                TAG_BOOL => {
                    let b = *bytes
                        .get(pos)
                        .ok_or_else(|| DsmsError::ckpt("truncated state key"))?;
                    pos += 1;
                    Value::Bool(b != 0)
                }
                TAG_TS => Value::Ts(Timestamp::from_micros(u64::from_le_bytes(take8(
                    bytes, &mut pos,
                )?))),
                t => return Err(DsmsError::ckpt(format!("unknown state-key tag {t}"))),
            });
        }
        Ok(vals)
    }
}

fn take4(bytes: &[u8], pos: &mut usize) -> Result<[u8; 4]> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DsmsError::ckpt("truncated state key"))?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(raw)
}

fn take8(bytes: &[u8], pos: &mut usize) -> Result<[u8; 8]> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DsmsError::ckpt("truncated state key"))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FnvBuildHasher;
    use crate::intern::StrInterner;
    use std::collections::HashMap;

    fn sample_vals() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Int(-7),
            Value::Float(2.5),
            Value::str("tag17"),
            Value::Bool(true),
            Value::Ts(Timestamp::from_millis(1500)),
        ]
    }

    #[test]
    fn raw_round_trip() {
        let c = KeyCodec::raw();
        let key = c.encode(&sample_vals());
        assert_eq!(c.decode(key.as_bytes()).unwrap(), sample_vals());
    }

    #[test]
    fn interned_round_trip_is_fixed_width() {
        let c = KeyCodec::interned(Arc::new(StrInterner::new()));
        let key = c.encode(&sample_vals());
        assert_eq!(c.decode(key.as_bytes()).unwrap(), sample_vals());
        // 1 tag + {0, 8, 8, 4, 1, 8} payload bytes.
        assert_eq!(key.len(), 6 + 0 + 8 + 8 + 4 + 1 + 8);
    }

    #[test]
    fn encoding_discriminates_like_grouping_equality() {
        let c = KeyCodec::raw();
        assert_ne!(c.encode(&[Value::Int(1)]), c.encode(&[Value::Float(1.0)]));
        assert_ne!(c.encode(&[Value::Null]), c.encode(&[Value::Int(0)]));
        assert_eq!(c.encode(&[Value::Null]), c.encode(&[Value::Null]));
        assert_eq!(
            c.encode(&[Value::Float(f64::NAN)]),
            c.encode(&[Value::Float(f64::NAN)])
        );
        // Adjacent strings cannot be confused: lengths are explicit.
        assert_ne!(
            c.encode(&[Value::str("ab"), Value::str("c")]),
            c.encode(&[Value::str("a"), Value::str("bc")])
        );
    }

    #[test]
    fn equal_strings_share_symbols() {
        let c = KeyCodec::interned(Arc::new(StrInterner::new()));
        let a = c.encode(&[Value::str("epc-1")]);
        let b = c.encode(&[Value::str("epc-1")]);
        assert_eq!(a, b);
        assert_ne!(a, c.encode(&[Value::str("epc-2")]));
    }

    #[test]
    fn scratch_probe_matches_boxed_key() {
        let c = KeyCodec::interned(Arc::new(StrInterner::new()));
        let mut map: HashMap<StateKey, u64, FnvBuildHasher> = HashMap::default();
        let vals = vec![Value::str("r1"), Value::str("t9")];
        map.insert(c.encode(&vals), 42);
        let mut scratch = Vec::new();
        c.encode_into(&mut scratch, &vals);
        assert_eq!(map.get(scratch.as_slice()), Some(&42));
        c.encode_into(&mut scratch, &[Value::str("r1"), Value::str("t8")]);
        assert_eq!(map.get(scratch.as_slice()), None);
    }

    #[test]
    fn try_encode_never_inserts() {
        let interner = Arc::new(StrInterner::new());
        let c = KeyCodec::interned(interner.clone());
        assert!(c.try_encode_value(&Value::str("ghost")).is_none());
        assert_eq!(interner.entries(), 0);
        let stored = c.encode(&[Value::str("real")]);
        let probe = c.try_encode_value(&Value::str("real")).unwrap();
        assert_eq!(stored.as_bytes(), probe.as_slice());
        // Non-string values always encode.
        assert!(c.try_encode_value(&Value::Int(3)).is_some());
    }

    #[test]
    fn truncated_keys_are_typed_errors() {
        let c = KeyCodec::raw();
        let key = c.encode(&[Value::Int(5)]);
        assert!(c.decode(&key.as_bytes()[..4]).is_err());
        assert!(c.decode(&[9u8]).is_err());
        // Symbol key in a raw codec is a shape error.
        let ic = KeyCodec::interned(Arc::new(StrInterner::new()));
        let sym_key = ic.encode(&[Value::str("x")]);
        assert!(c.decode(sym_key.as_bytes()).is_err());
    }
}
