//! # eslev-dsms — the DSMS substrate
//!
//! An in-memory data stream management system in the style of ESL /
//! Stream Mill: registered append-only streams of typed tuples, persistent
//! tables, continuous queries built from push-based operators, sliding
//! windows (including the paper's FOLLOWING and PRECEDING-AND-FOLLOWING
//! extensions), extensible aggregates (UDAs) and scalar functions (UDFs),
//! and punctuation-driven *active expiration*.
//!
//! The temporal event operators of the paper live one layer up in
//! `eslev-core`; this crate provides everything §2 of the paper claims a
//! SQL-based stream language already handles well: duplicate elimination,
//! ad-hoc queries, context retrieval, database updates and aggregation.
//!
//! ```
//! use eslev_dsms::prelude::*;
//!
//! // Example 1 of the paper: duplicate elimination with a 1 s window.
//! let mut engine = Engine::new();
//! engine.create_stream(Schema::readings("readings")).unwrap();
//! let dedup = Dedup::new(vec![Expr::col(0), Expr::col(1)], Duration::from_secs(1));
//! let (_, cleaned) = engine
//!     .register_collected("dedup", vec!["readings"], Box::new(dedup))
//!     .unwrap();
//! for (ms, tag) in [(0u64, "tag1"), (300, "tag1"), (1500, "tag1")] {
//!     engine
//!         .push(
//!             "readings",
//!             vec![
//!                 Value::str("reader1"),
//!                 Value::str(tag),
//!                 Value::Ts(Timestamp::from_millis(ms)),
//!             ],
//!         )
//!         .unwrap();
//! }
//! assert_eq!(cleaned.len(), 2); // the 300 ms re-read is suppressed
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod batch;
pub mod ckpt;
pub mod driver;
pub mod engine;
pub mod error;
pub mod expr;
pub mod fault;
pub mod hash;
pub mod intern;
pub mod journal;
pub mod key;
pub mod lookup;
pub mod obs;
pub mod ops;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod table;
pub mod time;
pub mod trace;
pub mod tuple;
pub mod value;
pub mod window;

/// One-stop imports for building queries against the substrate.
pub mod prelude {
    pub use crate::agg::{Aggregate, AggregateRegistry, ClosureUda};
    pub use crate::batch::{Column as BatchColumn, ColumnBatch, ColumnData};
    pub use crate::ckpt::{EngineCheckpoint, StateNode, CHECKPOINT_VERSION};
    pub use crate::driver::{EngineDriver, EngineInput};
    pub use crate::engine::{
        Collector, Consistency, DeadLetter, Engine, QueryId, QueryStats, RejectReason, Sink,
        StreamInfo,
    };
    pub use crate::error::{DsmsError, Result};
    pub use crate::expr::{BinOp, Expr, FunctionRegistry, LikePattern};
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::intern::{InternerRef, Representation, StrInterner, Sym};
    pub use crate::journal::{Journal, JournalEntry};
    pub use crate::key::{KeyCodec, StateKey};
    pub use crate::lookup::{MissPolicy, TableExists, TableLookup};
    pub use crate::obs::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue, MetricsSnapshot,
        Registry,
    };
    pub use crate::ops::{
        AggSpec, AggWindow, BinaryJoin, Chain, Dedup, Emission, OpReport, Operator, Project,
        Select, SemiJoinKind, SpeculativeGate, WindowAggregate, WindowExists,
    };
    pub use crate::schema::{Column, Schema, SchemaRef};
    pub use crate::shard::{
        shard_of, RecoveryStats, RouteRule, ShardRecovery, ShardSpec, ShardStats, ShardedEngine,
        WatermarkAggregator, EPC_KEY_COLUMNS,
    };
    pub use crate::snapshot::{MaterializedWindow, SnapshotRef};
    pub use crate::table::{Table, TableRef};
    pub use crate::time::{Duration, Timestamp};
    pub use crate::trace::{
        chrome_trace_json, FlightRecorder, LatencyStamps, TraceEvent, TraceKind,
    };
    pub use crate::tuple::{Sign, StreamItem, Tuple};
    pub use crate::value::{Value, ValueType};
    pub use crate::window::{WindowBuffer, WindowExtent};
}
