//! Checkpoint serialization substrate.
//!
//! Operator state is captured as a [`StateNode`] tree — a small,
//! self-describing value language (scalars, tuples, lists) that every
//! stateful operator can flatten itself into and rebuild itself from.
//! An [`EngineCheckpoint`] wraps one tree with the engine's stream
//! position (`next_seq`, watermark) plus a version byte and an FNV-1a
//! checksum, and encodes to a portable byte buffer.
//!
//! The encoding is hand-rolled (tag byte per node, little-endian
//! lengths) rather than serde-derived: the workspace vendors a no-op
//! `serde` stub, so checkpoints must not depend on derive machinery.
//! The format is versioned — [`CHECKPOINT_VERSION`] — and decoding a
//! buffer with a different version or a corrupt checksum is a typed
//! error, never a silent misparse.

use crate::error::{DsmsError, Result};
use crate::hash::FnvHasher;
use crate::time::Timestamp;
use crate::tuple::{Sign, Tuple};
use crate::value::Value;
use std::hash::Hasher;

/// Current checkpoint format version (bumped on incompatible changes).
/// Version 2 added the interner dictionary section; version-1 buffers
/// (no dictionary) still decode, with an empty dictionary. Version 3
/// added the shared-chain section to the engine root (shared subplan
/// state saved once, with a versioned subscriber list); version-2 roots
/// still decode and restore into engines without shared chains.
/// Version 4 added the dead-letter section to the engine root (rejected
/// rows with reason tags survive recovery) and a signed-tuple node tag
/// for speculative state; v3 roots still decode with an empty
/// dead-letter buffer, and plain tuples keep the v3 wire shape.
pub const CHECKPOINT_VERSION: u32 = 4;

const MAGIC: &[u8; 4] = b"ESCK";

/// One node of serialized operator state.
///
/// Operators flatten their state into this tree in `save_state` and
/// rebuild from it in `restore_state`; the engine nests per-operator
/// trees into one root per checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum StateNode {
    /// No state (the default for stateless operators).
    Unit,
    /// Unsigned 64-bit scalar (counters, sequence numbers, timestamps).
    U64(u64),
    /// Signed 64-bit scalar.
    I64(i64),
    /// 64-bit float scalar (encoded via its bit pattern — NaN-safe).
    F64(f64),
    /// Boolean scalar.
    Bool(bool),
    /// UTF-8 string (names, keys).
    Str(String),
    /// A column value.
    Value(Value),
    /// A full stream tuple (values + event time + sequence number).
    Tuple(Tuple),
    /// An ordered sequence of child nodes.
    List(Vec<StateNode>),
}

impl StateNode {
    /// Wrap a timestamp (stored as its microsecond count).
    pub fn ts(t: Timestamp) -> StateNode {
        StateNode::U64(t.as_micros())
    }

    /// Wrap an optional timestamp (`I64(-1)` encodes `None`).
    pub fn opt_ts(t: Option<Timestamp>) -> StateNode {
        match t {
            Some(t) => StateNode::U64(t.as_micros()),
            None => StateNode::Unit,
        }
    }

    /// Wrap a `usize` (stored as `U64`).
    pub fn usize(n: usize) -> StateNode {
        StateNode::U64(n as u64)
    }

    /// The node as a `u64`, or a checkpoint-shape error.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            StateNode::U64(v) => Ok(*v),
            other => Err(shape("U64", other)),
        }
    }

    /// The node as an `i64`, or a checkpoint-shape error.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            StateNode::I64(v) => Ok(*v),
            other => Err(shape("I64", other)),
        }
    }

    /// The node as an `f64`, or a checkpoint-shape error.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            StateNode::F64(v) => Ok(*v),
            other => Err(shape("F64", other)),
        }
    }

    /// The node as a `bool`, or a checkpoint-shape error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            StateNode::Bool(v) => Ok(*v),
            other => Err(shape("Bool", other)),
        }
    }

    /// The node as a string slice, or a checkpoint-shape error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            StateNode::Str(s) => Ok(s),
            other => Err(shape("Str", other)),
        }
    }

    /// The node as a [`Value`], or a checkpoint-shape error.
    pub fn as_value(&self) -> Result<&Value> {
        match self {
            StateNode::Value(v) => Ok(v),
            other => Err(shape("Value", other)),
        }
    }

    /// The node as a [`Tuple`], or a checkpoint-shape error.
    pub fn as_tuple(&self) -> Result<&Tuple> {
        match self {
            StateNode::Tuple(t) => Ok(t),
            other => Err(shape("Tuple", other)),
        }
    }

    /// The node's children, or a checkpoint-shape error.
    pub fn as_list(&self) -> Result<&[StateNode]> {
        match self {
            StateNode::List(items) => Ok(items),
            other => Err(shape("List", other)),
        }
    }

    /// Child `i` of a list node (shape error when absent or not a list).
    pub fn item(&self, i: usize) -> Result<&StateNode> {
        self.as_list()?
            .get(i)
            .ok_or_else(|| DsmsError::ckpt(format!("list index {i} out of range")))
    }

    /// The node as a timestamp (stored micros), or a shape error.
    pub fn as_ts(&self) -> Result<Timestamp> {
        Ok(Timestamp::from_micros(self.as_u64()?))
    }

    /// The node as an optional timestamp (`Unit` encodes `None`).
    pub fn as_opt_ts(&self) -> Result<Option<Timestamp>> {
        match self {
            StateNode::Unit => Ok(None),
            other => Ok(Some(other.as_ts()?)),
        }
    }

    /// The node as a `usize`, or a shape error.
    pub fn as_usize(&self) -> Result<usize> {
        Ok(self.as_u64()? as usize)
    }

    /// The variant's name (for shape-mismatch diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            StateNode::Unit => "Unit",
            StateNode::U64(_) => "U64",
            StateNode::I64(_) => "I64",
            StateNode::F64(_) => "F64",
            StateNode::Bool(_) => "Bool",
            StateNode::Str(_) => "Str",
            StateNode::Value(_) => "Value",
            StateNode::Tuple(_) => "Tuple",
            StateNode::List(_) => "List",
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StateNode::Unit => buf.push(0),
            StateNode::U64(v) => {
                buf.push(1);
                put_u64(buf, *v);
            }
            StateNode::I64(v) => {
                buf.push(2);
                put_u64(buf, *v as u64);
            }
            StateNode::F64(v) => {
                buf.push(3);
                put_u64(buf, v.to_bits());
            }
            StateNode::Bool(v) => {
                buf.push(4);
                buf.push(u8::from(*v));
            }
            StateNode::Str(s) => {
                buf.push(5);
                put_bytes(buf, s.as_bytes());
            }
            StateNode::Value(v) => {
                buf.push(6);
                encode_value(buf, v);
            }
            StateNode::Tuple(t) => {
                // Ordinary tuples keep the v3 wire shape (tag 7); only
                // signed/speculative tuples need the extended tag, so v4
                // buffers without speculation decode under a v3 reader.
                if t.sign() == Sign::Insert && t.revision() == 0 {
                    buf.push(7);
                    encode_tuple(buf, t);
                } else {
                    buf.push(9);
                    encode_tuple(buf, t);
                    buf.push(match t.sign() {
                        Sign::Insert => 0,
                        Sign::Retract => 1,
                    });
                    put_u64(buf, t.revision());
                }
            }
            StateNode::List(items) => {
                buf.push(8);
                put_u32(buf, items.len() as u32);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<StateNode> {
        let tag = get_u8(buf, pos)?;
        Ok(match tag {
            0 => StateNode::Unit,
            1 => StateNode::U64(get_u64(buf, pos)?),
            2 => StateNode::I64(get_u64(buf, pos)? as i64),
            3 => StateNode::F64(f64::from_bits(get_u64(buf, pos)?)),
            4 => StateNode::Bool(get_u8(buf, pos)? != 0),
            5 => StateNode::Str(get_string(buf, pos)?),
            6 => StateNode::Value(decode_value(buf, pos)?),
            7 => StateNode::Tuple(decode_tuple(buf, pos)?),
            9 => {
                let t = decode_tuple(buf, pos)?;
                let sign = match get_u8(buf, pos)? {
                    0 => Sign::Insert,
                    1 => Sign::Retract,
                    s => return Err(DsmsError::ckpt(format!("unknown tuple sign {s}"))),
                };
                let revision = get_u64(buf, pos)?;
                StateNode::Tuple(Tuple::with_sign(
                    t.values().to_vec(),
                    t.ts(),
                    t.seq(),
                    sign,
                    revision,
                ))
            }
            8 => {
                let n = get_u32(buf, pos)? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    items.push(StateNode::decode(buf, pos)?);
                }
                StateNode::List(items)
            }
            t => return Err(DsmsError::ckpt(format!("unknown state-node tag {t}"))),
        })
    }
}

fn shape(want: &str, got: &StateNode) -> DsmsError {
    DsmsError::ckpt(format!("expected {want} node, found {}", got.kind()))
}

/// A serialized engine snapshot: the watermark position the state was
/// captured at plus the per-query operator state trees.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`] when produced here).
    pub version: u32,
    /// The engine's next input sequence number at capture time.
    pub next_seq: u64,
    /// The engine's watermark (stream time) at capture time.
    pub now: Timestamp,
    /// The engine interner's dictionary in symbol order, so a restored
    /// engine re-encodes state keys onto the symbols the capturing
    /// engine assigned. Empty for seed-representation engines and for
    /// version-1 checkpoints.
    pub dict: Vec<String>,
    /// The engine-assembled state tree (streams, queries, tables).
    pub root: StateNode,
}

impl EngineCheckpoint {
    /// Wrap a state tree with the current format version (no
    /// dictionary; see [`EngineCheckpoint::with_dict`]).
    pub fn new(next_seq: u64, now: Timestamp, root: StateNode) -> EngineCheckpoint {
        EngineCheckpoint {
            version: CHECKPOINT_VERSION,
            next_seq,
            now,
            dict: Vec::new(),
            root,
        }
    }

    /// Attach the interner dictionary (symbol order).
    pub fn with_dict(mut self, dict: Vec<String>) -> EngineCheckpoint {
        self.dict = dict;
        self
    }

    /// Serialize to a self-contained byte buffer (magic, version,
    /// position, dictionary, state tree, FNV-1a checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, self.version);
        put_u64(&mut buf, self.next_seq);
        put_u64(&mut buf, self.now.as_micros());
        put_u32(&mut buf, self.dict.len() as u32);
        for s in &self.dict {
            put_bytes(&mut buf, s.as_bytes());
        }
        self.root.encode(&mut buf);
        let mut h = FnvHasher::default();
        h.write(&buf);
        put_u64(&mut buf, h.finish());
        buf
    }

    /// Decode a buffer produced by [`EngineCheckpoint::to_bytes`],
    /// verifying magic, version, and checksum.
    pub fn from_bytes(buf: &[u8]) -> Result<EngineCheckpoint> {
        if buf.len() < MAGIC.len() + 8 || &buf[..MAGIC.len()] != MAGIC {
            return Err(DsmsError::ckpt("not a checkpoint buffer (bad magic)"));
        }
        let body = &buf[..buf.len() - 8];
        let mut h = FnvHasher::default();
        h.write(body);
        let mut tail = buf.len() - 8;
        let stored = get_u64(buf, &mut tail)?;
        if stored != h.finish() {
            return Err(DsmsError::ckpt("checkpoint checksum mismatch"));
        }
        let mut pos = MAGIC.len();
        let version = get_u32(body, &mut pos)?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(DsmsError::ckpt(format!(
                "checkpoint version {version} unsupported (expected <= {CHECKPOINT_VERSION})"
            )));
        }
        let next_seq = get_u64(body, &mut pos)?;
        let now = Timestamp::from_micros(get_u64(body, &mut pos)?);
        // Version 1 predates the dictionary section.
        let mut dict = Vec::new();
        if version >= 2 {
            let n = get_u32(body, &mut pos)? as usize;
            dict.reserve(n.min(1 << 20));
            for _ in 0..n {
                dict.push(get_string(body, &mut pos)?);
            }
        }
        let root = StateNode::decode(body, &mut pos)?;
        if pos != body.len() {
            return Err(DsmsError::ckpt("trailing bytes after checkpoint state"));
        }
        Ok(EngineCheckpoint {
            version,
            next_seq,
            now,
            dict,
            root,
        })
    }
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(3);
            put_bytes(buf, s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
        Value::Ts(t) => {
            buf.push(5);
            put_u64(buf, t.as_micros());
        }
    }
}

fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = get_u8(buf, pos)?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(get_u64(buf, pos)? as i64),
        2 => Value::Float(f64::from_bits(get_u64(buf, pos)?)),
        3 => Value::Str(get_string(buf, pos)?.into()),
        4 => Value::Bool(get_u8(buf, pos)? != 0),
        5 => Value::Ts(Timestamp::from_micros(get_u64(buf, pos)?)),
        t => return Err(DsmsError::ckpt(format!("unknown value tag {t}"))),
    })
}

fn encode_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.values() {
        encode_value(buf, v);
    }
    put_u64(buf, t.ts().as_micros());
    put_u64(buf, t.seq());
}

fn decode_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple> {
    let arity = get_u32(buf, pos)? as usize;
    let mut values = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        values.push(decode_value(buf, pos)?);
    }
    let ts = Timestamp::from_micros(get_u64(buf, pos)?);
    let seq = get_u64(buf, pos)?;
    Ok(Tuple::new(values, ts, seq))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| DsmsError::ckpt("truncated checkpoint buffer"))?;
    *pos += 1;
    Ok(b)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DsmsError::ckpt("truncated checkpoint buffer"))?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(raw))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DsmsError::ckpt("truncated checkpoint buffer"))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DsmsError::ckpt("truncated checkpoint buffer"))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| DsmsError::ckpt("invalid UTF-8 in checkpoint string"))?
        .to_string();
    *pos = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_root() -> StateNode {
        StateNode::List(vec![
            StateNode::Unit,
            StateNode::U64(42),
            StateNode::I64(-7),
            StateNode::F64(2.5),
            StateNode::F64(f64::NAN),
            StateNode::Bool(true),
            StateNode::Str("cleaned_readings".into()),
            StateNode::Value(Value::str("tag17")),
            StateNode::Value(Value::Null),
            StateNode::Tuple(Tuple::new(
                vec![Value::Int(3), Value::Ts(Timestamp::from_secs(9))],
                Timestamp::from_secs(9),
                123,
            )),
            StateNode::List(vec![StateNode::U64(1), StateNode::U64(2)]),
        ])
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let ck = EngineCheckpoint::new(77, Timestamp::from_secs(3), sample_root());
        let bytes = ck.to_bytes();
        let back = EngineCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.next_seq, 77);
        assert_eq!(back.now, Timestamp::from_secs(3));
        // NaN compares bitwise through the F64 encoding; compare via
        // re-encoding rather than PartialEq (NaN != NaN).
        let mut a = Vec::new();
        let mut b = Vec::new();
        ck.root.encode(&mut a);
        back.root.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_detects_corruption() {
        let ck = EngineCheckpoint::new(1, Timestamp::ZERO, StateNode::U64(5));
        let mut bytes = ck.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn bad_magic_and_truncation_are_typed_errors() {
        assert!(EngineCheckpoint::from_bytes(b"nope").is_err());
        let bytes = EngineCheckpoint::new(1, Timestamp::ZERO, StateNode::Unit).to_bytes();
        assert!(EngineCheckpoint::from_bytes(&bytes[..bytes.len() - 9]).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let ck = EngineCheckpoint::new(1, Timestamp::ZERO, StateNode::Unit);
        let mut bytes = ck.to_bytes();
        // Patch the version field and re-stamp the checksum.
        bytes[4] = 99;
        let body_len = bytes.len() - 8;
        let mut h = FnvHasher::default();
        h.write(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn dictionary_section_round_trips() {
        let dict = vec!["reader-1".to_string(), String::new(), "tag17".to_string()];
        let ck = EngineCheckpoint::new(9, Timestamp::from_secs(1), sample_root())
            .with_dict(dict.clone());
        let back = EngineCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.dict, dict);
    }

    #[test]
    fn version_one_buffers_decode_with_empty_dictionary() {
        // Hand-build a v1 buffer: same layout as v2 minus the dictionary
        // section between the watermark and the state tree.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 55);
        put_u64(&mut buf, Timestamp::from_secs(4).as_micros());
        StateNode::U64(11).encode(&mut buf);
        let mut h = FnvHasher::default();
        h.write(&buf);
        put_u64(&mut buf, h.finish());
        let back = EngineCheckpoint::from_bytes(&buf).unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.next_seq, 55);
        assert_eq!(back.now, Timestamp::from_secs(4));
        assert!(back.dict.is_empty());
        assert_eq!(back.root, StateNode::U64(11));
    }

    #[test]
    fn signed_tuples_round_trip() {
        let base = Tuple::new(vec![Value::Int(1)], Timestamp::from_secs(2), 5);
        let retract = base.retraction_of(3);
        let root = StateNode::List(vec![
            StateNode::Tuple(base.clone()),
            StateNode::Tuple(retract.clone()),
            StateNode::Tuple(base.at_revision(7)),
        ]);
        let ck = EngineCheckpoint::new(1, Timestamp::ZERO, root);
        let back = EngineCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.root.item(0).unwrap().as_tuple().unwrap(), &base);
        let r = back.root.item(1).unwrap().as_tuple().unwrap();
        assert_eq!(r, &retract);
        assert!(r.is_retraction());
        assert_eq!(back.root.item(2).unwrap().as_tuple().unwrap().revision(), 7);
    }

    #[test]
    fn plain_tuples_keep_v3_wire_shape() {
        // An unsigned tuple must still encode under tag 7 so that v4
        // buffers without speculation state stay decodable by shape.
        let mut buf = Vec::new();
        StateNode::Tuple(Tuple::new(vec![], Timestamp::ZERO, 0)).encode(&mut buf);
        assert_eq!(buf[0], 7);
        let mut signed = Vec::new();
        StateNode::Tuple(Tuple::new(vec![], Timestamp::ZERO, 0).retraction_of(1))
            .encode(&mut signed);
        assert_eq!(signed[0], 9);
    }

    #[test]
    fn shape_accessors_report_mismatches() {
        let n = StateNode::Str("x".into());
        assert!(n.as_u64().is_err());
        assert!(n.as_list().is_err());
        assert_eq!(n.as_str().unwrap(), "x");
        let l = StateNode::List(vec![StateNode::U64(1)]);
        assert_eq!(l.item(0).unwrap().as_u64().unwrap(), 1);
        assert!(l.item(1).is_err());
        assert_eq!(StateNode::Unit.as_opt_ts().unwrap(), None);
        assert_eq!(
            StateNode::ts(Timestamp::from_secs(2)).as_opt_ts().unwrap(),
            Some(Timestamp::from_secs(2))
        );
    }
}
