//! Deterministic fault injection for the sharded engine.
//!
//! A [`FaultPlan`] is a schedule of faults keyed on the router's cause
//! index (see [`ShardedEngine::next_cause`]): the feeding harness asks
//! the plan to [`FaultPlan::apply`] right before every push, and the
//! plan kills workers, corrupts rows, injects stale punctuations and
//! takes checkpoints at the scheduled points. Plans are either built
//! explicitly ([`FaultPlan::with`]) or derived from a seed
//! ([`FaultPlan::seeded`]) — the same seed always produces the same
//! schedule, so a failing fault sweep reproduces exactly.
//!
//! The injected faults map onto the recovery machinery like this:
//!
//! - [`Fault::PanicAtCause`] kills one shard's worker with a panic, the
//!   same way an operator bug would. The router restarts it from its
//!   last checkpoint and replays the journal tail on the next
//!   interaction with the dead shard (push, watermark broadcast, or
//!   flush).
//! - [`Fault::MalformedTuple`] truncates the row about to be pushed to
//!   a single column. The engine rejects it into the dead-letter buffer
//!   (`eslev_rejected_tuples_total`) without stopping the feed — and the
//!   single-engine reference rejects the identical row, so differential
//!   runs stay comparable.
//! - [`Fault::StaleWatermark`] broadcasts a punctuation *behind* the
//!   feed's progress. Stream-time is monotone, so it must be a no-op —
//!   the differential catches any operator that regresses on it.
//! - [`Fault::CheckpointAtCause`] takes a full checkpoint mid-feed,
//!   exercising journal truncation and restore-from-recent-state rather
//!   than replay-from-zero.

use crate::error::Result;
use crate::shard::ShardedEngine;
use crate::value::Value;
use std::collections::BTreeMap;

/// One scheduled fault. `cause` is the router cause index the fault
/// fires at (immediately before the row carrying that cause is routed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill `shard`'s worker with a panic.
    PanicAtCause {
        /// Shard whose worker dies.
        shard: usize,
        /// Cause index to fire at.
        cause: u64,
    },
    /// Truncate the row about to be pushed to one column, making it
    /// malformed for any multi-column schema (dead-letter path).
    MalformedTuple {
        /// Cause index to fire at.
        cause: u64,
    },
    /// Broadcast a punctuation at `micros` — scheduled behind the feed,
    /// where monotone stream-time makes it a required no-op.
    StaleWatermark {
        /// Cause index to fire at.
        cause: u64,
        /// Punctuation timestamp in microseconds.
        micros: u64,
    },
    /// Take a full checkpoint (and truncate journals).
    CheckpointAtCause {
        /// Cause index to fire at.
        cause: u64,
    },
}

impl Fault {
    /// The cause index this fault is scheduled at.
    pub fn cause(&self) -> u64 {
        match self {
            Fault::PanicAtCause { cause, .. }
            | Fault::MalformedTuple { cause }
            | Fault::StaleWatermark { cause, .. }
            | Fault::CheckpointAtCause { cause } => *cause,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::PanicAtCause { shard, cause } => {
                write!(f, "panic(shard={shard}) @ cause {cause}")
            }
            Fault::MalformedTuple { cause } => write!(f, "malformed-tuple @ cause {cause}"),
            Fault::StaleWatermark { cause, micros } => {
                write!(f, "stale-watermark({micros}us) @ cause {cause}")
            }
            Fault::CheckpointAtCause { cause } => write!(f, "checkpoint @ cause {cause}"),
        }
    }
}

/// xorshift64: tiny, deterministic, good enough to scatter fault points.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic schedule of faults over one feed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    by_cause: BTreeMap<u64, Vec<Fault>>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add one fault to the schedule.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.by_cause.entry(fault.cause()).or_default().push(fault);
        self
    }

    /// Derive a schedule from `seed` for a feed of `feed_len` rows over
    /// `shards` workers: two worker panics on distinct shards, one
    /// malformed row, one stale watermark, and a checkpoint roughly a
    /// third of the way in — all at seed-determined cause points after
    /// the checkpoint, so recovery exercises restore + replay.
    pub fn seeded(seed: u64, shards: usize, feed_len: u64) -> FaultPlan {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let len = feed_len.max(8);
        let ckpt = len / 3 + 1;
        let span = len - ckpt;
        let pick = move |lo: u64, state: &mut u64| lo + xorshift(state) % span.max(1);
        let mut plan = FaultPlan::new().with(Fault::CheckpointAtCause { cause: ckpt });
        let first_panic_shard = (xorshift(&mut state) % shards.max(1) as u64) as usize;
        plan = plan.with(Fault::PanicAtCause {
            shard: first_panic_shard,
            cause: pick(ckpt + 1, &mut state),
        });
        if shards > 1 {
            plan = plan.with(Fault::PanicAtCause {
                shard: (first_panic_shard + 1) % shards,
                cause: pick(ckpt + 1, &mut state),
            });
        }
        plan = plan.with(Fault::MalformedTuple {
            cause: pick(ckpt + 1, &mut state),
        });
        // Stale by construction: feeds tick forward at least one unit
        // per row, so a 1 µs punctuation is far behind the stream clock
        // by the time any post-checkpoint cause fires.
        let at = pick(ckpt + 1, &mut state);
        plan.with(Fault::StaleWatermark {
            cause: at,
            micros: 1,
        })
    }

    /// Every scheduled fault, in cause order.
    pub fn faults(&self) -> impl Iterator<Item = &Fault> {
        self.by_cause.values().flatten()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.by_cause.values().map(Vec::len).sum()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.by_cause.is_empty()
    }

    /// Fire every fault scheduled at `cause` (the index the *next* push
    /// will be stamped with — pass [`ShardedEngine::next_cause`]).
    /// `values` is the row about to be pushed; [`Fault::MalformedTuple`]
    /// corrupts it in place. Returns the faults that fired, for the
    /// harness log.
    pub fn apply(
        &self,
        se: &mut ShardedEngine,
        cause: u64,
        values: &mut Vec<Value>,
    ) -> Result<Vec<Fault>> {
        let Some(faults) = self.by_cause.get(&cause) else {
            return Ok(Vec::new());
        };
        for fault in faults {
            match fault {
                Fault::PanicAtCause { shard, cause } => {
                    let msg = format!("injected fault: worker panic at cause {cause}");
                    se.inject_fault(*shard, move |_| panic!("{msg}"))?;
                }
                Fault::MalformedTuple { .. } => {
                    values.truncate(1);
                }
                Fault::StaleWatermark { micros, .. } => {
                    se.advance_to(crate::time::Timestamp::from_micros(*micros))?;
                }
                Fault::CheckpointAtCause { .. } => {
                    se.checkpoint()?;
                }
            }
        }
        Ok(faults.clone())
    }

    /// How many router cause indices the faults at `cause` consume
    /// (each [`Fault::StaleWatermark`] broadcasts one punctuation, which
    /// takes a cause). A reference harness replaying the same feed on a
    /// single engine advances its simulated cause counter by this much
    /// before mapping the next row.
    pub fn consumed_at(&self, cause: u64) -> u64 {
        self.by_cause.get(&cause).map_or(0, |fs| {
            fs.iter()
                .filter(|f| matches!(f, Fault::StaleWatermark { .. }))
                .count() as u64
        })
    }

    /// Corrupt `values` if (and only if) a [`Fault::MalformedTuple`] is
    /// scheduled at `cause` — the reference-run half of a differential
    /// harness, which must feed the same corrupted row to the single
    /// engine without firing any recovery faults.
    pub fn corrupt_only(&self, cause: u64, values: &mut Vec<Value>) {
        if let Some(faults) = self.by_cause.get(&cause) {
            if faults
                .iter()
                .any(|f| matches!(f, Fault::MalformedTuple { .. }))
            {
                values.truncate(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 4, 200);
        let b = FaultPlan::seeded(42, 4, 200);
        let fa: Vec<&Fault> = a.faults().collect();
        let fb: Vec<&Fault> = b.faults().collect();
        assert_eq!(fa, fb, "same seed, same schedule");
        assert!(a.len() >= 4, "panics + malformed + stale + checkpoint");
        let c = FaultPlan::seeded(43, 4, 200);
        assert_ne!(
            fa,
            c.faults().collect::<Vec<_>>(),
            "different seed, different schedule"
        );
    }

    #[test]
    fn seeded_faults_land_after_the_checkpoint() {
        let plan = FaultPlan::seeded(7, 2, 120);
        let ckpt = plan
            .faults()
            .find_map(|f| match f {
                Fault::CheckpointAtCause { cause } => Some(*cause),
                _ => None,
            })
            .expect("plan includes a checkpoint");
        for f in plan.faults() {
            if !matches!(f, Fault::CheckpointAtCause { .. }) {
                assert!(
                    f.cause() > ckpt,
                    "{f} must exercise restore+replay, not replay-from-zero"
                );
            }
        }
    }

    #[test]
    fn corrupt_only_mirrors_malformed_schedule() {
        let plan = FaultPlan::new()
            .with(Fault::MalformedTuple { cause: 5 })
            .with(Fault::PanicAtCause { shard: 0, cause: 9 });
        let mut row = vec![Value::Int(1), Value::Int(2)];
        plan.corrupt_only(4, &mut row);
        assert_eq!(row.len(), 2, "no fault at cause 4");
        plan.corrupt_only(9, &mut row);
        assert_eq!(row.len(), 2, "panic faults do not corrupt rows");
        plan.corrupt_only(5, &mut row);
        assert_eq!(row.len(), 1, "malformed fault truncates");
    }
}
