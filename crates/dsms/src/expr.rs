//! Row expressions.
//!
//! Expressions are evaluated against an *evaluation row*: an ordered list
//! of tuples, one per relation visible at that point of the query (one for
//! single-stream transducers, two inside a join or correlated sub-query,
//! one per sequence element inside a SEQ predicate). Column references are
//! resolved to `(relation index, column index)` pairs at plan time, so
//! evaluation never looks up names.

use crate::error::{DsmsError, Result};
use crate::time::Duration;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A user-defined scalar function: pure `fn(&[Value]) -> Result<Value>`.
///
/// ESL exposes UDFs to SQL (Example 3 uses `extract_serial`); we register
/// them by name in a [`FunctionRegistry`].
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Named registry of scalar UDFs, shared by the planner and the executor.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    funcs: HashMap<String, ScalarFn>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name` (case-insensitive). Re-registration
    /// replaces the previous definition.
    pub fn register(&mut self, name: &str, f: ScalarFn) {
        self.funcs.insert(name.to_ascii_lowercase(), f);
    }

    /// Look up a function. Keys are stored lowercased (see
    /// [`FunctionRegistry::register`]), so an already-lowercase caller —
    /// every planner-compiled expression — probes without allocating.
    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            self.funcs.get(&name.to_ascii_lowercase())
        } else {
            self.funcs.get(name)
        }
    }

    /// Names of all registered functions, for error messages.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.funcs.keys().map(|s| s.as_str())
    }
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-` (also timestamp difference, yielding an integer microsecond span)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (three-valued)
    And,
    /// `OR` (three-valued)
    Or,
}

/// A compiled row expression.
#[derive(Clone)]
pub enum Expr {
    /// Literal constant.
    Lit(Value),
    /// Column `col` of relation `rel` in the evaluation row.
    Col {
        /// Index of the relation in the evaluation row.
        rel: usize,
        /// Column index within that relation's tuple.
        col: usize,
    },
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `NOT e` (three-valued).
    Not(Box<Expr>),
    /// `e IS NULL`.
    IsNull(Box<Expr>),
    /// SQL `LIKE` with `%` and `_` wildcards; pattern fixed at plan time.
    Like(Box<Expr>, LikePattern),
    /// Call of a registered scalar UDF.
    Call {
        /// Function name (for display).
        name: String,
        /// Resolved function.
        func: ScalarFn,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A duration literal (e.g. `5 SECONDS`), exposed as an Int of
    /// microseconds so it can be compared with timestamp differences.
    Dur(Duration),
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "Lit({v:?})"),
            Expr::Col { rel, col } => write!(f, "Col({rel}.{col})"),
            Expr::Bin(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::Not(e) => write!(f, "Not({e:?})"),
            Expr::IsNull(e) => write!(f, "IsNull({e:?})"),
            Expr::Like(e, p) => write!(f, "Like({e:?}, {:?})", p.raw()),
            Expr::Call { name, args, .. } => write!(f, "{name}({args:?})"),
            Expr::Dur(d) => write!(f, "Dur({d})"),
        }
    }
}

impl Expr {
    /// Shorthand: column of the first (only) relation.
    pub fn col(col: usize) -> Expr {
        Expr::Col { rel: 0, col }
    }

    /// Shorthand: qualified column.
    pub fn qcol(rel: usize, col: usize) -> Expr {
        Expr::Col { rel, col }
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Shorthand: `a op b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Shorthand: equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// Canonicalize every string literal in the expression tree through
    /// `interner`, in place. Operators call this when a codec is bound so
    /// literal outputs (and literal comparisons) carry canonical `Arc`s —
    /// downstream symbol lookups then hit the pointer fast path instead
    /// of hashing string bytes per row.
    pub fn canonicalize_lits(&mut self, interner: &crate::intern::StrInterner) {
        match self {
            Expr::Lit(v) => interner.canonicalize(v),
            Expr::Bin(_, a, b) => {
                a.canonicalize_lits(interner);
                b.canonicalize_lits(interner);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::Like(e, _) => e.canonicalize_lits(interner),
            Expr::Call { args, .. } => {
                for a in args {
                    a.canonicalize_lits(interner);
                }
            }
            Expr::Col { .. } | Expr::Dur(_) => {}
        }
    }

    /// Shorthand: conjunction.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::And, a, b)
    }

    /// Evaluate against an evaluation row.
    ///
    /// SQL three-valued logic: comparisons involving NULL yield NULL
    /// (`Value::Null`); `AND`/`OR`/`NOT` follow Kleene logic.
    pub fn eval(&self, row: &[&Tuple]) -> Result<Value> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Dur(d) => Ok(Value::Int(d.as_micros() as i64)),
            Expr::Col { rel, col } => {
                let t = row.get(*rel).ok_or_else(|| {
                    DsmsError::eval(format!("relation {rel} not bound in evaluation row"))
                })?;
                t.get(*col)
                    .cloned()
                    .ok_or_else(|| DsmsError::eval(format!("column {col} out of range")))
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(DsmsError::eval(format!(
                    "NOT applied to non-boolean {other}"
                ))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Like(e, pat) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(pat.matches(&s))),
                other => Err(DsmsError::eval(format!(
                    "LIKE applied to non-string {other}"
                ))),
            },
            Expr::Call { func, args, name } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                func(&vals).map_err(|e| DsmsError::eval(format!("in {name}(): {e}")))
            }
            Expr::Bin(op, a, b) => {
                let op = *op;
                if op == BinOp::And || op == BinOp::Or {
                    return eval_logic(op, a, b, row);
                }
                let av = a.eval(row)?;
                let bv = b.eval(row)?;
                eval_bin(op, &av, &bv)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn eval_bool(&self, row: &[&Tuple]) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(DsmsError::eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn eval_logic(op: BinOp, a: &Expr, b: &Expr, row: &[&Tuple]) -> Result<Value> {
    let av = a.eval(row)?;
    // Short circuit where three-valued logic allows it.
    match (op, &av) {
        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let bv = b.eval(row)?;
    let as_tri = |v: &Value| -> Result<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(DsmsError::eval(format!(
                "logic operator applied to non-boolean {other}"
            ))),
        }
    };
    let (x, y) = (as_tri(&av)?, as_tri(&bv)?);
    let r = match op {
        BinOp::And => match (x, y) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (x, y) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!(),
    };
    Ok(r.map_or(Value::Null, Value::Bool))
}

fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge => {
            let cmp = a.sql_cmp(b);
            Ok(match cmp {
                None => {
                    if a.is_null() || b.is_null() {
                        Value::Null
                    } else {
                        return Err(DsmsError::eval(format!(
                            "cannot compare {} with {}",
                            a.value_type(),
                            b.value_type()
                        )));
                    }
                }
                Some(o) => Value::Bool(match op {
                    Eq => o == Ordering::Equal,
                    Ne => o != Ordering::Equal,
                    Lt => o == Ordering::Less,
                    Le => o != Ordering::Greater,
                    Gt => o == Ordering::Greater,
                    Ge => o != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        Add | Sub | Mul | Div | Mod => {
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            // Timestamp arithmetic: ts - ts = Int micros; ts ± Int micros = ts.
            match (a, b, op) {
                (Value::Ts(x), Value::Ts(y), Sub) => {
                    return Ok(Value::Int(x.as_micros() as i64 - y.as_micros() as i64));
                }
                (Value::Ts(x), Value::Int(d), Add) => {
                    return Ok(Value::Ts(crate::time::Timestamp(
                        (x.as_micros() as i64 + d) as u64,
                    )));
                }
                (Value::Ts(x), Value::Int(d), Sub) => {
                    return Ok(Value::Ts(crate::time::Timestamp(
                        (x.as_micros() as i64 - d) as u64,
                    )));
                }
                _ => {}
            }
            match (a, b) {
                (Value::Int(x), Value::Int(y)) => match op {
                    Add => Ok(Value::Int(x.wrapping_add(*y))),
                    Sub => Ok(Value::Int(x.wrapping_sub(*y))),
                    Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                    Div => {
                        if *y == 0 {
                            Err(DsmsError::eval("integer division by zero"))
                        } else {
                            Ok(Value::Int(x / y))
                        }
                    }
                    Mod => {
                        if *y == 0 {
                            Err(DsmsError::eval("integer modulo by zero"))
                        } else {
                            Ok(Value::Int(x % y))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let (x, y) = (
                        a.as_float().ok_or_else(|| {
                            DsmsError::eval(format!("arithmetic on {}", a.value_type()))
                        })?,
                        b.as_float().ok_or_else(|| {
                            DsmsError::eval(format!("arithmetic on {}", b.value_type()))
                        })?,
                    );
                    Ok(Value::Float(match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                        Mod => x % y,
                        _ => unreachable!(),
                    }))
                }
            }
        }
        And | Or => unreachable!("handled in eval_logic"),
    }
}

/// A compiled SQL `LIKE` pattern (`%` = any run, `_` = any single char).
///
/// Compiled once at plan time; matching is a standard two-pointer
/// backtracking scan with no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikePattern {
    raw: String,
    parts: Vec<LikePart>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LikePart {
    Literal(String),
    AnyRun,    // %
    AnySingle, // _
}

impl LikePattern {
    /// Compile a pattern. No escape syntax (the paper's examples use none).
    pub fn compile(pattern: &str) -> LikePattern {
        let mut parts = Vec::new();
        let mut lit = String::new();
        for ch in pattern.chars() {
            match ch {
                '%' => {
                    if !lit.is_empty() {
                        parts.push(LikePart::Literal(std::mem::take(&mut lit)));
                    }
                    // Collapse consecutive % into one.
                    if parts.last() != Some(&LikePart::AnyRun) {
                        parts.push(LikePart::AnyRun);
                    }
                }
                '_' => {
                    if !lit.is_empty() {
                        parts.push(LikePart::Literal(std::mem::take(&mut lit)));
                    }
                    parts.push(LikePart::AnySingle);
                }
                c => lit.push(c),
            }
        }
        if !lit.is_empty() {
            parts.push(LikePart::Literal(lit));
        }
        LikePattern {
            raw: pattern.to_string(),
            parts,
        }
    }

    /// The original pattern text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Match `s` against the pattern (whole-string match, like SQL).
    pub fn matches(&self, s: &str) -> bool {
        fn rec(parts: &[LikePart], s: &str) -> bool {
            match parts.first() {
                None => s.is_empty(),
                Some(LikePart::Literal(l)) => s
                    .strip_prefix(l.as_str())
                    .is_some_and(|rest| rec(&parts[1..], rest)),
                Some(LikePart::AnySingle) => {
                    let mut cs = s.chars();
                    cs.next().is_some() && rec(&parts[1..], cs.as_str())
                }
                Some(LikePart::AnyRun) => {
                    // Try every split point, shortest first.
                    if rec(&parts[1..], s) {
                        return true;
                    }
                    let mut cs = s.chars();
                    while cs.next().is_some() {
                        if rec(&parts[1..], cs.as_str()) {
                            return true;
                        }
                    }
                    false
                }
            }
        }
        rec(&self.parts, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals, Timestamp::ZERO, 0)
    }

    #[test]
    fn literals_and_columns() {
        let tup = t(vec![Value::Int(7), Value::str("x")]);
        assert_eq!(Expr::lit(3i64).eval(&[&tup]).unwrap(), Value::Int(3));
        assert_eq!(Expr::col(0).eval(&[&tup]).unwrap(), Value::Int(7));
        assert_eq!(Expr::col(1).eval(&[&tup]).unwrap(), Value::str("x"));
        assert!(Expr::col(9).eval(&[&tup]).is_err());
    }

    #[test]
    fn qualified_columns_use_relation_index() {
        let a = t(vec![Value::Int(1)]);
        let b = t(vec![Value::Int(2)]);
        let e = Expr::bin(BinOp::Add, Expr::qcol(0, 0), Expr::qcol(1, 0));
        assert_eq!(e.eval(&[&a, &b]).unwrap(), Value::Int(3));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let tup = t(vec![]);
        let e = Expr::bin(BinOp::Mul, Expr::lit(6i64), Expr::lit(7i64));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Int(42));
        let e = Expr::bin(BinOp::Div, Expr::lit(1.0), Expr::lit(4.0));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Float(0.25));
        let e = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(e.eval(&[&tup]).is_err());
        let e = Expr::bin(BinOp::Mod, Expr::lit(7i64), Expr::lit(4i64));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Int(3));
    }

    #[test]
    fn timestamp_difference_is_micros() {
        let tup = t(vec![
            Value::Ts(Timestamp::from_secs(10)),
            Value::Ts(Timestamp::from_secs(4)),
        ]);
        let e = Expr::bin(BinOp::Sub, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Int(6_000_000));
        // Comparable against a Dur literal.
        let cmp = Expr::bin(BinOp::Le, e, Expr::Dur(Duration::from_secs(6)));
        assert_eq!(cmp.eval(&[&tup]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let tup = t(vec![Value::Null]);
        let null = Expr::col(0);
        let tru = Expr::lit(true);
        let fal = Expr::lit(false);
        // NULL AND false = false; NULL OR true = true; NULL AND true = NULL.
        let is_null_cmp = Expr::eq(null.clone(), Expr::lit(1i64));
        assert_eq!(is_null_cmp.eval(&[&tup]).unwrap(), Value::Null);
        let e = Expr::and(is_null_cmp.clone(), fal);
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Bool(false));
        let e = Expr::bin(BinOp::Or, is_null_cmp.clone(), tru);
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Bool(true));
        let e = Expr::and(is_null_cmp, Expr::lit(true));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Null);
        // WHERE semantics: NULL is false.
        assert!(!Expr::eq(null.clone(), Expr::lit(1i64))
            .eval_bool(&[&tup])
            .unwrap());
        // NOT NULL = NULL, IS NULL works.
        assert_eq!(
            Expr::Not(Box::new(Expr::eq(null.clone(), Expr::lit(1i64))))
                .eval(&[&tup])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::IsNull(Box::new(null)).eval(&[&tup]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn comparison_operators() {
        let tup = t(vec![]);
        for (op, want) in [
            (BinOp::Lt, true),
            (BinOp::Le, true),
            (BinOp::Gt, false),
            (BinOp::Ge, false),
            (BinOp::Ne, true),
            (BinOp::Eq, false),
        ] {
            let e = Expr::bin(op, Expr::lit(1i64), Expr::lit(2i64));
            assert_eq!(e.eval(&[&tup]).unwrap(), Value::Bool(want), "{op:?}");
        }
    }

    #[test]
    fn udf_call() {
        let mut reg = FunctionRegistry::new();
        reg.register(
            "extract_serial",
            Arc::new(|args: &[Value]| {
                let s = args[0]
                    .as_str()
                    .ok_or_else(|| DsmsError::eval("expected string"))?;
                let serial = s.rsplit('.').next().unwrap_or("");
                serial
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|e| DsmsError::eval(e.to_string()))
            }),
        );
        let f = reg.get("EXTRACT_SERIAL").unwrap().clone();
        let e = Expr::Call {
            name: "extract_serial".into(),
            func: f,
            args: vec![Expr::lit("20.17.5001")],
        };
        let tup = t(vec![]);
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Int(5001));
    }

    #[test]
    fn like_patterns() {
        let cases = [
            ("20.%.%", "20.17.5001", true),
            ("20.%.%", "21.17.5001", false),
            ("20.%", "20.", true),
            ("20.%", "20", false),
            ("%abc", "xyzabc", true),
            ("%abc%", "abc", true),
            ("a_c", "abc", true),
            ("a_c", "ac", false),
            ("a%%c", "axyzc", true),
            ("", "", true),
            ("%", "", true),
            ("_", "", false),
        ];
        for (pat, s, want) in cases {
            assert_eq!(
                LikePattern::compile(pat).matches(s),
                want,
                "pattern {pat:?} on {s:?}"
            );
        }
    }

    #[test]
    fn like_on_null_is_null() {
        let tup = t(vec![Value::Null]);
        let e = Expr::Like(Box::new(Expr::col(0)), LikePattern::compile("a%"));
        assert_eq!(e.eval(&[&tup]).unwrap(), Value::Null);
    }
}
