//! Flight-recorder tracing: a fixed-capacity ring buffer of structured
//! trace events, plus the sampled end-to-end latency stamp table and a
//! chrome://tracing JSON exporter.
//!
//! The recorder is **off by default** and costs one relaxed atomic load
//! per instrumentation site while disabled — event construction happens
//! inside a closure that only runs when tracing is on, so the disabled
//! path performs zero allocations. When enabled, events land in a
//! bounded ring (oldest dropped first) guarded by a mutex; the hot paths
//! that record are already sampled 1-in-64, so contention is negligible.
//!
//! Per-shard rings are merged by [`FlightRecorder::merge`], which tags
//! each event with its shard and re-sorts by wall-clock nanoseconds so
//! the combined timeline reads in true time order. [`chrome_trace_json`]
//! renders any event slice in the Trace Event Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default ring capacity used by engines and the shard router.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Number of in-flight latency stamp slots (one per sampled admission).
const STAMP_SLOTS: usize = 64;

/// Wall-clock nanoseconds since the Unix epoch (saturating).
#[inline]
pub fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// What happened, with the payload that makes the event useful on a
/// timeline. Variants mirror the engine's observable state changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A sampled tuple entered a stream (`seq` is the engine sequence).
    TupleAdmitted {
        /// Stream the tuple entered.
        stream: String,
        /// Engine-assigned sequence number.
        seq: u64,
    },
    /// One sampled operator-stage run: the enter/exit pair collapsed
    /// into a single complete span of `wall_ns` nanoseconds.
    Stage {
        /// Query the stage belongs to.
        query: String,
        /// Tuples processed by this run.
        tuples: u64,
        /// Wall time of the run, in nanoseconds.
        wall_ns: u64,
    },
    /// The engine watermark advanced to `ts_us` (event-time micros).
    WatermarkAdvance {
        /// New watermark position in event-time microseconds.
        ts_us: u64,
    },
    /// A checkpoint was captured (`bytes` of serialized state).
    Checkpoint {
        /// Serialized checkpoint size in bytes.
        bytes: u64,
    },
    /// A shard worker was restarted and `replayed` journal entries
    /// were re-fed.
    ShardRestart {
        /// Shard index that restarted.
        shard: u32,
        /// Journal entries replayed during recovery.
        replayed: u64,
    },
    /// A malformed tuple was rejected into the dead-letter buffer.
    DeadLetter {
        /// Stream the rejected tuple was pushed at.
        stream: String,
    },
    /// A sampled tuple's outputs reached a sink `latency_ns` after its
    /// admission stamp.
    TupleEmitted {
        /// End-to-end ingest→emit latency in nanoseconds.
        latency_ns: u64,
    },
}

impl TraceKind {
    /// Short stable name used by exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::TupleAdmitted { .. } => "tuple-admitted",
            TraceKind::Stage { .. } => "stage",
            TraceKind::WatermarkAdvance { .. } => "watermark-advance",
            TraceKind::Checkpoint { .. } => "checkpoint",
            TraceKind::ShardRestart { .. } => "shard-restart",
            TraceKind::DeadLetter { .. } => "dead-letter",
            TraceKind::TupleEmitted { .. } => "tuple-emitted",
        }
    }
}

/// One recorded event: when (wall-clock ns), where (shard, once
/// merged), and what ([`TraceKind`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Wall-clock nanoseconds since the Unix epoch at record time.
    pub at_ns: u64,
    /// Shard the event came from; `None` until a merge tags it.
    pub shard: Option<u32>,
    /// The event payload.
    pub kind: TraceKind,
}

/// Bounded, shareable ring buffer of [`TraceEvent`]s.
///
/// Clones share the same ring and enabled flag, so an engine and the
/// REPL (or a shard worker and its router) observe one recorder.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    enabled: Arc<AtomicBool>,
    ring: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl FlightRecorder {
    /// Fresh disabled recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: Arc::new(AtomicBool::new(false)),
            ring: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity: capacity.max(1),
        }
    }

    /// Turn recording on or off. Off is the default; while off,
    /// [`FlightRecorder::record`] is a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently being captured.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record the event produced by `kind` — the closure only runs (and
    /// only then may allocate) when tracing is enabled.
    #[inline]
    pub fn record(&self, kind: impl FnOnce() -> TraceKind) {
        if !self.enabled() {
            return;
        }
        self.push(TraceEvent {
            at_ns: wall_ns(),
            shard: None,
            kind: kind(),
        });
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// True when nothing has been captured (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum events retained before the oldest are dropped.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Copy the buffered events without clearing them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Remove and return every buffered event.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .drain(..)
            .collect()
    }

    /// Merge per-shard event buffers into one timeline: each event is
    /// tagged with its shard (existing tags are preserved) and the
    /// result is sorted by wall-clock time, ties broken by shard.
    pub fn merge(parts: Vec<(u32, Vec<TraceEvent>)>) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum());
        for (shard, events) in parts {
            for mut ev in events {
                ev.shard.get_or_insert(shard);
                all.push(ev);
            }
        }
        all.sort_by_key(|e| (e.at_ns, e.shard));
        all
    }
}

/// In-flight admission stamps for sampled end-to-end latency.
///
/// A fixed array of `(key, Instant)` slots indexed by `(key >> 6) %
/// SLOTS` — keys are sampled 1-in-64 (multiples of 64), so consecutive
/// samples occupy consecutive slots and a lookup is one index plus one
/// compare. No allocation after construction, which keeps the latency
/// path inside the zero-allocs-per-tuple budget.
#[derive(Debug)]
pub struct LatencyStamps {
    slots: Box<[(u64, Instant)]>,
}

impl Default for LatencyStamps {
    fn default() -> LatencyStamps {
        LatencyStamps::new()
    }
}

impl LatencyStamps {
    /// Fresh table with every slot vacant.
    pub fn new() -> LatencyStamps {
        LatencyStamps {
            slots: vec![(u64::MAX, Instant::now()); STAMP_SLOTS].into_boxed_slice(),
        }
    }

    /// Whether `key` is one of the 1-in-64 sampled keys.
    #[inline]
    pub fn sampled(key: u64) -> bool {
        key & 63 == 0
    }

    /// Stamp `key` with the current instant (call only for sampled
    /// keys; an old stamp sharing the slot is overwritten).
    #[inline]
    pub fn stamp(&mut self, key: u64) {
        let idx = ((key >> 6) as usize) % STAMP_SLOTS;
        self.slots[idx] = (key, Instant::now());
    }

    /// Elapsed time since `key` was stamped, vacating the slot. `None`
    /// when the key was never stamped or its slot was reused.
    #[inline]
    pub fn take(&mut self, key: u64) -> Option<std::time::Duration> {
        let idx = ((key >> 6) as usize) % STAMP_SLOTS;
        let (k, t0) = self.slots[idx];
        if k != key {
            return None;
        }
        self.slots[idx].0 = u64::MAX;
        Some(t0.elapsed())
    }
}

/// Render events in the Chrome Trace Event Format (JSON object form):
/// load the output in `chrome://tracing` or Perfetto. Timestamps are
/// rebased to the earliest event so the viewer opens at t=0; stage
/// events render as complete (`"ph":"X"`) spans, everything else as
/// instant events, with one process row per shard.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let t0 = events.iter().map(|e| e.at_ns).min().unwrap_or(0);
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let pid = ev.shard.unwrap_or(0);
        let rel_us = (ev.at_ns.saturating_sub(t0)) as f64 / 1000.0;
        match &ev.kind {
            TraceKind::Stage {
                query,
                tuples,
                wall_ns,
            } => {
                let dur_us = *wall_ns as f64 / 1000.0;
                let ts = (rel_us - dur_us).max(0.0);
                out.push_str(&format!(
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur_us:.3},\
                     \"pid\":{pid},\"tid\":0,\"args\":{{\"tuples\":{tuples}}}}}",
                    json_str(query),
                ));
            }
            kind => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{rel_us:.3},\
                     \"pid\":{pid},\"tid\":0,\"args\":{{{}}}}}",
                    kind.name(),
                    kind_args(kind),
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

fn kind_args(kind: &TraceKind) -> String {
    match kind {
        TraceKind::TupleAdmitted { stream, seq } => {
            format!("\"stream\":{},\"seq\":{seq}", json_str(stream))
        }
        TraceKind::Stage { .. } => String::new(),
        TraceKind::WatermarkAdvance { ts_us } => format!("\"ts_us\":{ts_us}"),
        TraceKind::Checkpoint { bytes } => format!("\"bytes\":{bytes}"),
        TraceKind::ShardRestart { shard, replayed } => {
            format!("\"shard\":{shard},\"replayed\":{replayed}")
        }
        TraceKind::DeadLetter { stream } => format!("\"stream\":{}", json_str(stream)),
        TraceKind::TupleEmitted { latency_ns } => format!("\"latency_ns\":{latency_ns}"),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admitted(stream: &str, seq: u64) -> TraceKind {
        TraceKind::TupleAdmitted {
            stream: stream.to_string(),
            seq,
        }
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let rec = FlightRecorder::new(8);
        assert!(!rec.enabled());
        rec.record(|| admitted("readings", 0));
        assert!(rec.is_empty());
        rec.set_enabled(true);
        rec.record(|| admitted("readings", 64));
        assert_eq!(rec.len(), 1);
        rec.set_enabled(false);
        rec.record(|| admitted("readings", 128));
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ring_capacity_is_respected_oldest_dropped() {
        let rec = FlightRecorder::new(4);
        rec.set_enabled(true);
        for seq in 0..10u64 {
            rec.record(|| admitted("s", seq));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.capacity(), 4);
        let events = rec.drain();
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| match &e.kind {
                TraceKind::TupleAdmitted { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "survivors are the newest");
        assert!(rec.is_empty(), "drain clears the ring");
    }

    #[test]
    fn clones_share_the_ring_and_flag() {
        let rec = FlightRecorder::new(8);
        let peer = rec.clone();
        peer.set_enabled(true);
        rec.record(|| TraceKind::Checkpoint { bytes: 10 });
        assert_eq!(peer.len(), 1);
        assert_eq!(peer.snapshot().len(), 1);
        assert_eq!(rec.len(), 1, "snapshot does not drain");
    }

    #[test]
    fn merge_orders_by_time_and_tags_shards() {
        let mk = |at_ns: u64| TraceEvent {
            at_ns,
            shard: None,
            kind: TraceKind::WatermarkAdvance { ts_us: at_ns },
        };
        let merged = FlightRecorder::merge(vec![
            (1, vec![mk(50), mk(300)]),
            (0, vec![mk(10), mk(200), mk(400)]),
        ]);
        let times: Vec<u64> = merged.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![10, 50, 200, 300, 400]);
        assert!(merged.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(merged[0].shard, Some(0));
        assert_eq!(merged[1].shard, Some(1));
    }

    #[test]
    fn chrome_export_shape() {
        let events = vec![
            TraceEvent {
                at_ns: 1_000,
                shard: Some(0),
                kind: admitted("readings", 64),
            },
            TraceEvent {
                at_ns: 5_000,
                shard: Some(1),
                kind: TraceKind::Stage {
                    query: "dedup".into(),
                    tuples: 64,
                    wall_ns: 2_000,
                },
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"tuple-admitted\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"pid\":1"));
        // Rebased: the first event sits at ts 0.
        assert!(json.contains("\"ts\":0.000"));
    }

    #[test]
    fn latency_stamps_round_trip() {
        let mut stamps = LatencyStamps::new();
        assert!(LatencyStamps::sampled(0));
        assert!(LatencyStamps::sampled(64));
        assert!(!LatencyStamps::sampled(65));
        stamps.stamp(64);
        assert!(stamps.take(128).is_none(), "unknown key misses");
        let d = stamps.take(64).expect("stamped key hits");
        assert!(d.as_secs() < 60);
        assert!(stamps.take(64).is_none(), "slot vacated after take");
        // Slot reuse: a colliding newer key evicts the older stamp.
        stamps.stamp(0);
        stamps.stamp(64 * STAMP_SLOTS as u64);
        assert!(stamps.take(0).is_none());
        assert!(stamps.take(64 * STAMP_SLOTS as u64).is_some());
    }
}
