//! Persistent in-memory tables.
//!
//! The paper's stream-DB spanning queries (Example 2: location tracking;
//! context retrieval in §2.1) read and update database tables from
//! continuous queries. We provide an in-memory table with optional hash
//! indexes — durable storage is out of scope for the reproduction, and the
//! experiments only measure row counts and lookup behaviour.

use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::expr::Expr;
use crate::hash::FnvBuildHasher;
use crate::intern::StrInterner;
use crate::key::{KeyCodec, StateKey};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One hash index: encoded key -> row positions.
type Index = HashMap<StateKey, Vec<usize>, FnvBuildHasher>;

/// A mutable, optionally-indexed relational table.
///
/// Indexes key on compact [`StateKey`] encodings with a table-private
/// interner: keys intern only on write paths (insert/update/rebuild),
/// while probes use a non-inserting lookup — a string the table has
/// never stored cannot match any row, so a dictionary miss answers the
/// probe without growing the dictionary.
#[derive(Debug)]
pub struct Table {
    schema: SchemaRef,
    codec: KeyCodec,
    inner: RwLock<TableInner>,
}

#[derive(Debug, Default)]
struct TableInner {
    rows: Vec<Tuple>,
    /// Hash indexes: column index -> (encoded value -> row positions).
    indexes: HashMap<usize, Index>,
    next_seq: u64,
}

/// Shared table handle.
pub type TableRef = Arc<Table>;

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: SchemaRef) -> TableRef {
        Arc::new(Table {
            schema,
            codec: KeyCodec::interned(Arc::new(StrInterner::new())),
            inner: RwLock::new(TableInner::default()),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Encode an index key on a write path (interns new strings).
    fn index_key(&self, v: &Value) -> StateKey {
        self.codec.encode(std::slice::from_ref(v))
    }

    /// Rebuild every existing hash index over the current rows.
    fn rebuild_indexes(&self, inner: &mut TableInner) {
        let cols: Vec<usize> = inner.indexes.keys().copied().collect();
        for c in cols {
            let mut idx = Index::default();
            for (i, row) in inner.rows.iter().enumerate() {
                idx.entry(self.index_key(row.value(c))).or_default().push(i);
            }
            inner.indexes.insert(c, idx);
        }
    }

    /// Create a hash index on a column (by name). Indexing an already
    /// indexed column is a no-op.
    pub fn create_index(&self, column: &str) -> Result<()> {
        let col = self.schema.require_column(column)?;
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(&col) {
            return Ok(());
        }
        let mut idx = Index::default();
        for (i, row) in inner.rows.iter().enumerate() {
            idx.entry(self.index_key(row.value(col)))
                .or_default()
                .push(i);
        }
        inner.indexes.insert(col, idx);
        Ok(())
    }

    /// Insert a row (validated against the schema).
    pub fn insert(&self, values: Vec<Value>) -> Result<()> {
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        let t = Tuple::for_schema(&self.schema, values, seq)?;
        inner.next_seq += 1;
        let pos = inner.rows.len();
        // Borrow dance: collect index keys first, then update.
        let keys: Vec<(usize, StateKey)> = inner
            .indexes
            .keys()
            .map(|&c| (c, self.index_key(t.value(c))))
            .collect();
        for (c, k) in keys {
            inner
                .indexes
                .get_mut(&c)
                .expect("index exists")
                .entry(k)
                .or_default()
                .push(pos);
        }
        inner.rows.push(t);
        Ok(())
    }

    /// Insert a pre-built tuple (used by INSERT INTO table SELECT ...).
    pub fn insert_tuple(&self, t: &Tuple) -> Result<()> {
        self.insert(t.values().to_vec())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Full scan snapshot.
    pub fn scan(&self) -> Vec<Tuple> {
        self.inner.read().rows.clone()
    }

    /// Rows where column `col` equals `key`; uses the hash index when one
    /// exists, otherwise scans.
    pub fn lookup(&self, column: &str, key: &Value) -> Result<Vec<Tuple>> {
        let col = self.schema.require_column(column)?;
        let inner = self.inner.read();
        if let Some(idx) = inner.indexes.get(&col) {
            // Probe without interning: an un-interned string was never
            // written, so it cannot match any indexed row.
            let Some(probe) = self.codec.try_encode_value(key) else {
                return Ok(Vec::new());
            };
            Ok(idx
                .get(probe.as_slice())
                .map(|ps| ps.iter().map(|&p| inner.rows[p].clone()).collect())
                .unwrap_or_default())
        } else {
            Ok(inner
                .rows
                .iter()
                .filter(|r| r.value(col) == key)
                .cloned()
                .collect())
        }
    }

    /// Rows satisfying `pred` (evaluated with the row as relation 0).
    pub fn select(&self, pred: &Expr) -> Result<Vec<Tuple>> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for r in &inner.rows {
            if pred.eval_bool(&[r])? {
                out.push(r.clone());
            }
        }
        Ok(out)
    }

    /// Whether any row satisfies `pred`.
    pub fn exists(&self, pred: &Expr) -> Result<bool> {
        let inner = self.inner.read();
        for r in &inner.rows {
            if pred.eval_bool(&[r])? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Update: set column `set_col` to `set_val` on every row satisfying
    /// `pred`. Returns the number of rows changed. Indexes on the updated
    /// column are maintained.
    pub fn update(&self, pred: &Expr, set_col: &str, set_val: &Value) -> Result<usize> {
        let col = self.schema.require_column(set_col)?;
        if !set_val
            .value_type()
            .coercible_to(self.schema.columns[col].ty)
        {
            return Err(DsmsError::tuple(format!(
                "UPDATE sets `{set_col}` to incompatible {}",
                set_val.value_type()
            )));
        }
        let mut inner = self.inner.write();
        let mut changed = Vec::new();
        for (i, r) in inner.rows.iter().enumerate() {
            if pred.eval_bool(&[r])? {
                changed.push(i);
            }
        }
        for &i in &changed {
            let old = inner.rows[i].clone();
            let mut vals = old.values().to_vec();
            let old_val = vals[col].clone();
            vals[col] = set_val.clone();
            let new = Tuple::new(vals, old.ts(), old.seq());
            inner.rows[i] = new;
            if let Some(idx) = inner.indexes.get_mut(&col) {
                if let Some(ps) = idx.get_mut(&self.index_key(&old_val)) {
                    ps.retain(|&p| p != i);
                }
                idx.entry(self.index_key(set_val)).or_default().push(i);
            }
        }
        Ok(changed.len())
    }

    /// Update with a computed value: set `set_col` to `f(row)` on every
    /// row satisfying `pred` (`UPDATE t SET c = <expr> WHERE ...`).
    /// Returns the number of rows changed.
    pub fn update_map(
        &self,
        pred: &Expr,
        set_col: &str,
        f: impl Fn(&Tuple) -> Result<Value>,
    ) -> Result<usize> {
        let col = self.schema.require_column(set_col)?;
        let mut inner = self.inner.write();
        let mut changed = Vec::new();
        for (i, r) in inner.rows.iter().enumerate() {
            if pred.eval_bool(&[r])? {
                changed.push((i, f(r)?));
            }
        }
        for (i, new_val) in &changed {
            if !new_val
                .value_type()
                .coercible_to(self.schema.columns[col].ty)
            {
                return Err(DsmsError::tuple(format!(
                    "UPDATE sets `{set_col}` to incompatible {}",
                    new_val.value_type()
                )));
            }
            let old = inner.rows[*i].clone();
            let mut vals = old.values().to_vec();
            let old_val = vals[col].clone();
            vals[col] = new_val.clone();
            inner.rows[*i] = Tuple::new(vals, old.ts(), old.seq());
            if let Some(idx) = inner.indexes.get_mut(&col) {
                if let Some(ps) = idx.get_mut(&self.index_key(&old_val)) {
                    ps.retain(|&p| p != *i);
                }
                idx.entry(self.index_key(new_val)).or_default().push(*i);
            }
        }
        Ok(changed.len())
    }

    /// Flatten the table contents for a checkpoint. Indexes are not
    /// serialized — they are rebuilt on restore from the row data.
    pub fn save_state(&self) -> StateNode {
        let inner = self.inner.read();
        StateNode::List(vec![
            StateNode::List(
                inner
                    .rows
                    .iter()
                    .map(|r| StateNode::Tuple(r.clone()))
                    .collect(),
            ),
            StateNode::U64(inner.next_seq),
        ])
    }

    /// Replace the table contents from a checkpoint node, rebuilding
    /// every existing hash index over the restored rows.
    pub fn restore_state(&self, state: &StateNode) -> Result<()> {
        let rows = state
            .item(0)?
            .as_list()?
            .iter()
            .map(|n| n.as_tuple().cloned())
            .collect::<Result<Vec<Tuple>>>()?;
        let next_seq = state.item(1)?.as_u64()?;
        let mut inner = self.inner.write();
        inner.rows = rows;
        inner.next_seq = next_seq;
        self.rebuild_indexes(&mut inner);
        Ok(())
    }

    /// Delete rows satisfying `pred`. Rebuilds indexes (deletes are rare in
    /// the paper's workloads). Returns the number of rows removed.
    pub fn delete(&self, pred: &Expr) -> Result<usize> {
        let mut inner = self.inner.write();
        let before = inner.rows.len();
        let mut kept = Vec::with_capacity(before);
        for r in inner.rows.drain(..) {
            if !pred.eval_bool(&[&r])? {
                kept.push(r);
            }
        }
        inner.rows = kept;
        let removed = before - inner.rows.len();
        if removed > 0 {
            self.rebuild_indexes(&mut inner);
        }
        Ok(removed)
    }

    /// Remove the most recently inserted row whose values equal
    /// `values` — the retraction path of fast-consistency table sinks.
    /// Returns whether a row was removed.
    pub fn delete_row(&self, values: &[Value]) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(pos) = inner.rows.iter().rposition(|r| r.values() == values) else {
            return Ok(false);
        };
        inner.rows.remove(pos);
        self.rebuild_indexes(&mut inner);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn movement_table() -> TableRef {
        // The paper's object_movement(tagid, location, start_time).
        Table::new(Arc::new(
            Schema::new(
                "object_movement",
                vec![
                    ("tagid", ValueType::Str),
                    ("location", ValueType::Str),
                    ("start_time", ValueType::Ts),
                ],
                None,
            )
            .unwrap(),
        ))
    }

    fn row(tag: &str, loc: &str, secs: u64) -> Vec<Value> {
        vec![
            Value::str(tag),
            Value::str(loc),
            Value::Ts(crate::time::Timestamp::from_secs(secs)),
        ]
    }

    #[test]
    fn insert_and_scan() {
        let t = movement_table();
        t.insert(row("t1", "dock", 0)).unwrap();
        t.insert(row("t2", "aisle", 5)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan()[1].value(1).as_str(), Some("aisle"));
    }

    #[test]
    fn insert_validates_schema() {
        let t = movement_table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn lookup_with_and_without_index() {
        let t = movement_table();
        for i in 0..100 {
            t.insert(row(&format!("t{}", i % 10), "loc", i)).unwrap();
        }
        let unindexed = t.lookup("tagid", &Value::str("t3")).unwrap();
        assert_eq!(unindexed.len(), 10);
        t.create_index("tagid").unwrap();
        let indexed = t.lookup("tagid", &Value::str("t3")).unwrap();
        assert_eq!(indexed.len(), 10);
        assert_eq!(t.lookup("tagid", &Value::str("nope")).unwrap().len(), 0);
    }

    #[test]
    fn index_tracks_inserts() {
        let t = movement_table();
        t.create_index("tagid").unwrap();
        t.insert(row("a", "x", 1)).unwrap();
        t.insert(row("a", "y", 2)).unwrap();
        assert_eq!(t.lookup("tagid", &Value::str("a")).unwrap().len(), 2);
    }

    #[test]
    fn exists_and_select() {
        let t = movement_table();
        t.insert(row("a", "gate", 1)).unwrap();
        let pred = Expr::eq(Expr::col(1), Expr::lit("gate"));
        assert!(t.exists(&pred).unwrap());
        assert_eq!(t.select(&pred).unwrap().len(), 1);
        let pred2 = Expr::eq(Expr::col(1), Expr::lit("dock"));
        assert!(!t.exists(&pred2).unwrap());
    }

    #[test]
    fn update_maintains_index() {
        let t = movement_table();
        t.create_index("location").unwrap();
        t.insert(row("a", "gate", 1)).unwrap();
        t.insert(row("b", "gate", 2)).unwrap();
        let pred = Expr::eq(Expr::col(0), Expr::lit("a"));
        let n = t.update(&pred, "location", &Value::str("dock")).unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.lookup("location", &Value::str("dock")).unwrap().len(), 1);
        assert_eq!(t.lookup("location", &Value::str("gate")).unwrap().len(), 1);
    }

    #[test]
    fn update_rejects_bad_type() {
        let t = movement_table();
        t.insert(row("a", "gate", 1)).unwrap();
        let pred = Expr::lit(true);
        assert!(t.update(&pred, "location", &Value::Int(3)).is_err());
    }

    #[test]
    fn update_map_computes_per_row() {
        let t = movement_table();
        t.insert(row("a", "gate", 1)).unwrap();
        t.insert(row("b", "dock", 2)).unwrap();
        // Append a suffix to every location.
        let n = t
            .update_map(&Expr::lit(true), "location", |r| {
                Ok(Value::str(format!("{}-x", r.value(1).as_str().unwrap())))
            })
            .unwrap();
        assert_eq!(n, 2);
        let rows = t.scan();
        assert_eq!(rows[0].value(1).as_str(), Some("gate-x"));
        assert_eq!(rows[1].value(1).as_str(), Some("dock-x"));
    }

    #[test]
    fn delete_rebuilds_index() {
        let t = movement_table();
        t.create_index("tagid").unwrap();
        for i in 0..10 {
            t.insert(row(&format!("t{i}"), "loc", i)).unwrap();
        }
        let pred = Expr::eq(Expr::col(0), Expr::lit("t4"));
        assert_eq!(t.delete(&pred).unwrap(), 1);
        assert_eq!(t.len(), 9);
        assert!(t.lookup("tagid", &Value::str("t4")).unwrap().is_empty());
        assert_eq!(t.lookup("tagid", &Value::str("t9")).unwrap().len(), 1);
    }
}
