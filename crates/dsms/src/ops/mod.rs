//! Physical operators for continuous queries.
//!
//! A continuous query is a tree of operators fed by one or more source
//! streams. Operators are push-based: the engine calls [`Operator::on_tuple`]
//! for each arrival on an input port and [`Operator::on_punctuation`] when
//! stream time advances, and the operator appends any produced tuples to
//! the output vector. Punctuations are what give FOLLOWING windows and
//! `EXCEPTION_SEQ` their *active expiration* behaviour — results that must
//! be emitted even when no further tuple arrives.

mod aggregate;
mod dedup;
mod exists;
mod join;
mod project;
mod select;
mod shared;
mod speculative;

pub use aggregate::{AggSpec, AggWindow, Emission, WindowAggregate};
pub use dedup::Dedup;
pub use exists::{SemiJoinKind, WindowExists};
pub use join::BinaryJoin;
pub use project::Project;
pub use select::Select;
pub use shared::{SharedCore, SharedCoreRef, SharedTap};
pub use speculative::SpeculativeGate;

use crate::batch::ColumnBatch;
use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::key::KeyCodec;
use crate::obs::{Histogram, HistogramSnapshot};
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// How often per-stage wall-clock samples are taken: every tuple whose
/// per-stage input ordinal is a multiple of this power of two. Sampling
/// keeps the two `Instant::now` calls off the hot path while still
/// filling the latency histograms quickly.
const WALL_SAMPLE_MASK: u64 = 63;

/// Per-operator observability report: what flowed through, what is held,
/// and (when the operator is driven by an instrumented parent such as
/// [`Chain`] or the engine) how long invocations took.
#[derive(Clone, Debug, Default)]
pub struct OpReport {
    /// Operator name as shown in plans.
    pub name: String,
    /// Tuples fed into the operator.
    pub tuples_in: u64,
    /// Tuples the operator produced.
    pub tuples_out: u64,
    /// Batch invocations the operator served (0 when uninstrumented).
    pub batches: u64,
    /// Tuples currently retained in operator state.
    pub retained: usize,
    /// Encoded bytes of the operator's state keys.
    pub state_bytes: usize,
    /// Operator-specific counters (e.g. `suppressed`, `matches`).
    pub counters: Vec<(String, u64)>,
    /// Sampled wall-clock per invocation, in nanoseconds.
    pub wall_ns: Option<HistogramSnapshot>,
    /// Whether the operator would run its columnar kernel
    /// (`Some(true)`), fall back to rows (`Some(false)`), or has not
    /// said (`None` — operators without a columnar story).
    pub columnar: Option<bool>,
    /// Sub-operator reports (chain stages, detector internals).
    pub children: Vec<OpReport>,
}

impl OpReport {
    /// A report with only name and retention filled in — what an
    /// uninstrumented operator can say about itself.
    pub fn leaf(name: &str, retained: usize) -> OpReport {
        OpReport {
            name: name.to_string(),
            retained,
            ..OpReport::default()
        }
    }

    /// Indented multi-line rendering for plan/EXPLAIN display.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{}  in={} out={} retained={}",
            self.name, self.tuples_in, self.tuples_out, self.retained
        ));
        if self.batches > 0 {
            out.push_str(&format!(" batches={}", self.batches));
        }
        if self.state_bytes > 0 {
            out.push_str(&format!(" state_bytes={}", self.state_bytes));
        }
        for (k, v) in &self.counters {
            out.push_str(&format!(" {k}={v}"));
        }
        if let Some(w) = &self.wall_ns {
            if w.count > 0 {
                out.push_str(&format!(
                    " wall_mean={:.0}ns wall_p99<={}ns samples={}",
                    w.mean(),
                    w.quantile(0.99),
                    w.count
                ));
            }
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A push-based streaming operator.
pub trait Operator: Send {
    /// Handle a tuple arriving on input `port`; append outputs to `out`.
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()>;

    /// Handle a whole batch of tuples arriving in order on input `port`.
    ///
    /// The default just loops [`Operator::on_tuple`]; operators with
    /// per-invocation overhead worth amortizing (stage traversal, wall
    /// sampling, buffer churn) override it. Implementations must produce
    /// exactly the tuples the per-tuple loop would — the engine's batched
    /// path relies on that equivalence for its differential guarantees.
    fn process_batch(&mut self, port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        for t in batch {
            self.on_tuple(port, t, out)?;
        }
        Ok(())
    }

    /// Whether the operator has a columnar kernel worth handing a
    /// [`ColumnBatch`] to. The engine consults this *before* building a
    /// columnar batch, so row-only operators never pay the conversion.
    /// Defaults to `false`.
    fn columnar_capable(&self) -> bool {
        false
    }

    /// Run the operator's columnar kernel: consume a [`ColumnBatch`],
    /// produce a [`ColumnBatch`]. `Ok(None)` means "this batch is not
    /// one my kernel handles" — the caller must replay the *same* batch
    /// through the row path, which is authoritative for both output and
    /// errors. Kernels therefore never raise evaluation errors
    /// themselves: any input that could error row-wise returns `None`
    /// so the row path raises the identical error. Implementations must
    /// not mutate operator state before deciding to return `None`.
    fn columns_to_columns(
        &mut self,
        _port: usize,
        _cols: &ColumnBatch,
    ) -> Result<Option<ColumnBatch>> {
        Ok(None)
    }

    /// Selection kernels (select, dedup): decide which rows pass
    /// without building the output batch, so a terminal stage can
    /// materialize straight from the input batch's row source. Same
    /// decline contract as [`Operator::columns_to_columns`]: `Ok(None)`
    /// means "row path replays this batch", and state must not mutate
    /// before that decision.
    fn columns_to_selection(
        &mut self,
        _port: usize,
        _cols: &ColumnBatch,
    ) -> Result<Option<Vec<bool>>> {
        Ok(None)
    }

    /// Handle a columnar batch, appending row output to `out`. The
    /// default tries [`Operator::columns_to_selection`] (materializing
    /// kept rows directly), then [`Operator::columns_to_columns`],
    /// falling back to [`Operator::process_batch`] when both decline.
    /// [`Chain`] overrides this to stay columnar across consecutive
    /// supporting stages.
    fn process_columns(
        &mut self,
        port: usize,
        cols: &ColumnBatch,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if let Some(keep) = self.columns_to_selection(port, cols)? {
            return cols.extend_tuples_selected(&keep, out);
        }
        if let Some(res) = self.columns_to_columns(port, cols)? {
            return res.extend_tuples(out);
        }
        let rows = cols.to_tuples()?;
        self.process_batch(port, &rows, out)
    }

    /// Stream time has advanced to `ts`: expire state, emit anything whose
    /// window has closed. Default: nothing to do.
    fn on_punctuation(&mut self, _ts: Timestamp, _out: &mut Vec<Tuple>) -> Result<()> {
        Ok(())
    }

    /// Whether [`Operator::on_punctuation`] can emit output or observably
    /// change a later output (window-close emission, timeout detection,
    /// periodic reports). Operators whose punctuation handling is pure
    /// state hygiene — purging entries that could never influence another
    /// result — return `false`, which lets the engine coalesce the
    /// per-tuple auto-watermarks of a batch into a single punctuation
    /// without changing any output. Defaults to `true` (conservative:
    /// unknown operators keep the exact per-tuple watermark schedule).
    fn punctuation_sensitive(&self) -> bool {
        true
    }

    /// Number of input ports this operator expects.
    fn num_ports(&self) -> usize {
        1
    }

    /// Operator name for plan display.
    fn name(&self) -> &str;

    /// Adopt the engine's key codec at registration time. Stateful
    /// operators that key maps on [`crate::key::StateKey`] store the
    /// codec here so their encoding matches the engine's representation
    /// (interned symbols or raw seed bytes). Default: nothing to bind.
    fn bind_interner(&mut self, _codec: &KeyCodec) {}

    /// Total encoded bytes of the operator's state keys — the
    /// state-size metric the R1 representation sweep reports. Computed
    /// on demand (never on the hot path). Default: no keyed state.
    fn state_key_bytes(&self) -> usize {
        0
    }

    /// Approximate number of tuples currently retained in operator state —
    /// the metric the paper's Tuple Pairing Modes are designed to bound.
    fn retained(&self) -> usize {
        0
    }

    /// Observability report. The default covers name and retention;
    /// composite operators override it to expose per-stage flow counts,
    /// latency histograms and operator-specific counters.
    fn report(&self) -> OpReport {
        OpReport::leaf(self.name(), self.retained())
    }

    /// Capture the operator's mutable state as a [`StateNode`] tree for
    /// checkpointing. Stateless operators keep the default (`Unit`);
    /// every operator that retains tuples or accumulators overrides both
    /// this and [`Operator::restore_state`] so that a restored engine is
    /// observationally identical to the captured one.
    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::Unit)
    }

    /// Rebuild the operator's mutable state from a tree produced by
    /// [`Operator::save_state`] on a structurally identical operator.
    /// The default accepts only `Unit` — restoring real state into an
    /// operator that never saves any is a checkpoint-shape error.
    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        match state {
            StateNode::Unit => Ok(()),
            _ => Err(DsmsError::ckpt(format!(
                "operator `{}` does not support state restore",
                self.name()
            ))),
        }
    }
}

/// Flow counters and sampled latency for one chain stage.
struct StageStats {
    tuples_in: u64,
    tuples_out: u64,
    batches: u64,
    wall: Histogram,
}

impl StageStats {
    fn new() -> StageStats {
        StageStats {
            tuples_in: 0,
            tuples_out: 0,
            batches: 0,
            wall: Histogram::new(),
        }
    }
}

/// A single-input chain of operators: the output of each stage feeds the
/// next. This is the shape of every transducer in the paper's examples.
///
/// The chain is the pipeline's instrumentation point: it counts tuples
/// into and out of every stage and keeps a sampled wall-clock histogram
/// per stage, surfaced through [`Operator::report`].
pub struct Chain {
    stages: Vec<Box<dyn Operator>>,
    stats: Vec<StageStats>,
    name: String,
}

impl Chain {
    /// Build a chain; every stage must be single-input.
    pub fn new(stages: Vec<Box<dyn Operator>>) -> Chain {
        debug_assert!(stages.iter().all(|s| s.num_ports() == 1));
        let name = stages
            .iter()
            .map(|s| s.name().to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let stats = stages.iter().map(|_| StageStats::new()).collect();
        Chain {
            stages,
            stats,
            name,
        }
    }

    fn run_from(&mut self, start: usize, input: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        self.run_batch_from(start, std::slice::from_ref(input), out)
    }

    fn run_batch_from(
        &mut self,
        start: usize,
        batch: &[Tuple],
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        // Stage-at-a-time through the remaining pipeline: the whole batch
        // flows through a stage before the next one runs, so the two
        // `Instant::now` calls and the flow counters are paid once per
        // stage per batch, not once per tuple. Each stage may fan out
        // (nothing or many); an emptied batch short-circuits the tail.
        let stages = &mut self.stages[start..];
        let stats = &mut self.stats[start..];
        if stages.is_empty() {
            out.extend_from_slice(batch);
            return Ok(());
        }
        let mut current: Vec<Tuple> = Vec::new();
        for (i, (stage, st)) in stages.iter_mut().zip(stats.iter_mut()).enumerate() {
            let input: &[Tuple] = if i == 0 { batch } else { &current };
            // Sample when the batch starts on or crosses a 1-in-64 tuple
            // ordinal, so the sampling rate is independent of batch size.
            let sampled = st.tuples_in & WALL_SAMPLE_MASK == 0
                || (st.tuples_in >> 6) != ((st.tuples_in + input.len() as u64) >> 6);
            st.tuples_in += input.len() as u64;
            st.batches += 1;
            let mut next = Vec::new();
            let started = sampled.then(std::time::Instant::now);
            stage.process_batch(0, input, &mut next)?;
            if let Some(s) = started {
                st.wall.record_duration(s.elapsed());
            }
            st.tuples_out += next.len() as u64;
            current = next;
            if current.is_empty() {
                return Ok(());
            }
        }
        out.append(&mut current);
        Ok(())
    }
}

impl Operator for Chain {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        debug_assert_eq!(port, 0);
        self.run_from(0, t, out)
    }

    fn process_batch(&mut self, port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        debug_assert_eq!(port, 0);
        self.run_batch_from(0, batch, out)
    }

    fn columnar_capable(&self) -> bool {
        // Worth a columnar batch iff the *head* stage has a kernel; a
        // row-only head would just materialize immediately.
        self.stages.first().is_some_and(|s| s.columnar_capable())
    }

    fn process_columns(
        &mut self,
        port: usize,
        cols: &ColumnBatch,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        debug_assert_eq!(port, 0);
        // Stay columnar stage to stage; materialize rows exactly once,
        // at the first stage whose kernel declines the batch, and let
        // `run_batch_from` drive the rest (it owns the stats for the
        // stages it runs — no double counting).
        let mut owned: Option<ColumnBatch> = None;
        for i in 0..self.stages.len() {
            let cur = owned.as_ref().unwrap_or(cols);
            if !self.stages[i].columnar_capable() {
                let rows = cur.to_tuples()?;
                return self.run_batch_from(i, &rows, out);
            }
            let cur_len = cur.len() as u64;
            let sampled = {
                let st = &self.stats[i];
                st.tuples_in & WALL_SAMPLE_MASK == 0
                    || (st.tuples_in >> 6) != ((st.tuples_in + cur_len) >> 6)
            };
            let started = sampled.then(std::time::Instant::now);
            let last = i + 1 == self.stages.len();
            // Selection kernels first: a terminal selection stage
            // materializes kept rows straight off the input batch's
            // row source, never building the filtered batch.
            if let Some(keep) = self.stages[i].columns_to_selection(0, cur)? {
                let kept = keep.iter().filter(|k| **k).count() as u64;
                let st = &mut self.stats[i];
                st.tuples_in += cur_len;
                st.batches += 1;
                if let Some(s) = started {
                    st.wall.record_duration(s.elapsed());
                }
                st.tuples_out += kept;
                if kept == 0 {
                    return Ok(());
                }
                if last {
                    return cur.extend_tuples_selected(&keep, out);
                }
                owned = Some(cur.filter(&keep));
                continue;
            }
            match self.stages[i].columns_to_columns(0, cur)? {
                Some(next) => {
                    let st = &mut self.stats[i];
                    st.tuples_in += cur_len;
                    st.batches += 1;
                    if let Some(s) = started {
                        st.wall.record_duration(s.elapsed());
                    }
                    st.tuples_out += next.len() as u64;
                    if next.is_empty() {
                        return Ok(());
                    }
                    owned = Some(next);
                }
                None => {
                    let rows = cur.to_tuples()?;
                    return self.run_batch_from(i, &rows, out);
                }
            }
        }
        owned.as_ref().unwrap_or(cols).extend_tuples(out)
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        // A punctuation may release buffered tuples at any stage; those
        // must then flow through the *rest* of the chain.
        for i in 0..self.stages.len() {
            let mut released = Vec::new();
            self.stages[i].on_punctuation(ts, &mut released)?;
            self.stats[i].tuples_out += released.len() as u64;
            if !released.is_empty() {
                if i + 1 < self.stages.len() {
                    self.run_batch_from(i + 1, &released, out)?;
                } else {
                    out.append(&mut released);
                }
            }
        }
        Ok(())
    }

    fn punctuation_sensitive(&self) -> bool {
        self.stages.iter().any(|s| s.punctuation_sensitive())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        for stage in &mut self.stages {
            stage.bind_interner(codec);
        }
    }

    fn state_key_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.state_key_bytes()).sum()
    }

    fn retained(&self) -> usize {
        self.stages.iter().map(|s| s.retained()).sum()
    }

    fn report(&self) -> OpReport {
        let children = self
            .stages
            .iter()
            .zip(&self.stats)
            .map(|(stage, stats)| {
                let mut r = stage.report();
                r.tuples_in = stats.tuples_in;
                r.tuples_out = stats.tuples_out;
                r.batches = stats.batches;
                r.state_bytes = stage.state_key_bytes();
                r.wall_ns = Some(stats.wall.snapshot());
                r
            })
            .collect();
        OpReport {
            name: "chain".to_string(),
            retained: self.retained(),
            columnar: Some(self.columnar_capable()),
            children,
            ..OpReport::default()
        }
    }

    fn save_state(&self) -> Result<StateNode> {
        // Stage flow counters and wall histograms are observability-only
        // (they never influence output) and restart fresh on restore.
        Ok(StateNode::List(
            self.stages
                .iter()
                .map(|s| s.save_state())
                .collect::<Result<_>>()?,
        ))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        let items = state.as_list()?;
        if items.len() != self.stages.len() {
            return Err(DsmsError::ckpt(format!(
                "chain `{}` has {} stages, checkpoint has {}",
                self.name,
                self.stages.len(),
                items.len()
            )));
        }
        for (stage, st) in self.stages.iter_mut().zip(items) {
            stage.restore_state(st)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::value::Value;

    fn t(v: i64, secs: u64) -> Tuple {
        Tuple::new(vec![Value::Int(v)], Timestamp::from_secs(secs), secs)
    }

    #[test]
    fn chain_pipes_through_stages() {
        // select v > 2 then project v*10.
        use crate::expr::BinOp;
        let sel = Select::new(Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(2i64)));
        let proj = Project::new(vec![Expr::bin(BinOp::Mul, Expr::col(0), Expr::lit(10i64))]);
        let mut chain = Chain::new(vec![Box::new(sel), Box::new(proj)]);
        let mut out = Vec::new();
        chain.on_tuple(0, &t(1, 1), &mut out).unwrap();
        chain.on_tuple(0, &t(5, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::Int(50));
        assert!(chain.name().contains("select"));
    }

    #[test]
    fn chain_report_tracks_per_stage_flow() {
        use crate::expr::BinOp;
        let sel = Select::new(Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(2i64)));
        let proj = Project::new(vec![Expr::col(0)]);
        let mut chain = Chain::new(vec![Box::new(sel), Box::new(proj)]);
        let mut out = Vec::new();
        for v in [1i64, 3, 5, 0] {
            chain
                .on_tuple(0, &t(v, v.unsigned_abs()), &mut out)
                .unwrap();
        }
        let r = chain.report();
        assert_eq!(r.children.len(), 2);
        // Stage 0 (select) saw all 4, passed 2; stage 1 saw those 2.
        assert_eq!(r.children[0].tuples_in, 4);
        assert_eq!(r.children[0].tuples_out, 2);
        assert_eq!(r.children[1].tuples_in, 2);
        assert_eq!(r.children[1].tuples_out, 2);
        // Every on_tuple is one batch for stage 0; stage 1 only runs
        // when stage 0 emits.
        assert_eq!(r.children[0].batches, 4);
        assert_eq!(r.children[1].batches, 2);
        // The first invocation of each stage is always wall-sampled.
        assert!(r.children[0].wall_ns.as_ref().unwrap().count >= 1);
        let text = r.render();
        assert!(text.contains("select"));
        assert!(text.contains("in=4 out=2"));
    }
}
