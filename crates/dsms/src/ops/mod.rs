//! Physical operators for continuous queries.
//!
//! A continuous query is a tree of operators fed by one or more source
//! streams. Operators are push-based: the engine calls [`Operator::on_tuple`]
//! for each arrival on an input port and [`Operator::on_punctuation`] when
//! stream time advances, and the operator appends any produced tuples to
//! the output vector. Punctuations are what give FOLLOWING windows and
//! `EXCEPTION_SEQ` their *active expiration* behaviour — results that must
//! be emitted even when no further tuple arrives.

mod aggregate;
mod dedup;
mod exists;
mod join;
mod project;
mod select;

pub use aggregate::{AggSpec, AggWindow, Emission, WindowAggregate};
pub use dedup::Dedup;
pub use exists::{SemiJoinKind, WindowExists};
pub use join::BinaryJoin;
pub use project::Project;
pub use select::Select;

use crate::error::Result;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// A push-based streaming operator.
pub trait Operator: Send {
    /// Handle a tuple arriving on input `port`; append outputs to `out`.
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()>;

    /// Stream time has advanced to `ts`: expire state, emit anything whose
    /// window has closed. Default: nothing to do.
    fn on_punctuation(&mut self, _ts: Timestamp, _out: &mut Vec<Tuple>) -> Result<()> {
        Ok(())
    }

    /// Number of input ports this operator expects.
    fn num_ports(&self) -> usize {
        1
    }

    /// Operator name for plan display.
    fn name(&self) -> &str;

    /// Approximate number of tuples currently retained in operator state —
    /// the metric the paper's Tuple Pairing Modes are designed to bound.
    fn retained(&self) -> usize {
        0
    }
}

/// A single-input chain of operators: the output of each stage feeds the
/// next. This is the shape of every transducer in the paper's examples.
pub struct Chain {
    stages: Vec<Box<dyn Operator>>,
    name: String,
}

impl Chain {
    /// Build a chain; every stage must be single-input.
    pub fn new(stages: Vec<Box<dyn Operator>>) -> Chain {
        debug_assert!(stages.iter().all(|s| s.num_ports() == 1));
        let name = stages
            .iter()
            .map(|s| s.name().to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        Chain { stages, name }
    }

    fn run_from(&mut self, start: usize, input: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        // Depth-first through the remaining stages without recursion on
        // the engine side; each stage may fan out (e.g. nothing or many).
        let mut current = vec![input.clone()];
        for stage in &mut self.stages[start..] {
            let mut next = Vec::new();
            for t in &current {
                stage.on_tuple(0, t, &mut next)?;
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        out.extend(current);
        Ok(())
    }
}

impl Operator for Chain {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        debug_assert_eq!(port, 0);
        self.run_from(0, t, out)
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        // A punctuation may release buffered tuples at any stage; those
        // must then flow through the *rest* of the chain.
        for i in 0..self.stages.len() {
            let mut released = Vec::new();
            self.stages[i].on_punctuation(ts, &mut released)?;
            for t in released {
                if i + 1 < self.stages.len() {
                    self.run_from(i + 1, &t, out)?;
                } else {
                    out.push(t);
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn retained(&self) -> usize {
        self.stages.iter().map(|s| s.retained()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::value::Value;

    fn t(v: i64, secs: u64) -> Tuple {
        Tuple::new(vec![Value::Int(v)], Timestamp::from_secs(secs), secs)
    }

    #[test]
    fn chain_pipes_through_stages() {
        // select v > 2 then project v*10.
        use crate::expr::BinOp;
        let sel = Select::new(Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(2i64)));
        let proj = Project::new(vec![Expr::bin(
            BinOp::Mul,
            Expr::col(0),
            Expr::lit(10i64),
        )]);
        let mut chain = Chain::new(vec![Box::new(sel), Box::new(proj)]);
        let mut out = Vec::new();
        chain.on_tuple(0, &t(1, 1), &mut out).unwrap();
        chain.on_tuple(0, &t(5, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::Int(50));
        assert!(chain.name().contains("select"));
    }
}
