//! π — column projection / computation.

use super::Operator;
use crate::error::Result;
use crate::expr::Expr;
use crate::tuple::Tuple;

/// Computes one output column per expression; the output tuple inherits
/// the input's event time and sequence number (a projection does not move
/// a reading in time).
pub struct Project {
    exprs: Vec<Expr>,
}

impl Project {
    /// Project onto `exprs`, each evaluated with the tuple as relation 0.
    pub fn new(exprs: Vec<Expr>) -> Project {
        Project { exprs }
    }
}

impl Operator for Project {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let mut vals = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            vals.push(e.eval(&[t])?);
        }
        out.push(Tuple::new(vals, t.ts(), t.seq()));
        Ok(())
    }

    fn process_batch(&mut self, _port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        out.reserve(batch.len());
        for t in batch {
            let mut vals = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                vals.push(e.eval(&[t])?);
            }
            out.push(Tuple::new(vals, t.ts(), t.seq()));
        }
        Ok(())
    }

    // Projection is stateless; a punctuation changes nothing.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::time::Timestamp;
    use crate::value::Value;

    #[test]
    fn computes_columns_and_keeps_time() {
        let mut p = Project::new(vec![
            Expr::col(1),
            Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(1i64)),
        ]);
        let t = Tuple::new(
            vec![Value::Int(41), Value::str("tag")],
            Timestamp::from_secs(9),
            77,
        );
        let mut out = Vec::new();
        p.on_tuple(0, &t, &mut out).unwrap();
        assert_eq!(out[0].value(0), &Value::str("tag"));
        assert_eq!(out[0].value(1), &Value::Int(42));
        assert_eq!(out[0].ts(), Timestamp::from_secs(9));
        assert_eq!(out[0].seq(), 77);
    }
}
