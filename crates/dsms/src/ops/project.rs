//! π — column projection / computation.

use super::{OpReport, Operator};
use crate::batch::ColumnBatch;
use crate::error::Result;
use crate::expr::Expr;
use crate::intern::InternerRef;
use crate::key::KeyCodec;
use crate::tuple::Tuple;
use crate::value::Value;

/// Computes one output column per expression; the output tuple inherits
/// the input's event time and sequence number (a projection does not move
/// a reading in time).
///
/// With an interned engine, derived string outputs stay canonical:
/// string literals canonicalize once when the codec is bound, and
/// computed expressions (UDF calls, concatenations) canonicalize their
/// string results as they are produced — downstream stateful operators
/// then resolve them by pointer instead of hashing bytes per probe.
/// Plain column references are pass-through (already canonical on an
/// interned engine) and pay nothing.
pub struct Project {
    exprs: Vec<Expr>,
    /// Per-expression: can it build a string the input didn't carry?
    /// (Column references and literals cannot after bind-time
    /// canonicalization.)
    computes_fresh: Vec<bool>,
    interner: Option<InternerRef>,
}

impl Project {
    /// Project onto `exprs`, each evaluated with the tuple as relation 0.
    pub fn new(exprs: Vec<Expr>) -> Project {
        let computes_fresh = exprs
            .iter()
            .map(|e| !matches!(e, Expr::Col { .. } | Expr::Lit(_) | Expr::Dur(_)))
            .collect();
        Project {
            exprs,
            computes_fresh,
            interner: None,
        }
    }

    #[inline]
    fn canonicalize_outputs(&self, vals: &mut [Value]) {
        if let Some(int) = &self.interner {
            for (v, fresh) in vals.iter_mut().zip(&self.computes_fresh) {
                if *fresh {
                    int.canonicalize(v);
                }
            }
        }
    }

    /// Whether every output is a plain column copy or a literal — the
    /// shapes the columnar kernel handles without evaluating a row.
    fn kernel_shape(&self) -> bool {
        self.exprs
            .iter()
            .all(|e| matches!(e, Expr::Col { rel: 0, .. } | Expr::Lit(_) | Expr::Dur(_)))
    }
}

impl Operator for Project {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let mut vals = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            vals.push(e.eval(&[t])?);
        }
        self.canonicalize_outputs(&mut vals);
        out.push(Tuple::new(vals, t.ts(), t.seq()));
        Ok(())
    }

    fn process_batch(&mut self, _port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        out.reserve(batch.len());
        for t in batch {
            let mut vals = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                vals.push(e.eval(&[t])?);
            }
            self.canonicalize_outputs(&mut vals);
            out.push(Tuple::new(vals, t.ts(), t.seq()));
        }
        Ok(())
    }

    fn columnar_capable(&self) -> bool {
        self.kernel_shape()
    }

    fn columns_to_columns(
        &mut self,
        _port: usize,
        cols: &ColumnBatch,
    ) -> Result<Option<ColumnBatch>> {
        let mut out_cols = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            match e {
                // A column copy is a clone of the column vectors — no
                // per-row work at all.
                Expr::Col { rel: 0, col } if *col < cols.arity() => {
                    out_cols.push(cols.column(*col).clone())
                }
                Expr::Lit(v) => match cols.lit_column(v) {
                    Some(c) => out_cols.push(c),
                    // String literal, no dictionary: row path.
                    None => return Ok(None),
                },
                Expr::Dur(d) => match cols.lit_column(&Value::Int(d.as_micros() as i64)) {
                    Some(c) => out_cols.push(c),
                    None => return Ok(None),
                },
                // Out-of-range columns error row-wise; computed
                // expressions evaluate row-wise.
                _ => return Ok(None),
            }
        }
        Ok(Some(cols.with_projected_columns(out_cols)))
    }

    // Projection is stateless; a punctuation changes nothing.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "project"
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        self.interner = codec.interner().cloned();
        if let Some(int) = &self.interner {
            for e in &mut self.exprs {
                e.canonicalize_lits(int);
            }
        }
    }

    fn report(&self) -> OpReport {
        let mut r = OpReport::leaf(self.name(), self.retained());
        r.columnar = Some(self.columnar_capable());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::intern::StrInterner;
    use crate::time::Timestamp;
    use crate::value::Value;
    use std::sync::Arc;

    #[test]
    fn computes_columns_and_keeps_time() {
        let mut p = Project::new(vec![
            Expr::col(1),
            Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(1i64)),
        ]);
        let t = Tuple::new(
            vec![Value::Int(41), Value::str("tag")],
            Timestamp::from_secs(9),
            77,
        );
        let mut out = Vec::new();
        p.on_tuple(0, &t, &mut out).unwrap();
        assert_eq!(out[0].value(0), &Value::str("tag"));
        assert_eq!(out[0].value(1), &Value::Int(42));
        assert_eq!(out[0].ts(), Timestamp::from_secs(9));
        assert_eq!(out[0].seq(), 77);
    }

    #[test]
    fn kernel_matches_row_path() {
        let interner: InternerRef = Arc::new(StrInterner::new());
        let exprs = vec![Expr::col(1), Expr::col(0), Expr::lit("fixed")];
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(
                    vec![Value::Int(i), Value::str(format!("tag{}", i % 2))],
                    Timestamp::from_secs(i as u64),
                    i as u64,
                )
            })
            .collect();
        let codec = KeyCodec::interned(interner.clone());
        let mut row_p = Project::new(exprs.clone());
        row_p.bind_interner(&codec);
        let mut expect = Vec::new();
        row_p.process_batch(0, &tuples, &mut expect).unwrap();
        let mut col_p = Project::new(exprs);
        col_p.bind_interner(&codec);
        assert!(col_p.columnar_capable());
        let cb = ColumnBatch::from_tuples(&tuples, Some(&interner)).unwrap();
        let got = col_p
            .columns_to_columns(0, &cb)
            .unwrap()
            .expect("kernel shape")
            .to_tuples()
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn computed_string_outputs_are_canonical() {
        let interner: InternerRef = Arc::new(StrInterner::new());
        let concat: crate::expr::ScalarFn = Arc::new(|args: &[Value]| {
            let mut s = String::new();
            for a in args {
                if let Value::Str(x) = a {
                    s.push_str(x);
                }
            }
            Ok(Value::str(s))
        });
        let mut p = Project::new(vec![Expr::Call {
            name: "concat".to_string(),
            func: concat,
            args: vec![Expr::col(0), Expr::lit("-suffix")],
        }]);
        p.bind_interner(&KeyCodec::interned(interner.clone()));
        let t = Tuple::new(vec![Value::str("tag")], Timestamp::ZERO, 0);
        let mut out = Vec::new();
        p.on_tuple(0, &t, &mut out).unwrap();
        p.on_tuple(0, &t, &mut out).unwrap();
        // Same content twice: one dictionary entry, shared canonical Arc.
        match (out[0].value(0), out[1].value(0)) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("expected strings, got {other:?}"),
        }
        assert!(interner.lookup_sym("tag-suffix").is_some());
    }
}
