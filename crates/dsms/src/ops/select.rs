//! σ — tuple filter.

use super::Operator;
use crate::error::Result;
use crate::expr::Expr;
use crate::tuple::Tuple;

/// Emits exactly the input tuples whose predicate holds (NULL = drop).
pub struct Select {
    pred: Expr,
}

impl Select {
    /// Filter by `pred`, evaluated with the tuple as relation 0.
    pub fn new(pred: Expr) -> Select {
        Select { pred }
    }
}

impl Operator for Select {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if self.pred.eval_bool(&[t])? {
            out.push(t.clone());
        }
        Ok(())
    }

    fn process_batch(&mut self, _port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        for t in batch {
            if self.pred.eval_bool(&[t])? {
                out.push(t.clone());
            }
        }
        Ok(())
    }

    // Filtering is stateless; a punctuation changes nothing.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "select"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::time::Timestamp;
    use crate::value::Value;

    #[test]
    fn filters() {
        let mut s = Select::new(Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(10i64)));
        let mut out = Vec::new();
        for v in [5i64, 10, 15] {
            let t = Tuple::new(vec![Value::Int(v)], Timestamp::ZERO, 0);
            s.on_tuple(0, &t, &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_predicate_drops() {
        let mut s = Select::new(Expr::eq(Expr::col(0), Expr::lit(1i64)));
        let mut out = Vec::new();
        let t = Tuple::new(vec![Value::Null], Timestamp::ZERO, 0);
        s.on_tuple(0, &t, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn type_errors_propagate() {
        let mut s = Select::new(Expr::col(0)); // non-boolean column
        let t = Tuple::new(vec![Value::Int(3)], Timestamp::ZERO, 0);
        assert!(s.on_tuple(0, &t, &mut Vec::new()).is_err());
    }
}
