//! σ — tuple filter.
//!
//! Besides the row path, `Select` carries a columnar kernel: supported
//! predicates evaluate over [`ColumnBatch`] columns into a three-valued
//! selection mask without materializing a single `Value`. The kernel is
//! deliberately over-conservative — any input that *could* make the row
//! path raise an evaluation error (type mismatch, NaN comparison,
//! unbound column) declines columnar execution by returning `None`, so
//! the authoritative row path replays the batch and raises the
//! identical error. String comparisons stay in symbol space: `Eq`/`Ne`
//! against a literal resolve the literal through the dictionary once
//! per batch (never inserting), and each row is a 4-byte id compare.

use super::{OpReport, Operator};
use crate::batch::{Column, ColumnBatch, ColumnData};
use crate::error::Result;
use crate::expr::{BinOp, Expr};
use crate::intern::Sym;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;

/// Emits exactly the input tuples whose predicate holds (NULL = drop).
pub struct Select {
    pred: Expr,
}

impl Select {
    /// Filter by `pred`, evaluated with the tuple as relation 0.
    pub fn new(pred: Expr) -> Select {
        Select { pred }
    }
}

/// Static shape check: is `e` a predicate the columnar kernel
/// understands? The kernel can still decline a particular batch at
/// runtime (type mismatch, NaN, Mixed column surprises).
fn kernel_supported(e: &Expr) -> bool {
    match e {
        Expr::Lit(Value::Bool(_)) | Expr::Lit(Value::Null) => true,
        Expr::Col { rel: 0, .. } => true,
        Expr::Not(inner) => kernel_supported(inner),
        Expr::IsNull(inner) => is_atom(inner),
        Expr::Bin(BinOp::And | BinOp::Or, a, b) => kernel_supported(a) && kernel_supported(b),
        Expr::Bin(BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, a, b) => {
            is_atom(a) && is_atom(b)
        }
        _ => false,
    }
}

fn is_atom(e: &Expr) -> bool {
    matches!(e, Expr::Lit(_) | Expr::Dur(_) | Expr::Col { rel: 0, .. })
}

/// One comparison operand: a literal or a column.
enum Side<'a> {
    /// Non-string literal (durations lower to `Int` microseconds,
    /// mirroring `Expr::eval`).
    Lit(Value),
    /// String literal: its dictionary symbol if interned (`lookup_sym`
    /// never inserts — an absent symbol can equal no column value),
    /// plus the raw value for `Mixed`-column comparisons.
    Str(Option<Sym>, &'a Value),
    /// A batch column.
    Col(&'a Column),
}

fn side<'a>(cols: &'a ColumnBatch, e: &'a Expr) -> Option<Side<'a>> {
    match e {
        Expr::Lit(v @ Value::Str(s)) => {
            Some(Side::Str(cols.interner().and_then(|i| i.lookup_sym(s)), v))
        }
        Expr::Lit(v) => Some(Side::Lit(v.clone())),
        Expr::Dur(d) => Some(Side::Lit(Value::Int(d.as_micros() as i64))),
        // An out-of-range column errors row-wise; declining here routes
        // the batch to the row path, which raises that error.
        Expr::Col { rel: 0, col } if *col < cols.arity() => Some(Side::Col(cols.column(*col))),
        _ => None,
    }
}

/// One row's view of a [`Side`].
enum Cell<'a> {
    Null,
    I(i64),
    F(f64),
    S(Sym),
    /// String literal (symbol if interned, raw value).
    SL(Option<Sym>, &'a Value),
    B(bool),
    T(Timestamp),
    /// A `Mixed`-column value (never `Null` — validity catches those).
    V(&'a Value),
}

fn cell<'a>(s: &'a Side<'a>, i: usize) -> Cell<'a> {
    match s {
        Side::Str(sym, v) => Cell::SL(*sym, v),
        Side::Lit(v) => match v {
            Value::Null => Cell::Null,
            Value::Int(x) => Cell::I(*x),
            Value::Float(x) => Cell::F(*x),
            Value::Bool(x) => Cell::B(*x),
            Value::Ts(x) => Cell::T(*x),
            Value::Str(_) => unreachable!("string literals use Side::Str"),
        },
        Side::Col(c) => {
            if !c.is_valid(i) {
                return Cell::Null;
            }
            match &c.data {
                ColumnData::Int(v) => Cell::I(v[i]),
                ColumnData::Float(v) => Cell::F(v[i]),
                ColumnData::Str(v) => Cell::S(v[i]),
                ColumnData::Bool(v) => Cell::B(v[i]),
                ColumnData::Ts(v) => Cell::T(v[i]),
                ColumnData::Mixed(v) => Cell::V(&v[i]),
            }
        }
    }
}

/// Outcome of one row comparison.
enum Cmp {
    /// Ordered result, exactly what `sql_cmp` would say.
    Ord(Ordering),
    /// Unequal with no usable order (distinct symbols): fine for
    /// `Eq`/`Ne`, a bail-out for ordering operators.
    Neq,
    /// NULL operand: comparison yields NULL.
    Null,
    /// The row path might error (or order strings lexicographically):
    /// decline the batch.
    Bail,
}

/// Materialize a scalar cell as a `Value` for `Mixed` comparisons.
fn cell_value(c: &Cell<'_>) -> Option<Value> {
    match c {
        Cell::I(x) => Some(Value::Int(*x)),
        Cell::F(x) => Some(Value::Float(*x)),
        Cell::B(x) => Some(Value::Bool(*x)),
        Cell::T(x) => Some(Value::Ts(*x)),
        Cell::SL(_, v) => Some((*v).clone()),
        _ => None,
    }
}

fn cmp_cells(a: Cell<'_>, b: Cell<'_>) -> Cmp {
    use Cell::*;
    match (&a, &b) {
        (Null, _) | (_, Null) => Cmp::Null,
        (I(x), I(y)) => Cmp::Ord(x.cmp(y)),
        // NaN comparisons error on the row path; `partial_cmp` returning
        // `None` routes them there.
        (F(x), F(y)) => x.partial_cmp(y).map_or(Cmp::Bail, Cmp::Ord),
        (I(x), F(y)) => (*x as f64).partial_cmp(y).map_or(Cmp::Bail, Cmp::Ord),
        (F(x), I(y)) => x.partial_cmp(&(*y as f64)).map_or(Cmp::Bail, Cmp::Ord),
        // Symbol space: equal syms ⇔ equal strings. Ordering operators
        // on strings would need the bytes — those rows bail via `Neq`.
        (S(x), S(y)) if x == y => Cmp::Ord(Ordering::Equal),
        (S(_), S(_)) => Cmp::Neq,
        (S(x), SL(sym, _)) | (SL(sym, _), S(x)) => match sym {
            Some(s) if s == x => Cmp::Ord(Ordering::Equal),
            _ => Cmp::Neq,
        },
        (B(x), B(y)) => Cmp::Ord(x.cmp(y)),
        (T(x), T(y)) => Cmp::Ord(x.cmp(y)),
        (V(x), V(y)) => x.sql_cmp(y).map_or(Cmp::Bail, Cmp::Ord),
        (V(x), other) => match cell_value(other) {
            Some(tmp) => x.sql_cmp(&tmp).map_or(Cmp::Bail, Cmp::Ord),
            None => Cmp::Bail,
        },
        (other, V(y)) => match cell_value(other) {
            Some(tmp) => tmp.sql_cmp(y).map_or(Cmp::Bail, Cmp::Ord),
            None => Cmp::Bail,
        },
        (SL(_, x), SL(_, y)) => match (x, y) {
            (Value::Str(a), Value::Str(b)) => Cmp::Ord(a.cmp(b)),
            _ => Cmp::Bail,
        },
        // Any remaining pairing is a type mismatch the row path reports
        // as "cannot compare X with Y".
        _ => Cmp::Bail,
    }
}

fn cmp_mask(cols: &ColumnBatch, op: BinOp, ea: &Expr, eb: &Expr) -> Option<Vec<u8>> {
    let sa = side(cols, ea)?;
    let sb = side(cols, eb)?;
    let n = cols.len();
    let mut m = Vec::with_capacity(n);
    for i in 0..n {
        m.push(match cmp_cells(cell(&sa, i), cell(&sb, i)) {
            Cmp::Null => 2,
            Cmp::Bail => return None,
            Cmp::Neq => match op {
                BinOp::Eq => 0,
                BinOp::Ne => 1,
                _ => return None,
            },
            Cmp::Ord(o) => u8::from(match op {
                BinOp::Eq => o == Ordering::Equal,
                BinOp::Ne => o != Ordering::Equal,
                BinOp::Lt => o == Ordering::Less,
                BinOp::Le => o != Ordering::Greater,
                BinOp::Gt => o == Ordering::Greater,
                BinOp::Ge => o != Ordering::Less,
                _ => unreachable!("cmp_mask only sees comparison operators"),
            }),
        });
    }
    Some(m)
}

fn is_null_mask(cols: &ColumnBatch, e: &Expr) -> Option<Vec<u8>> {
    let n = cols.len();
    match e {
        Expr::Lit(v) => Some(vec![u8::from(v.is_null()); n]),
        Expr::Dur(_) => Some(vec![0; n]),
        Expr::Col { rel: 0, col } if *col < cols.arity() => {
            let c = cols.column(*col);
            Some((0..n).map(|i| u8::from(!c.is_valid(i))).collect())
        }
        _ => None,
    }
}

/// Evaluate `e` over the batch into a Kleene mask (0 = false, 1 = true,
/// 2 = NULL). `None` means "run this batch through the row path".
///
/// Truth tables mirror `Expr::eval_logic` exactly; the one divergence —
/// the row path's short-circuit can *suppress* an error in the
/// unevaluated operand — is safe because the kernel never errors: where
/// the row path would error, the kernel bails, and where it would
/// short-circuit past the error, both paths agree on the value.
fn bool_mask(cols: &ColumnBatch, e: &Expr) -> Option<Vec<u8>> {
    let n = cols.len();
    match e {
        Expr::Lit(Value::Bool(b)) => Some(vec![u8::from(*b); n]),
        Expr::Lit(Value::Null) => Some(vec![2; n]),
        Expr::Col { rel: 0, col } if *col < cols.arity() => {
            let c = cols.column(*col);
            match &c.data {
                ColumnData::Bool(v) => Some(
                    (0..n)
                        .map(|i| if c.is_valid(i) { u8::from(v[i]) } else { 2 })
                        .collect(),
                ),
                ColumnData::Mixed(v) => {
                    let mut m = Vec::with_capacity(n);
                    for val in v {
                        m.push(match val {
                            Value::Bool(b) => u8::from(*b),
                            Value::Null => 2,
                            // Row path: "used as a boolean" error.
                            _ => return None,
                        });
                    }
                    Some(m)
                }
                // Non-boolean predicate column errors row-wise.
                _ => None,
            }
        }
        Expr::Not(inner) => Some(
            bool_mask(cols, inner)?
                .into_iter()
                .map(|x| match x {
                    0 => 1,
                    1 => 0,
                    other => other,
                })
                .collect(),
        ),
        Expr::IsNull(inner) => is_null_mask(cols, inner),
        Expr::Bin(BinOp::And, a, b) => {
            let ma = bool_mask(cols, a)?;
            let mb = bool_mask(cols, b)?;
            Some(
                ma.into_iter()
                    .zip(mb)
                    .map(|(x, y)| {
                        if x == 0 || y == 0 {
                            0
                        } else if x == 2 || y == 2 {
                            2
                        } else {
                            1
                        }
                    })
                    .collect(),
            )
        }
        Expr::Bin(BinOp::Or, a, b) => {
            let ma = bool_mask(cols, a)?;
            let mb = bool_mask(cols, b)?;
            Some(
                ma.into_iter()
                    .zip(mb)
                    .map(|(x, y)| {
                        if x == 1 || y == 1 {
                            1
                        } else if x == 2 || y == 2 {
                            2
                        } else {
                            0
                        }
                    })
                    .collect(),
            )
        }
        Expr::Bin(
            op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
            a,
            b,
        ) => cmp_mask(cols, *op, a, b),
        _ => None,
    }
}

impl Operator for Select {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if self.pred.eval_bool(&[t])? {
            out.push(t.clone());
        }
        Ok(())
    }

    fn process_batch(&mut self, _port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        for t in batch {
            if self.pred.eval_bool(&[t])? {
                out.push(t.clone());
            }
        }
        Ok(())
    }

    fn columnar_capable(&self) -> bool {
        kernel_supported(&self.pred)
    }

    fn columns_to_columns(
        &mut self,
        port: usize,
        cols: &ColumnBatch,
    ) -> Result<Option<ColumnBatch>> {
        Ok(self
            .columns_to_selection(port, cols)?
            .map(|keep| cols.filter(&keep)))
    }

    fn columns_to_selection(
        &mut self,
        _port: usize,
        cols: &ColumnBatch,
    ) -> Result<Option<Vec<bool>>> {
        // NULL predicate drops the row — exactly `eval_bool`.
        Ok(bool_mask(cols, &self.pred).map(|mask| mask.into_iter().map(|m| m == 1).collect()))
    }

    // Filtering is stateless; a punctuation changes nothing.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "select"
    }

    fn report(&self) -> OpReport {
        let mut r = OpReport::leaf(self.name(), self.retained());
        r.columnar = Some(self.columnar_capable());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::intern::{InternerRef, StrInterner};
    use crate::time::Timestamp;
    use crate::value::Value;
    use std::sync::Arc;

    #[test]
    fn filters() {
        let mut s = Select::new(Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(10i64)));
        let mut out = Vec::new();
        for v in [5i64, 10, 15] {
            let t = Tuple::new(vec![Value::Int(v)], Timestamp::ZERO, 0);
            s.on_tuple(0, &t, &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_predicate_drops() {
        let mut s = Select::new(Expr::eq(Expr::col(0), Expr::lit(1i64)));
        let mut out = Vec::new();
        let t = Tuple::new(vec![Value::Null], Timestamp::ZERO, 0);
        s.on_tuple(0, &t, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn type_errors_propagate() {
        let mut s = Select::new(Expr::col(0)); // non-boolean column
        let t = Tuple::new(vec![Value::Int(3)], Timestamp::ZERO, 0);
        assert!(s.on_tuple(0, &t, &mut Vec::new()).is_err());
    }

    // --- columnar kernel ---

    fn interner() -> InternerRef {
        Arc::new(StrInterner::new())
    }

    fn batch(rows: Vec<Vec<Value>>, int: &InternerRef) -> ColumnBatch {
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .enumerate()
            .map(|(i, vals)| Tuple::new(vals, Timestamp::from_secs(i as u64), i as u64))
            .collect();
        ColumnBatch::from_tuples(&tuples, Some(int)).unwrap()
    }

    /// The kernel and the row path must agree on every batch they both
    /// accept — this helper runs both and compares.
    fn assert_kernel_matches_rows(pred: Expr, cb: &ColumnBatch) {
        let rows = cb.to_tuples().unwrap();
        let mut row_sel = Select::new(pred.clone());
        let mut expect = Vec::new();
        row_sel.process_batch(0, &rows, &mut expect).unwrap();
        let mut col_sel = Select::new(pred);
        let got = col_sel
            .columns_to_columns(0, cb)
            .unwrap()
            .expect("kernel accepted")
            .to_tuples()
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn kernel_matches_rows_on_int_compare() {
        let int = interner();
        let cb = batch(
            vec![
                vec![Value::Int(5)],
                vec![Value::Int(10)],
                vec![Value::Null],
                vec![Value::Int(15)],
            ],
            &int,
        );
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert_kernel_matches_rows(Expr::bin(op, Expr::col(0), Expr::lit(10i64)), &cb);
        }
    }

    #[test]
    fn kernel_matches_rows_on_sym_equality() {
        let int = interner();
        let cb = batch(
            vec![
                vec![Value::str("reader1")],
                vec![Value::str("reader2")],
                vec![Value::Null],
            ],
            &int,
        );
        assert_kernel_matches_rows(Expr::eq(Expr::col(0), Expr::lit("reader1")), &cb);
        assert_kernel_matches_rows(
            Expr::bin(BinOp::Ne, Expr::col(0), Expr::lit("reader2")),
            &cb,
        );
        // Literal not in the dictionary: equal to nothing, unequal to
        // every valid row.
        assert_kernel_matches_rows(Expr::eq(Expr::col(0), Expr::lit("ghost")), &cb);
    }

    #[test]
    fn kernel_matches_rows_on_kleene_logic() {
        let int = interner();
        let cb = batch(
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Null, Value::str("a")],
                vec![Value::Int(3), Value::Null],
            ],
            &int,
        );
        let p = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(1i64)),
            Expr::eq(Expr::col(1), Expr::lit("a")),
        );
        assert_kernel_matches_rows(p, &cb);
        let q = Expr::bin(
            BinOp::Or,
            Expr::IsNull(Box::new(Expr::col(0))),
            Expr::Not(Box::new(Expr::eq(Expr::col(1), Expr::lit("b")))),
        );
        assert_kernel_matches_rows(q, &cb);
    }

    #[test]
    fn kernel_declines_where_rows_would_error() {
        let int = interner();
        // Int column compared with a Bool literal: row path errors.
        let cb = batch(vec![vec![Value::Int(1)]], &int);
        let mut s = Select::new(Expr::eq(Expr::col(0), Expr::lit(true)));
        assert!(s.columns_to_columns(0, &cb).unwrap().is_none());
        // NaN literal: row path errors on the comparison.
        let mut s = Select::new(Expr::bin(
            BinOp::Lt,
            Expr::col(0),
            Expr::Lit(Value::Float(f64::NAN)),
        ));
        let cb = batch(vec![vec![Value::Float(1.0)]], &int);
        assert!(s.columns_to_columns(0, &cb).unwrap().is_none());
        // Out-of-range column: row path raises "out of range".
        let cb = batch(vec![vec![Value::Int(1)]], &int);
        let mut s = Select::new(Expr::eq(Expr::col(7), Expr::lit(1i64)));
        assert!(s.columns_to_columns(0, &cb).unwrap().is_none());
    }

    #[test]
    fn kernel_widens_int_float_like_sql_cmp() {
        let int = interner();
        // Mixed Int/Float column + Float literal.
        let cb = batch(
            vec![
                vec![Value::Int(1)],
                vec![Value::Float(2.5)],
                vec![Value::Int(3)],
            ],
            &int,
        );
        assert_kernel_matches_rows(
            Expr::bin(BinOp::Ge, Expr::col(0), Expr::Lit(Value::Float(2.0))),
            &cb,
        );
    }

    #[test]
    fn capability_is_static_shape() {
        assert!(Select::new(Expr::eq(Expr::col(0), Expr::lit(1i64))).columnar_capable());
        assert!(Select::new(Expr::lit(true)).columnar_capable());
        // LIKE has no kernel.
        assert!(!Select::new(Expr::Like(
            Box::new(Expr::col(0)),
            crate::expr::LikePattern::compile("a%")
        ))
        .columnar_capable());
    }
}
