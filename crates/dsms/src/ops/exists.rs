//! Correlated EXISTS / NOT EXISTS with windows synchronized across the
//! sub-query boundary — the paper's §3.2 extension.
//!
//! Example 8 (theft detection) needs, for each outer (`person`) tuple, to
//! ask whether any inner (`item`) tuple exists in a window defined
//! *around the outer tuple* (`1 MINUTE PRECEDING AND FOLLOWING person`).
//! Because the window extends into the future, the answer for NOT EXISTS
//! can only be produced once stream time has passed the window's upper
//! edge; this operator buffers pending outer tuples and finalizes them as
//! time advances (from arrivals on either port or from punctuations).
//!
//! Emission times are deterministic: an EXISTS hit is emitted at the
//! moment the witnessing pair is known (`max(outer.ts, inner.ts)`); a
//! NOT EXISTS result carries the window-close time (`upper_bound`), i.e.
//! the earliest instant the alert is semantically decidable.

use super::Operator;
use crate::ckpt::StateNode;
use crate::error::Result;
use crate::expr::Expr;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::window::{WindowBuffer, WindowExtent};
use std::collections::VecDeque;

/// Whether the sub-query is `EXISTS` or `NOT EXISTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiJoinKind {
    /// Emit the outer tuple iff a qualifying inner tuple exists in window.
    Exists,
    /// Emit the outer tuple iff no qualifying inner tuple exists in window.
    NotExists,
}

struct Pending {
    outer: Tuple,
    /// Set when a qualifying inner tuple has been seen (EXISTS decided).
    witnessed: bool,
}

/// Windowed correlated semi-join (port 0 = outer, port 1 = inner).
pub struct WindowExists {
    kind: SemiJoinKind,
    extent: WindowExtent,
    /// Predicate over the evaluation row `[outer, inner]`.
    pred: Expr,
    /// Optional filter on outer tuples (e.g. `tagtype = 'person'`),
    /// applied before an outer tuple becomes pending.
    outer_filter: Option<Expr>,
    pending: VecDeque<Pending>,
    inner: WindowBuffer,
    /// High-water mark of event time seen on either port.
    now: Timestamp,
}

impl WindowExists {
    /// Build the operator; `extent` is anchored at each outer tuple.
    pub fn new(
        kind: SemiJoinKind,
        extent: WindowExtent,
        pred: Expr,
        outer_filter: Option<Expr>,
    ) -> WindowExists {
        WindowExists {
            kind,
            extent,
            pred,
            outer_filter,
            pending: VecDeque::new(),
            inner: WindowBuffer::new(),
            now: Timestamp::ZERO,
        }
    }

    /// Finalize every pending outer whose window has fully closed, then
    /// trim the inner buffer to what future/pending windows can reach.
    fn advance(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        if ts > self.now {
            self.now = ts;
        }
        while let Some(p) = self.pending.front() {
            let close = self.extent.closes_at(p.outer.ts());
            if self.now <= close {
                break;
            }
            let p = self.pending.pop_front().expect("front checked");
            match self.kind {
                SemiJoinKind::Exists => {
                    // Unwitnessed EXISTS at close: drop. (Witnessed ones
                    // were emitted eagerly.)
                }
                SemiJoinKind::NotExists => {
                    if !p.witnessed {
                        out.push(Tuple::new(p.outer.values().to_vec(), close, p.outer.seq()));
                    }
                }
            }
        }
        // The inner buffer must cover: pending windows, and windows of
        // outer tuples yet to arrive (which anchor at ≥ now and reach back
        // lower_bound(now)).
        let mut bound = self.extent.lower_bound(self.now);
        if let Some(p) = self.pending.front() {
            bound = bound.min(self.extent.lower_bound(p.outer.ts()));
        }
        self.inner.expire_before(bound);
        Ok(())
    }

    fn check_outer_against_buffer(&mut self, idx: usize, out: &mut Vec<Tuple>) -> Result<()> {
        let p = &self.pending[idx];
        let anchor = p.outer.ts();
        let mut witnessed = false;
        for inner in self.inner.in_window(&self.extent, anchor) {
            // A tuple never witnesses itself (outer and inner may be the
            // same stream, e.g. Example 1's self-referential sub-query).
            if inner.seq() == p.outer.seq() {
                continue;
            }
            if self.pred.eval_bool(&[&p.outer, inner])? {
                witnessed = true;
                break;
            }
        }
        if witnessed {
            let p = &mut self.pending[idx];
            p.witnessed = true;
            if self.kind == SemiJoinKind::Exists {
                let emit_ts = p.outer.ts().max(self.now);
                out.push(Tuple::new(
                    p.outer.values().to_vec(),
                    emit_ts,
                    p.outer.seq(),
                ));
            }
        }
        Ok(())
    }
}

impl Operator for WindowExists {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        match port {
            0 => {
                self.advance(t.ts(), out)?;
                if let Some(f) = &self.outer_filter {
                    if !f.eval_bool(&[t])? {
                        return Ok(());
                    }
                }
                self.pending.push_back(Pending {
                    outer: t.clone(),
                    witnessed: false,
                });
                let idx = self.pending.len() - 1;
                self.check_outer_against_buffer(idx, out)?;
                // Remove already-decided EXISTS entries eagerly.
                if self.kind == SemiJoinKind::Exists
                    && self.pending.back().is_some_and(|p| p.witnessed)
                {
                    self.pending.pop_back();
                }
            }
            1 => {
                self.advance(t.ts(), out)?;
                self.inner.push(t.clone());
                // Probe every still-pending outer whose window contains t.
                let mut emitted = Vec::new();
                for (i, p) in self.pending.iter_mut().enumerate() {
                    if p.witnessed || p.outer.seq() == t.seq() {
                        continue;
                    }
                    if self.extent.contains(p.outer.ts(), t.ts())
                        && self.pred.eval_bool(&[&p.outer, t])?
                    {
                        p.witnessed = true;
                        if self.kind == SemiJoinKind::Exists {
                            let emit_ts = p.outer.ts().max(t.ts());
                            emitted.push(Tuple::new(
                                p.outer.values().to_vec(),
                                emit_ts,
                                p.outer.seq(),
                            ));
                        }
                        emitted_mark(i);
                    }
                }
                out.extend(emitted);
                if self.kind == SemiJoinKind::Exists {
                    self.pending.retain(|p| !p.witnessed);
                }
            }
            _ => unreachable!("semi-join has two ports"),
        }
        Ok(())
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        self.advance(ts, out)
    }

    fn num_ports(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        match self.kind {
            SemiJoinKind::Exists => "exists",
            SemiJoinKind::NotExists => "not-exists",
        }
    }

    fn retained(&self) -> usize {
        self.pending.len() + self.inner.len()
    }

    fn save_state(&self) -> Result<StateNode> {
        let pending = self
            .pending
            .iter()
            .map(|p| {
                StateNode::List(vec![
                    StateNode::Tuple(p.outer.clone()),
                    StateNode::Bool(p.witnessed),
                ])
            })
            .collect();
        Ok(StateNode::List(vec![
            StateNode::List(pending),
            self.inner.save_state(),
            StateNode::ts(self.now),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.pending.clear();
        for node in state.item(0)?.as_list()? {
            self.pending.push_back(Pending {
                outer: node.item(0)?.as_tuple()?.clone(),
                witnessed: node.item(1)?.as_bool()?,
            });
        }
        self.inner.restore_state(state.item(1)?)?;
        self.now = state.item(2)?.as_ts()?;
        Ok(())
    }
}

/// No-op hook kept for symmetry/readability of the probe loop.
#[inline]
fn emitted_mark(_i: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use crate::value::Value;

    /// tag_readings(tagid, tagtype, tagtime) from Example 8.
    fn reading(tag: &str, kind: &str, secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![
                Value::str(tag),
                Value::str(kind),
                Value::Ts(Timestamp::from_secs(secs)),
            ],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    /// Example 8 wiring: outer = item exits, inner = person readings;
    /// alert (NOT EXISTS) when no person within ±60 s of the item.
    ///
    /// (The paper's SQL text binds `person` as outer; the experiment's
    /// ground truth is about unaccompanied *items*, so the harness uses
    /// the item-anchored form. Both directions exercise the operator.)
    fn theft_detector() -> WindowExists {
        WindowExists::new(
            SemiJoinKind::NotExists,
            WindowExtent::PrecedingAndFollowing(Duration::from_secs(60)),
            // inner tuple must be a person (predicate sees [outer, inner]).
            Expr::eq(Expr::qcol(1, 1), Expr::lit("person")),
            Some(Expr::eq(Expr::col(1), Expr::lit("item"))),
        )
    }

    #[test]
    fn not_exists_alerts_when_unaccompanied() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("item1", "item", 100, 0), &mut out)
            .unwrap();
        assert!(out.is_empty(), "decision requires window close");
        // Advance time past 100+60.
        op.on_punctuation(Timestamp::from_secs(161), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::str("item1"));
        assert_eq!(out[0].ts(), Timestamp::from_secs(160)); // close time
    }

    #[test]
    fn not_exists_suppressed_by_preceding_person() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(1, &reading("alice", "person", 80, 0), &mut out)
            .unwrap();
        op.on_tuple(0, &reading("item1", "item", 100, 1), &mut out)
            .unwrap();
        op.on_punctuation(Timestamp::from_secs(200), &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn not_exists_suppressed_by_following_person() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("item1", "item", 100, 0), &mut out)
            .unwrap();
        op.on_tuple(1, &reading("alice", "person", 150, 1), &mut out)
            .unwrap();
        op.on_punctuation(Timestamp::from_secs(200), &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn person_outside_window_does_not_suppress() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(1, &reading("alice", "person", 10, 0), &mut out)
            .unwrap();
        op.on_tuple(0, &reading("item1", "item", 100, 1), &mut out)
            .unwrap();
        op.on_tuple(1, &reading("bob", "person", 170, 2), &mut out)
            .unwrap();
        op.on_punctuation(Timestamp::from_secs(300), &mut out)
            .unwrap();
        assert_eq!(
            out.len(),
            1,
            "persons at 10 and 170 are both outside ±60 of 100"
        );
    }

    #[test]
    fn outer_filter_ignores_non_items() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("alice", "person", 100, 0), &mut out)
            .unwrap();
        op.on_punctuation(Timestamp::from_secs(500), &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(op.retained(), 0);
    }

    #[test]
    fn exists_emits_eagerly() {
        let mut op = WindowExists::new(
            SemiJoinKind::Exists,
            WindowExtent::PrecedingAndFollowing(Duration::from_secs(60)),
            Expr::eq(Expr::qcol(1, 1), Expr::lit("person")),
            Some(Expr::eq(Expr::col(1), Expr::lit("item"))),
        );
        let mut out = Vec::new();
        op.on_tuple(0, &reading("item1", "item", 100, 0), &mut out)
            .unwrap();
        assert!(out.is_empty());
        op.on_tuple(1, &reading("alice", "person", 120, 1), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts(), Timestamp::from_secs(120));
        // No duplicate emission at close.
        op.on_punctuation(Timestamp::from_secs(500), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn exists_with_preceding_witness_is_immediate() {
        let mut op = WindowExists::new(
            SemiJoinKind::Exists,
            WindowExtent::PrecedingAndFollowing(Duration::from_secs(60)),
            Expr::eq(Expr::qcol(1, 1), Expr::lit("person")),
            None,
        );
        let mut out = Vec::new();
        op.on_tuple(1, &reading("alice", "person", 90, 0), &mut out)
            .unwrap();
        op.on_tuple(0, &reading("item1", "item", 100, 1), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts(), Timestamp::from_secs(100));
    }

    #[test]
    fn multiple_pending_outers_finalize_in_order() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        op.on_tuple(0, &reading("i1", "item", 100, 0), &mut out)
            .unwrap();
        op.on_tuple(0, &reading("i2", "item", 110, 1), &mut out)
            .unwrap();
        op.on_tuple(1, &reading("p", "person", 165, 2), &mut out)
            .unwrap();
        // i1 closes at 160 (person at 165 outside); i2 covered (165 ≤ 170).
        op.on_punctuation(Timestamp::from_secs(400), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::str("i1"));
    }

    #[test]
    fn inner_buffer_is_trimmed() {
        let mut op = theft_detector();
        let mut out = Vec::new();
        for i in 0..100u64 {
            op.on_tuple(1, &reading("p", "person", i * 10, i), &mut out)
                .unwrap();
        }
        // Window reach is 60 s; at now=990 only inner ≥ 930 are retained.
        assert!(op.retained() <= 8, "retained {}", op.retained());
    }
}
