//! Windowed, grouped aggregation.
//!
//! Covers the paper's §2.1 "Data Aggregation" tasks: counts per hour,
//! min/max sensor values per patient, EPC-pattern counts (Example 3,
//! where the grouping is degenerate and the predicate upstream selects
//! the EPC pattern). Supports:
//!
//! * grouping by arbitrary expressions,
//! * any [`Aggregate`] from the registry (built-in or UDA),
//! * `RANGE d PRECEDING` sliding windows (incremental when the
//!   accumulator can retract, recompute-from-buffer otherwise),
//!   unbounded (cumulative) aggregation, and
//! * two emission policies: per-arrival (continuous) or on-punctuation
//!   (periodic report, the ALE reporting style).

use super::Operator;
use crate::agg::{Accumulator, AggregateRef};
use crate::ckpt::StateNode;
use crate::error::Result;
use crate::expr::Expr;
use crate::hash::FnvBuildHasher;
use crate::key::{KeyCodec, StateKey};
use crate::time::{Duration, Timestamp};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Window shape for aggregation: time-based or row-count-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggWindow {
    /// `RANGE d PRECEDING` — retain tuples within `d` of the newest.
    Range(Duration),
    /// `ROWS n PRECEDING` — retain the most recent `n + 1` tuples
    /// (per group).
    Rows(usize),
}

/// One aggregate column: the function plus its argument expression.
pub struct AggSpec {
    /// Aggregate function (COUNT, SUM, ..., or a UDA).
    pub agg: AggregateRef,
    /// Argument expression, evaluated per input tuple.
    pub arg: Expr,
}

/// When aggregate rows are emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emission {
    /// Emit the affected group's current aggregates after every arrival —
    /// the continuous-query default.
    PerArrival,
    /// Emit all groups on every punctuation (ALE-style periodic reports),
    /// then reset unbounded accumulators per reporting period.
    OnPunctuation,
}

struct GroupState {
    /// Retained (ts, arg-value) pairs for the window; empty when unbounded
    /// (nothing ever retracts).
    window: VecDeque<(Timestamp, Vec<Value>)>,
    accs: Vec<Box<dyn Accumulator>>,
    /// Set when some accumulator failed to retract and the accumulators
    /// must be rebuilt from the window buffer before the next read.
    dirty: bool,
}

/// Grouped sliding-window aggregation operator.
///
/// Output rows are `group values ++ aggregate values`, timestamped at the
/// triggering arrival (or at the punctuation for periodic emission).
/// Groups key on compact [`StateKey`] encodings; probes reuse a scratch
/// buffer so existing groups are found without allocating.
pub struct WindowAggregate {
    group_by: Vec<Expr>,
    specs: Vec<AggSpec>,
    /// `None` = unbounded (cumulative) aggregation.
    window: Option<AggWindow>,
    emission: Emission,
    codec: KeyCodec,
    scratch: Vec<u8>,
    groups: HashMap<StateKey, GroupState, FnvBuildHasher>,
}

impl WindowAggregate {
    /// Build the operator. `window = None` aggregates over the whole
    /// stream history (cumulative).
    pub fn new(
        group_by: Vec<Expr>,
        specs: Vec<AggSpec>,
        window: Option<AggWindow>,
        emission: Emission,
    ) -> WindowAggregate {
        WindowAggregate {
            group_by,
            specs,
            window,
            emission,
            codec: KeyCodec::raw(),
            scratch: Vec::new(),
            groups: HashMap::default(),
        }
    }

    fn fresh_accs(specs: &[AggSpec]) -> Vec<Box<dyn Accumulator>> {
        specs.iter().map(|s| s.agg.init()).collect()
    }

    fn slide(window: AggWindow, specs: &[AggSpec], g: &mut GroupState, now: Timestamp) {
        let expired = |g: &GroupState| -> bool {
            match window {
                AggWindow::Range(d) => g
                    .window
                    .front()
                    .is_some_and(|(ts, _)| *ts < now.saturating_sub(d)),
                AggWindow::Rows(n) => g.window.len() > n + 1,
            }
        };
        while expired(g) {
            let (_, vals) = g.window.pop_front().expect("front checked");
            if !g.dirty {
                for (acc, v) in g.accs.iter_mut().zip(&vals) {
                    if acc.retract(v).is_err() {
                        g.dirty = true;
                        break;
                    }
                }
            }
        }
        if g.dirty {
            // Rebuild from the surviving window contents.
            g.accs = Self::fresh_accs(specs);
            for (_, vals) in &g.window {
                for (acc, v) in g.accs.iter_mut().zip(vals) {
                    acc.iterate(v)
                        .expect("re-iterate of previously accepted value");
                }
            }
            g.dirty = false;
        }
    }

    fn emit_group(
        codec: &KeyCodec,
        key: &[Value],
        g: &GroupState,
        ts: Timestamp,
        seq: u64,
    ) -> Tuple {
        let mut vals: Vec<Value> = key.to_vec();
        vals.extend(g.accs.iter().map(|a| a.terminate()));
        // Key values are already canonical (decoded through the codec or
        // evaluated from canonical inputs); accumulator outputs can be
        // freshly built strings (MIN/MAX over a string column), so they
        // route through the interner to stay canonical mid-chain.
        // `canonicalize` is a no-op match for non-string values.
        if let Some(int) = codec.interner() {
            for v in &mut vals[key.len()..] {
                int.canonicalize(v);
            }
        }
        Tuple::new(vals, ts, seq)
    }
}

impl Operator for WindowAggregate {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let key: Vec<Value> = self
            .group_by
            .iter()
            .map(|e| e.eval(&[t]))
            .collect::<Result<_>>()?;
        let args: Vec<Value> = self
            .specs
            .iter()
            .map(|s| s.arg.eval(&[t]))
            .collect::<Result<_>>()?;

        self.codec.encode_into(&mut self.scratch, &key);
        if !self.groups.contains_key(self.scratch.as_slice()) {
            self.groups.insert(
                StateKey::from_slice(&self.scratch),
                GroupState {
                    window: VecDeque::new(),
                    accs: Self::fresh_accs(&self.specs),
                    dirty: false,
                },
            );
        }
        let g = self
            .groups
            .get_mut(self.scratch.as_slice())
            .expect("group just ensured");
        for (acc, v) in g.accs.iter_mut().zip(&args) {
            acc.iterate(v)?;
        }
        if let Some(w) = self.window {
            g.window.push_back((t.ts(), args));
            Self::slide(w, &self.specs, g, t.ts());
        }
        if self.emission == Emission::PerArrival {
            out.push(Self::emit_group(&self.codec, &key, g, t.ts(), t.seq()));
        }
        Ok(())
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        if self.emission == Emission::OnPunctuation {
            // Emission order is by the decoded key's rendering —
            // identical to the seed's `Vec<Value>` sort, so periodic
            // reports are byte-identical across representations.
            let mut keys: Vec<(Vec<Value>, StateKey)> = self
                .groups
                .keys()
                .map(|k| Ok((self.codec.decode(k.as_bytes())?, k.clone())))
                .collect::<Result<_>>()?;
            keys.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
            for (vals, key) in keys {
                if let Some(w) = self.window {
                    let specs = &self.specs;
                    let g = self.groups.get_mut(&key).expect("key from map");
                    Self::slide(w, specs, g, ts);
                }
                let g = &self.groups[&key];
                out.push(Self::emit_group(&self.codec, &vals, g, ts, 0));
            }
            if self.window.is_none() {
                // Periodic reports over unbounded state restart each period
                // (tumbling behaviour, matching ALE report cycles).
                self.groups.clear();
            }
        } else if let Some(w) = self.window {
            // Keep sliding state tight even without arrivals (time
            // windows only — ROWS windows never expire by time); drop
            // groups whose windows emptied.
            if matches!(w, AggWindow::Range(_)) {
                let specs = &self.specs;
                for g in self.groups.values_mut() {
                    Self::slide(w, specs, g, ts);
                }
                self.groups.retain(|_, g| !g.window.is_empty());
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "aggregate"
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        self.codec = codec.clone();
    }

    fn state_key_bytes(&self) -> usize {
        self.groups.keys().map(|k| k.len()).sum()
    }

    // Per-arrival emission re-slides the window at each arrival's own
    // timestamp, so punctuations only pre-expire rows the next arrival
    // would expire anyway; punctuation emission, by contrast, *is* the
    // output schedule and every watermark matters.
    fn punctuation_sensitive(&self) -> bool {
        self.emission == Emission::OnPunctuation
    }

    fn retained(&self) -> usize {
        self.groups.values().map(|g| g.window.len().max(1)).sum()
    }

    fn save_state(&self) -> Result<StateNode> {
        // Keys decode back to values: the checkpoint format is the same
        // whichever representation the engine runs.
        let mut keys: Vec<(Vec<Value>, &StateKey)> = self
            .groups
            .keys()
            .map(|k| Ok((self.codec.decode(k.as_bytes())?, k)))
            .collect::<Result<_>>()?;
        keys.sort_by_key(|(k, _)| format!("{k:?}"));
        let groups = keys
            .into_iter()
            .map(|(key, state_key)| {
                let g = &self.groups[state_key];
                let key_node =
                    StateNode::List(key.iter().map(|v| StateNode::Value(v.clone())).collect());
                let window = StateNode::List(
                    g.window
                        .iter()
                        .map(|(ts, vals)| {
                            let mut entry = vec![StateNode::ts(*ts)];
                            entry.extend(vals.iter().map(|v| StateNode::Value(v.clone())));
                            StateNode::List(entry)
                        })
                        .collect(),
                );
                let accs = StateNode::List(
                    g.accs
                        .iter()
                        .map(|a| a.save_state())
                        .collect::<Result<_>>()?,
                );
                Ok(StateNode::List(vec![
                    key_node,
                    window,
                    accs,
                    StateNode::Bool(g.dirty),
                ]))
            })
            .collect::<Result<_>>()?;
        Ok(StateNode::List(groups))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.groups.clear();
        for gnode in state.as_list()? {
            let key = gnode
                .item(0)?
                .as_list()?
                .iter()
                .map(|v| v.as_value().cloned())
                .collect::<Result<Vec<Value>>>()?;
            let mut window = VecDeque::new();
            for entry in gnode.item(1)?.as_list()? {
                let parts = entry.as_list()?;
                if parts.is_empty() {
                    return Err(crate::error::DsmsError::ckpt("empty window entry"));
                }
                let ts = parts[0].as_ts()?;
                let vals = parts[1..]
                    .iter()
                    .map(|v| v.as_value().cloned())
                    .collect::<Result<Vec<Value>>>()?;
                window.push_back((ts, vals));
            }
            let acc_nodes = gnode.item(2)?.as_list()?;
            if acc_nodes.len() != self.specs.len() {
                return Err(crate::error::DsmsError::ckpt(format!(
                    "aggregate group has {} accumulators, checkpoint has {}",
                    self.specs.len(),
                    acc_nodes.len()
                )));
            }
            let mut accs = Self::fresh_accs(&self.specs);
            for (acc, node) in accs.iter_mut().zip(acc_nodes) {
                acc.restore_state(node)?;
            }
            self.groups.insert(
                self.codec.encode(&key),
                GroupState {
                    window,
                    accs,
                    dirty: gnode.item(3)?.as_bool()?,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateRegistry;

    fn t(tag: &str, v: i64, secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::str(tag), Value::Int(v)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn count_sum(window: Option<AggWindow>, emission: Emission) -> WindowAggregate {
        let reg = AggregateRegistry::new();
        WindowAggregate::new(
            vec![Expr::col(0)],
            vec![
                AggSpec {
                    agg: reg.get("count").unwrap(),
                    arg: Expr::col(1),
                },
                AggSpec {
                    agg: reg.get("sum").unwrap(),
                    arg: Expr::col(1),
                },
            ],
            window,
            emission,
        )
    }

    #[test]
    fn cumulative_per_arrival() {
        let mut agg = count_sum(None, Emission::PerArrival);
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 10, 0, 0), &mut out).unwrap();
        agg.on_tuple(0, &t("a", 5, 1, 1), &mut out).unwrap();
        agg.on_tuple(0, &t("b", 7, 2, 2), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        // key, count, sum
        assert_eq!(
            out[1].values(),
            &[Value::str("a"), Value::Int(2), Value::Int(15)]
        );
        assert_eq!(
            out[2].values(),
            &[Value::str("b"), Value::Int(1), Value::Int(7)]
        );
    }

    #[test]
    fn sliding_window_retracts() {
        let mut agg = count_sum(
            Some(AggWindow::Range(Duration::from_secs(10))),
            Emission::PerArrival,
        );
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 1, 0, 0), &mut out).unwrap();
        agg.on_tuple(0, &t("a", 2, 5, 1), &mut out).unwrap();
        // t=20: first two readings (0, 5) are out of the 10s window.
        agg.on_tuple(0, &t("a", 4, 20, 2), &mut out).unwrap();
        assert_eq!(
            out[2].values(),
            &[Value::str("a"), Value::Int(1), Value::Int(4)]
        );
    }

    #[test]
    fn sliding_window_min_recomputes() {
        // MIN cannot retract, exercising the rebuild path.
        let reg = AggregateRegistry::new();
        let mut agg = WindowAggregate::new(
            vec![],
            vec![AggSpec {
                agg: reg.get("min").unwrap(),
                arg: Expr::col(1),
            }],
            Some(AggWindow::Range(Duration::from_secs(10))),
            Emission::PerArrival,
        );
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 1, 0, 0), &mut out).unwrap();
        agg.on_tuple(0, &t("a", 5, 5, 1), &mut out).unwrap();
        assert_eq!(out[1].values(), &[Value::Int(1)]);
        // t=12: the min=1 reading at t=0 expires; min becomes 5.
        agg.on_tuple(0, &t("a", 9, 12, 2), &mut out).unwrap();
        assert_eq!(out[2].values(), &[Value::Int(5)]);
    }

    #[test]
    fn punctuation_emission_reports_all_groups() {
        let mut agg = count_sum(None, Emission::OnPunctuation);
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 1, 0, 0), &mut out).unwrap();
        agg.on_tuple(0, &t("b", 2, 1, 1), &mut out).unwrap();
        assert!(out.is_empty());
        agg.on_punctuation(Timestamp::from_secs(60), &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
        // Next period starts fresh (tumbling).
        out.clear();
        agg.on_tuple(0, &t("a", 9, 61, 2), &mut out).unwrap();
        agg.on_punctuation(Timestamp::from_secs(120), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].values(),
            &[Value::str("a"), Value::Int(1), Value::Int(9)]
        );
    }

    #[test]
    fn rows_window_slides_by_count() {
        // ROWS 1 PRECEDING = current + one previous row, per group.
        let mut agg = count_sum(Some(AggWindow::Rows(1)), Emission::PerArrival);
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 10, 0, 0), &mut out).unwrap();
        agg.on_tuple(0, &t("a", 20, 1, 1), &mut out).unwrap();
        agg.on_tuple(0, &t("a", 30, 2, 2), &mut out).unwrap();
        assert_eq!(
            out[2].values(),
            &[Value::str("a"), Value::Int(2), Value::Int(50)]
        );
        // ROWS windows count per group, not globally.
        agg.on_tuple(0, &t("b", 7, 3, 3), &mut out).unwrap();
        assert_eq!(
            out[3].values(),
            &[Value::str("b"), Value::Int(1), Value::Int(7)]
        );
        // Time never expires a ROWS window.
        agg.on_punctuation(Timestamp::from_secs(1_000_000), &mut out)
            .unwrap();
        assert!(agg.retained() > 0);
    }

    #[test]
    fn punctuation_prunes_expired_sliding_groups() {
        let mut agg = count_sum(
            Some(AggWindow::Range(Duration::from_secs(1))),
            Emission::PerArrival,
        );
        let mut out = Vec::new();
        agg.on_tuple(0, &t("a", 1, 0, 0), &mut out).unwrap();
        assert_eq!(agg.retained(), 1);
        agg.on_punctuation(Timestamp::from_secs(100), &mut out)
            .unwrap();
        assert_eq!(agg.retained(), 0);
    }
}
