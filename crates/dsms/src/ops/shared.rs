//! Multi-query shared execution: one physical chain, many subscribers.
//!
//! The paper's workload is thousands of near-identical dashboards over
//! the same RFID streams. Registering each one as a private operator
//! chain costs a private dedup map / window buffer / detector history
//! per query. [`SharedCore`] holds the *shared prefix* of such queries
//! exactly once; every subscriber is registered as a [`SharedTap`] — a
//! thin per-query view that runs the shared prefix at most once per
//! input batch (memoized across subscribers) and applies only the
//! query's residual projection to the shared output.
//!
//! # Why memoization is sound
//!
//! The engine delivers each input batch to every subscriber of a stream
//! within one dispatch step, and punctuations to every query within one
//! (strictly monotone) `advance_to`. Sibling taps therefore observe the
//! same batch / punctuation back-to-back with nothing else touching the
//! core in between, so a depth-1 memo per input port reproduces exactly
//! the outputs an independent chain would compute — the share
//! differential suite asserts byte-identical results.
//!
//! Tuple sequence numbers never repeat within an engine, so the memo key
//! `(first seq, last seq, len, first ts)` cannot collide between two
//! adjacent distinct batches.

use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::key::KeyCodec;
use crate::obs::Counter;
use crate::ops::{OpReport, Operator};
use crate::time::Timestamp;
use crate::tuple::Tuple;
use parking_lot::Mutex;
use std::sync::Arc;

/// Identity of one delivered batch on one port.
type BatchKey = (u64, u64, usize, Timestamp);

/// The shared half of a split query plan: the stateful operator prefix,
/// executed once per input batch no matter how many subscribers tap it.
pub struct SharedCore {
    /// The shared operator (chain) itself.
    pub op: Box<dyn Operator>,
    /// Tuples delivered to the core across all ports. Attachment is
    /// only allowed while this is zero: a warm chain's state would
    /// differ from the fresh chain an independent registration gets.
    pub tuples_in: u64,
    /// Names of every query that ever attached, in attach order.
    pub subscribers: Vec<String>,
    /// Depth-1 memo per input port: the most recent batch and the
    /// outputs the core produced for it.
    memo: Vec<Option<(BatchKey, Vec<Tuple>)>>,
    /// Memo for the most recent punctuation.
    punct_memo: Option<(Timestamp, Vec<Tuple>)>,
    /// Batches served from the memo instead of re-executed (the work
    /// sharing actually won).
    pub memo_hits: u64,
}

/// Shared handle to a [`SharedCore`].
pub type SharedCoreRef = Arc<Mutex<SharedCore>>;

impl SharedCore {
    /// Wrap an operator as a shareable core.
    pub fn new(op: Box<dyn Operator>) -> SharedCoreRef {
        let ports = op.num_ports();
        Arc::new(Mutex::new(SharedCore {
            op,
            tuples_in: 0,
            subscribers: Vec::new(),
            memo: vec![None; ports],
            punct_memo: None,
            memo_hits: 0,
        }))
    }

    /// Drop the memoized batches (checkpoint restore: a batch never
    /// straddles a checkpoint, so stale memo entries must not survive).
    pub fn reset_memo(&mut self) {
        for m in &mut self.memo {
            *m = None;
        }
        self.punct_memo = None;
    }
}

/// A per-query subscription over a [`SharedCore`]: runs the shared
/// prefix (memoized) and applies this query's residual stage — the
/// final projection an independent chain would have run last.
pub struct SharedTap {
    core: SharedCoreRef,
    residual: Option<Box<dyn Operator>>,
    name: String,
    /// Cached from the core so the per-push `needs_per_tuple_watermarks`
    /// scan never takes the lock.
    ports: usize,
    sensitive: bool,
    /// Engine-level twin of `SharedCore::memo_hits` for this tap.
    shared_hits: Option<Counter>,
}

impl SharedTap {
    /// Attach a new tap to `core`, owning the query's residual stage.
    pub fn new(core: SharedCoreRef, residual: Option<Box<dyn Operator>>) -> SharedTap {
        let (ports, sensitive, name) = {
            let c = core.lock();
            (
                c.op.num_ports(),
                c.op.punctuation_sensitive(),
                format!("shared({})", c.op.name()),
            )
        };
        SharedTap {
            core,
            residual,
            name,
            ports,
            sensitive,
            shared_hits: None,
        }
    }

    /// Wire a counter that tracks this tap's memo hits.
    pub fn set_hit_counter(&mut self, c: Counter) {
        self.shared_hits = Some(c);
    }

    fn apply_residual(&mut self, shared: Vec<Tuple>, out: &mut Vec<Tuple>) -> Result<()> {
        match &mut self.residual {
            None => {
                out.extend(shared);
                Ok(())
            }
            Some(r) => r.process_batch(0, &shared, out),
        }
    }
}

impl Operator for SharedTap {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        self.process_batch(port, std::slice::from_ref(t), out)
    }

    fn process_batch(&mut self, port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let key: BatchKey = (
            batch[0].seq(),
            batch[batch.len() - 1].seq(),
            batch.len(),
            batch[0].ts(),
        );
        let shared = {
            let mut core = self.core.lock();
            let hit = matches!(&core.memo[port], Some((k, _)) if *k == key);
            if hit {
                core.memo_hits += 1;
                if let Some(c) = &self.shared_hits {
                    c.inc();
                }
            } else {
                let mut produced = Vec::new();
                core.op.process_batch(port, batch, &mut produced)?;
                core.tuples_in += batch.len() as u64;
                core.memo[port] = Some((key, produced));
            }
            core.memo[port]
                .as_ref()
                .expect("memo filled above")
                .1
                .clone()
        };
        self.apply_residual(shared, out)
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        let shared = {
            let mut core = self.core.lock();
            let hit = matches!(&core.punct_memo, Some((t, _)) if *t == ts);
            if !hit {
                let mut produced = Vec::new();
                core.op.on_punctuation(ts, &mut produced)?;
                core.punct_memo = Some((ts, produced));
            } else {
                core.memo_hits += 1;
            }
            core.punct_memo
                .as_ref()
                .expect("memo filled above")
                .1
                .clone()
        };
        self.apply_residual(shared, out)?;
        // Keep the punctuation flowing through the residual for parity
        // with an unsplit chain (the residual stages are stateless, but
        // the schedule must match exactly).
        if let Some(r) = &mut self.residual {
            r.on_punctuation(ts, out)?;
        }
        Ok(())
    }

    fn punctuation_sensitive(&self) -> bool {
        self.sensitive
    }

    fn num_ports(&self) -> usize {
        self.ports
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        // The core is bound once at creation by the engine; only this
        // tap's residual still needs the codec.
        if let Some(r) = &mut self.residual {
            r.bind_interner(codec);
        }
    }

    /// Residual-only: the core's bytes are attributed exactly once by
    /// the engine's shared-chain rows, not per subscriber.
    fn state_key_bytes(&self) -> usize {
        self.residual.as_ref().map_or(0, |r| r.state_key_bytes())
    }

    /// Per-query view: what this query's full pipeline retains (core
    /// plus residual) — the number an independent chain would report.
    fn retained(&self) -> usize {
        self.core.lock().op.retained() + self.residual.as_ref().map_or(0, |r| r.retained())
    }

    fn report(&self) -> OpReport {
        let core = self.core.lock();
        let mut r = core.op.report();
        r.counters
            .push(("shared_by".to_string(), core.subscribers.len() as u64));
        r.counters
            .push(("shared_memo_hits".to_string(), core.memo_hits));
        drop(core);
        if let Some(res) = &self.residual {
            r.children.push(res.report());
        }
        r
    }

    /// Per-subscriber state is the residual only; the engine saves the
    /// core once in the checkpoint's shared-chain section.
    fn save_state(&self) -> Result<StateNode> {
        match &self.residual {
            Some(r) => r.save_state(),
            None => Ok(StateNode::Unit),
        }
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        match &mut self.residual {
            Some(r) => r.restore_state(state),
            None => match state {
                StateNode::Unit => Ok(()),
                _ => Err(DsmsError::ckpt(
                    "shared tap without residual expects Unit state".to_string(),
                )),
            },
        }
    }
}
