//! Duplicate elimination (Example 1 of the paper).
//!
//! The paper's criterion: identical readings (same key columns) within a
//! time threshold are the same physical observation; only the first of
//! each burst passes. Note that duplicates *chain*: a reading suppressed
//! as a duplicate still extends the suppression window for later readings
//! (it is still "in the stream" that the sub-query of Example 1 ranges
//! over). This matches the NOT EXISTS formulation:
//!
//! ```sql
//! INSERT INTO cleaned_readings
//! SELECT * FROM readings AS r1 WHERE NOT EXISTS
//!   (SELECT * FROM TABLE(readings OVER (RANGE 1 seconds PRECEDING CURRENT)) AS r2
//!    WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
//! ```

use super::{OpReport, Operator};
use crate::batch::{ColumnBatch, ColumnData};
use crate::ckpt::StateNode;
use crate::error::Result;
use crate::expr::Expr;
use crate::hash::FnvBuildHasher;
use crate::key::{KeyCodec, StateKey};
use crate::time::{Duration, Timestamp};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Streaming duplicate filter keyed by arbitrary expressions.
///
/// State is one timestamp per live key — the paper's point that a DSMS
/// does this with a 1-second window rather than unbounded history. Keys
/// are stored as compact [`StateKey`] encodings; probes encode into a
/// reusable scratch buffer so the hot path allocates nothing on hits.
pub struct Dedup {
    key: Vec<Expr>,
    /// When every key expression is a plain column reference, the
    /// column indices — key extraction then encodes straight from the
    /// tuple's columns, skipping expression evaluation entirely (the
    /// planner always produces column keys, so this is the hot
    /// configuration).
    key_cols: Option<Vec<usize>>,
    window: Duration,
    codec: KeyCodec,
    scratch: Vec<u8>,
    last_seen: HashMap<StateKey, Timestamp, FnvBuildHasher>,
    /// Keys are purged lazily when stream time has moved a full window
    /// past them; this counter avoids rescanning the map on every tuple.
    last_purge: Timestamp,
    suppressed: u64,
}

impl Dedup {
    /// Suppress tuples whose `key` was seen within `window` before them.
    pub fn new(key: Vec<Expr>, window: Duration) -> Dedup {
        let key_cols = key
            .iter()
            .map(|e| match e {
                Expr::Col { rel: 0, col } => Some(*col),
                _ => None,
            })
            .collect();
        Dedup {
            key,
            key_cols,
            window,
            codec: KeyCodec::raw(),
            scratch: Vec::new(),
            last_seen: HashMap::default(),
            last_purge: Timestamp::ZERO,
            suppressed: 0,
        }
    }

    /// Duplicates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Encode the tuple's key into the scratch buffer. The column fast
    /// path reads values in place — no `Vec<Value>` is built at all.
    fn encode_key(&mut self, t: &Tuple) -> Result<()> {
        match &self.key_cols {
            Some(cols) => {
                self.scratch.clear();
                for &c in cols {
                    self.codec.encode_value_into(&mut self.scratch, t.value(c));
                }
            }
            None => {
                let vals = self
                    .key
                    .iter()
                    .map(|e| e.eval(&[t]))
                    .collect::<Result<Vec<Value>>>()?;
                self.codec.encode_into(&mut self.scratch, &vals);
            }
        }
        Ok(())
    }

    fn purge(&mut self, now: Timestamp) {
        let bound = now.saturating_sub(self.window);
        self.last_seen.retain(|_, &mut seen| seen >= bound);
        self.last_purge = now;
    }
}

impl Dedup {
    /// One probe: test for a duplicate and refresh the suppression
    /// window in place (duplicates chain — a suppressed reading still
    /// extends the window for later ones). Returns whether `t` passes.
    fn admit(&mut self, t: &Tuple) -> Result<bool> {
        self.encode_key(t)?;
        Ok(self.admit_scratch(t.ts()))
    }

    /// The probe itself, keyed by whatever is in the scratch buffer —
    /// shared by the row path ([`Dedup::admit`]) and the columnar
    /// kernel, which encodes the key straight from column slices.
    fn admit_scratch(&mut self, now: Timestamp) -> bool {
        let mut dup = false;
        if let Some(seen) = self.last_seen.get_mut(self.scratch.as_slice()) {
            // Window is RANGE w PRECEDING (inclusive): a prior
            // reading exactly w old still counts as a duplicate.
            dup = now.since(*seen).is_some_and(|gap| gap <= self.window);
            *seen = now;
        } else {
            self.last_seen
                .insert(StateKey::from_slice(&self.scratch), now);
        }
        if dup {
            self.suppressed += 1;
        }
        !dup
    }

    /// Amortized purge: once stream time has advanced 2 windows past
    /// the last purge, sweep dead keys.
    fn maybe_purge(&mut self, now: Timestamp) {
        if now.saturating_sub(self.window) > self.last_purge.saturating_add(self.window) {
            self.purge(now);
        }
    }
}

impl Operator for Dedup {
    fn on_tuple(&mut self, _port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if self.admit(t)? {
            out.push(t.clone());
        }
        self.maybe_purge(t.ts());
        Ok(())
    }

    fn process_batch(&mut self, _port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        // Same admissions as the per-tuple loop; the purge (pure state
        // hygiene, see `punctuation_sensitive`) is checked once per
        // batch instead of per tuple.
        out.reserve(batch.len());
        for t in batch {
            if self.admit(t)? {
                out.push(t.clone());
            }
        }
        if let Some(last) = batch.last() {
            self.maybe_purge(last.ts());
        }
        Ok(())
    }

    fn columnar_capable(&self) -> bool {
        // The kernel wants plain column keys (the planner's hot
        // configuration) and an interned codec — its whole advantage is
        // writing 4-byte symbol ids into the key without touching the
        // dictionary lock. Seed codecs and expression keys stay row-wise.
        self.key_cols.is_some() && self.codec.interner().is_some()
    }

    fn columns_to_columns(
        &mut self,
        port: usize,
        cols: &ColumnBatch,
    ) -> Result<Option<ColumnBatch>> {
        Ok(self
            .columns_to_selection(port, cols)?
            .map(|keep| cols.filter(&keep)))
    }

    fn columns_to_selection(
        &mut self,
        _port: usize,
        cols: &ColumnBatch,
    ) -> Result<Option<Vec<bool>>> {
        // Decide fallback *before* any admission mutates state: the
        // caller replays declined batches through the row path in full.
        let Some(key_cols) = self.key_cols.clone() else {
            return Ok(None);
        };
        if self.codec.interner().is_none() || key_cols.iter().any(|&c| c >= cols.arity()) {
            return Ok(None);
        }
        let n = cols.len();
        let mut keep = vec![false; n];
        for i in 0..n {
            self.scratch.clear();
            for &c in &key_cols {
                let col = cols.column(c);
                if !col.is_valid(i) {
                    self.codec.encode_null_into(&mut self.scratch);
                    continue;
                }
                match &col.data {
                    // The win: the symbol comes straight off the column —
                    // no dictionary lock, no `Value` clone per probe.
                    ColumnData::Str(v) => self.codec.encode_sym_into(&mut self.scratch, v[i]),
                    ColumnData::Int(v) => self
                        .codec
                        .encode_value_into(&mut self.scratch, &Value::Int(v[i])),
                    ColumnData::Float(v) => self
                        .codec
                        .encode_value_into(&mut self.scratch, &Value::Float(v[i])),
                    ColumnData::Bool(v) => self
                        .codec
                        .encode_value_into(&mut self.scratch, &Value::Bool(v[i])),
                    ColumnData::Ts(v) => self
                        .codec
                        .encode_value_into(&mut self.scratch, &Value::Ts(v[i])),
                    ColumnData::Mixed(v) => self.codec.encode_value_into(&mut self.scratch, &v[i]),
                }
            }
            keep[i] = self.admit_scratch(cols.ts()[i]);
        }
        if n > 0 {
            // Mirrors `process_batch`: one amortized purge per batch.
            self.maybe_purge(cols.ts()[n - 1]);
        }
        Ok(Some(keep))
    }

    fn on_punctuation(&mut self, ts: Timestamp, _out: &mut Vec<Tuple>) -> Result<()> {
        self.purge(ts);
        Ok(())
    }

    // Punctuations only purge keys whose last sighting is already more
    // than a full window old — keys that could never test as duplicates
    // again (a duplicate requires gap <= window). Skipping or coalescing
    // them cannot change which tuples pass.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "dedup"
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        self.codec = codec.clone();
    }

    fn state_key_bytes(&self) -> usize {
        self.last_seen.keys().map(|k| k.len()).sum()
    }

    fn retained(&self) -> usize {
        self.last_seen.len()
    }

    fn report(&self) -> OpReport {
        let mut r = OpReport::leaf(self.name(), self.retained());
        r.counters = vec![("suppressed".to_string(), self.suppressed)];
        r.columnar = Some(self.columnar_capable());
        r
    }

    fn save_state(&self) -> Result<StateNode> {
        // Keys decode back to values so the checkpoint stays
        // representation-independent, and entries sort by key rendering
        // so equal states serialize to equal bytes regardless of
        // hash-map iteration order.
        let mut entries: Vec<(Vec<Value>, Timestamp)> = self
            .last_seen
            .iter()
            .map(|(k, &seen)| Ok((self.codec.decode(k.as_bytes())?, seen)))
            .collect::<Result<_>>()?;
        entries.sort_by_key(|(k, _)| format!("{k:?}"));
        let pairs = entries
            .into_iter()
            .map(|(k, seen)| {
                let mut item: Vec<StateNode> = k.into_iter().map(StateNode::Value).collect();
                item.push(StateNode::ts(seen));
                StateNode::List(item)
            })
            .collect();
        Ok(StateNode::List(vec![
            StateNode::List(pairs),
            StateNode::ts(self.last_purge),
            StateNode::U64(self.suppressed),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.last_seen.clear();
        for pair in state.item(0)?.as_list()? {
            let parts = pair.as_list()?;
            if parts.is_empty() {
                return Err(crate::error::DsmsError::ckpt("empty dedup entry"));
            }
            let (key_part, ts_part) = parts.split_at(parts.len() - 1);
            let key = key_part
                .iter()
                .map(|v| v.as_value().cloned())
                .collect::<Result<Vec<Value>>>()?;
            self.last_seen
                .insert(self.codec.encode(&key), ts_part[0].as_ts()?);
        }
        self.last_purge = state.item(1)?.as_ts()?;
        self.suppressed = state.item(2)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(reader: &str, tag: &str, millis: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![
                Value::str(reader),
                Value::str(tag),
                Value::Ts(Timestamp::from_millis(millis)),
            ],
            Timestamp::from_millis(millis),
            seq,
        )
    }

    fn dedup_1s() -> Dedup {
        Dedup::new(vec![Expr::col(0), Expr::col(1)], Duration::from_secs(1))
    }

    #[test]
    fn suppresses_within_window() {
        let mut d = dedup_1s();
        let mut out = Vec::new();
        d.on_tuple(0, &reading("r", "t", 0, 0), &mut out).unwrap();
        d.on_tuple(0, &reading("r", "t", 500, 1), &mut out).unwrap();
        d.on_tuple(0, &reading("r", "t", 2000, 2), &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts(), Timestamp::ZERO);
        assert_eq!(out[1].ts(), Timestamp::from_secs(2));
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let mut d = dedup_1s();
        let mut out = Vec::new();
        d.on_tuple(0, &reading("r", "t", 0, 0), &mut out).unwrap();
        // Exactly 1s later: still inside RANGE 1s PRECEDING.
        d.on_tuple(0, &reading("r", "t", 1000, 1), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        // 1s + 1ms after the *duplicate* (which refreshed the window).
        d.on_tuple(0, &reading("r", "t", 2001, 2), &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn duplicates_chain() {
        // Readings every 600ms: each is a duplicate of the previous, so
        // only the first passes — matching the NOT EXISTS semantics where
        // the sub-query ranges over the *raw* stream.
        let mut d = dedup_1s();
        let mut out = Vec::new();
        for i in 0..5u64 {
            d.on_tuple(0, &reading("r", "t", i * 600, i), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn distinct_keys_pass() {
        let mut d = dedup_1s();
        let mut out = Vec::new();
        d.on_tuple(0, &reading("r1", "t", 0, 0), &mut out).unwrap();
        d.on_tuple(0, &reading("r2", "t", 1, 1), &mut out).unwrap();
        d.on_tuple(0, &reading("r1", "u", 2, 2), &mut out).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn punctuation_purges_state() {
        let mut d = dedup_1s();
        let mut out = Vec::new();
        for i in 0..100u64 {
            d.on_tuple(0, &reading("r", &format!("t{i}"), i, i), &mut out)
                .unwrap();
        }
        assert_eq!(d.retained(), 100);
        d.on_punctuation(Timestamp::from_secs(10), &mut out)
            .unwrap();
        assert_eq!(d.retained(), 0);
    }

    #[test]
    fn columnar_kernel_matches_row_path() {
        use crate::intern::{InternerRef, StrInterner};
        use std::sync::Arc;
        let interner: InternerRef = Arc::new(StrInterner::new());
        let codec = KeyCodec::interned(interner.clone());
        let mut row_d = dedup_1s();
        row_d.bind_interner(&codec);
        let mut col_d = dedup_1s();
        col_d.bind_interner(&codec);
        assert!(col_d.columnar_capable());
        // Interleaved duplicates and fresh keys, including a NULL key.
        let mut tuples = Vec::new();
        for i in 0..200u64 {
            let reader = format!("r{}", i % 3);
            let tag = if i % 7 == 0 {
                Value::Null
            } else {
                Value::str(format!("t{}", i % 5))
            };
            tuples.push(Tuple::new(
                vec![
                    Value::str(reader),
                    tag,
                    Value::Ts(Timestamp::from_millis(i * 90)),
                ],
                Timestamp::from_millis(i * 90),
                i,
            ));
        }
        let mut expect = Vec::new();
        row_d.process_batch(0, &tuples, &mut expect).unwrap();
        let cb = ColumnBatch::from_tuples(&tuples, Some(&interner)).unwrap();
        let got = col_d
            .columns_to_columns(0, &cb)
            .unwrap()
            .expect("kernel accepted")
            .to_tuples()
            .unwrap();
        assert_eq!(got, expect);
        assert_eq!(col_d.suppressed(), row_d.suppressed());
        assert_eq!(col_d.retained(), row_d.retained());
        assert_eq!(col_d.state_key_bytes(), row_d.state_key_bytes());
    }

    #[test]
    fn seed_codec_stays_row_wise() {
        let d = dedup_1s(); // KeyCodec::raw() until bound
        assert!(!d.columnar_capable());
    }

    #[test]
    fn amortized_purge_bounds_state() {
        let mut d = dedup_1s();
        let mut out = Vec::new();
        // Each key appears once; state must not grow to 10_000.
        for i in 0..10_000u64 {
            d.on_tuple(0, &reading("r", &format!("t{i}"), i * 10, i), &mut out)
                .unwrap();
        }
        // Keys older than the window get swept every ~2 windows: retained
        // state stays within a small multiple of rate × window (100/s × 1s).
        assert!(d.retained() <= 350, "retained {} keys", d.retained());
    }
}
