//! Speculative emission with retractions — the *fast* end of the
//! consistency/latency spectrum.
//!
//! A [`SpeculativeGate`] wraps a query's operator tree and lets it emit
//! immediately on every arrival, before the watermark has proven input
//! order. When a late (but within-slack) tuple arrives out of order, the
//! gate rolls the wrapped operator back to its last *stable* snapshot,
//! replays the admitted inputs in `(ts, seq)` order, and diffs the new
//! output history against what it already published: invalidated tuples
//! are withdrawn as [`Sign::Retract`]-signed copies, then the corrected
//! tail is re-emitted at a bumped speculation revision. Downstream
//! consumers that apply retractions therefore converge to exactly the
//! output a `Consistent`-level run would have produced.
//!
//! The stable snapshot advances lazily: engine punctuations mark how far
//! order is proven (`frontier`), and once enough input has been proven
//! the gate bakes that prefix into a fresh snapshot and drops it from the
//! replay log, keeping rollback cost proportional to the disorder window
//! rather than the stream history.

use super::{OpReport, Operator};
use crate::ckpt::StateNode;
use crate::error::{DsmsError, Result};
use crate::key::KeyCodec;
use crate::obs::Counter;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Replay-log compaction threshold: once this many entries are proven by
/// the watermark, they are baked into the stable snapshot. Amortizes the
/// snapshot cost over many tuples while bounding rollback replay length.
const COMPACT_PROVEN: usize = 128;

/// Total order key of a log entry: `(ts, seq)` for tuples, `(ts, MAX)`
/// for punctuations so a watermark replays after every tuple it proves.
type Key = (Timestamp, u64);

#[derive(Debug, Clone)]
enum Entry {
    /// An input tuple admitted on a port.
    Item(usize, Tuple),
    /// An explicit engine punctuation beyond every logged tuple.
    Punct(Timestamp),
}

/// Wraps an operator tree to emit speculatively and retract on disorder.
pub struct SpeculativeGate {
    inner: Box<dyn Operator>,
    /// Inner state snapshot the replay log applies on top of.
    stable: StateNode,
    /// Watermark baked into `stable` (inputs below it are compacted).
    stable_at: Timestamp,
    /// Inner punctuation high-water at the time `stable` was captured.
    stable_now: Timestamp,
    /// Admitted inputs since `stable`, sorted by `Key`.
    entries: Vec<(Key, Entry)>,
    /// Outputs of replaying `entries` on `stable` — the published,
    /// not-yet-proven tail of the output history (unstamped).
    emitted: Vec<Tuple>,
    /// Order key of the newest entry (fast in-order test).
    last_key: Key,
    /// Live inner punctuation high-water.
    inner_now: Timestamp,
    /// Highest engine watermark seen — how far order is proven.
    frontier: Timestamp,
    /// Mirror of the engine's auto-watermark mode: when set, the inner
    /// operator is punctuated at each tuple's timestamp before the tuple,
    /// reproducing the schedule a consistent-level query would see.
    auto_punctuate: bool,
    /// Speculation revision, bumped on every rollback-replay.
    revision: u64,
    retractions: u64,
    recomputes: u64,
    retraction_ctr: Option<Counter>,
    name: String,
}

impl SpeculativeGate {
    /// Wrap `inner`. `auto_punctuate` must mirror the engine's
    /// auto-watermark mode so replays reproduce the punctuation schedule
    /// the operator would see at the consistent level.
    pub fn new(inner: Box<dyn Operator>, auto_punctuate: bool) -> Result<SpeculativeGate> {
        let stable = inner.save_state()?;
        let name = format!("speculate({})", inner.name());
        Ok(SpeculativeGate {
            inner,
            stable,
            stable_at: Timestamp::ZERO,
            stable_now: Timestamp::ZERO,
            entries: Vec::new(),
            emitted: Vec::new(),
            last_key: (Timestamp::ZERO, 0),
            inner_now: Timestamp::ZERO,
            frontier: Timestamp::ZERO,
            auto_punctuate,
            revision: 0,
            retractions: 0,
            recomputes: 0,
            retraction_ctr: None,
            name,
        })
    }

    /// Attach the engine's retraction counter.
    pub fn with_counter(mut self, c: Counter) -> SpeculativeGate {
        self.retraction_ctr = Some(c);
        self
    }

    /// Current speculation revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Retractions issued so far.
    pub fn retractions(&self) -> u64 {
        self.retractions
    }

    /// Feed one entry to the live inner operator, appending outputs.
    fn feed(
        inner: &mut Box<dyn Operator>,
        inner_now: &mut Timestamp,
        auto: bool,
        e: &Entry,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        match e {
            Entry::Item(port, t) => {
                if auto && t.ts() > *inner_now {
                    inner.on_punctuation(t.ts(), out)?;
                    *inner_now = t.ts();
                }
                inner.on_tuple(*port, t, out)
            }
            Entry::Punct(ts) => {
                if *ts > *inner_now {
                    inner.on_punctuation(*ts, out)?;
                    *inner_now = *ts;
                }
                Ok(())
            }
        }
    }

    /// Roll the inner operator back to `stable` and replay the whole log,
    /// returning the regenerated output history.
    fn replay_all(&mut self) -> Result<Vec<Tuple>> {
        self.inner.restore_state(&self.stable)?;
        self.inner_now = self.stable_now;
        let mut outs = Vec::with_capacity(self.emitted.len());
        for (_, e) in &self.entries {
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                e,
                &mut outs,
            )?;
        }
        Ok(outs)
    }

    /// Rollback–replay–diff after an out-of-order insertion: withdraw the
    /// divergent published tail, re-emit the corrected one.
    fn recompute(&mut self, out: &mut Vec<Tuple>) -> Result<()> {
        self.revision += 1;
        self.recomputes += 1;
        let new_emitted = self.replay_all()?;
        let keep = self
            .emitted
            .iter()
            .zip(&new_emitted)
            .take_while(|(a, b)| a == b)
            .count();
        for old in &self.emitted[keep..] {
            out.push(old.retraction_of(self.revision));
            self.retractions += 1;
            if let Some(c) = &self.retraction_ctr {
                c.inc();
            }
        }
        for new in &new_emitted[keep..] {
            out.push(new.at_revision(self.revision));
        }
        self.emitted = new_emitted;
        if let Some((k, _)) = self.entries.last() {
            self.last_key = *k;
        }
        Ok(())
    }

    /// Bake the watermark-proven prefix of the log into a fresh stable
    /// snapshot, dropping it (and its outputs) from rollback scope.
    fn compact(&mut self) -> Result<()> {
        let cut = self.frontier;
        let n = self.entries.iter().take_while(|(k, _)| k.0 < cut).count();
        if n == 0 {
            return Ok(());
        }
        self.inner.restore_state(&self.stable)?;
        self.inner_now = self.stable_now;
        let mut proven = Vec::new();
        for (_, e) in &self.entries[..n] {
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                e,
                &mut proven,
            )?;
        }
        self.stable = self.inner.save_state()?;
        self.stable_at = cut;
        self.stable_now = self.inner_now;
        self.entries.drain(..n);
        // Replay determinism: the proven prefix regenerates exactly the
        // head of the published history, so the retained tail is what the
        // remaining log produces on the new snapshot.
        debug_assert_eq!(proven.as_slice(), &self.emitted[..proven.len()]);
        self.emitted.drain(..proven.len());
        let mut tail = Vec::new();
        for (_, e) in &self.entries {
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                e,
                &mut tail,
            )?;
        }
        debug_assert_eq!(tail, self.emitted);
        Ok(())
    }

    fn entries_node(&self) -> StateNode {
        StateNode::List(
            self.entries
                .iter()
                .map(|(k, e)| match e {
                    Entry::Item(port, t) => StateNode::List(vec![
                        StateNode::U64(0),
                        StateNode::ts(k.0),
                        StateNode::U64(k.1),
                        StateNode::usize(*port),
                        StateNode::Tuple(t.clone()),
                    ]),
                    Entry::Punct(ts) => StateNode::List(vec![
                        StateNode::U64(1),
                        StateNode::ts(k.0),
                        StateNode::U64(k.1),
                        StateNode::ts(*ts),
                    ]),
                })
                .collect(),
        )
    }
}

impl Operator for SpeculativeGate {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let mut key = t.order_key();
        if self.entries.is_empty() || key >= self.last_key {
            // In-order arrival: speculate forward on the live state.
            let e = Entry::Item(port, t.clone());
            let start = out.len();
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                &e,
                out,
            )?;
            self.emitted.extend_from_slice(&out[start..]);
            self.entries.push((key, e));
            self.last_key = key;
            return Ok(());
        }
        if key.0 < self.stable_at {
            // Below the compacted snapshot there is nothing to roll back
            // to. Such a tuple also sits below a watermark the inner
            // operator has already acted on, which is exactly the
            // position a consistent-level query would see it in: process
            // it at the current point, logged at the current position so
            // replays stay faithful.
            key = self.last_key;
            let e = Entry::Item(port, t.clone());
            let start = out.len();
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                &e,
                out,
            )?;
            self.emitted.extend_from_slice(&out[start..]);
            self.entries.push((key, e));
            return Ok(());
        }
        // Out-of-order within rollback scope: insert at its (ts, seq)
        // slot and rebuild the speculative tail.
        let at = self.entries.partition_point(|(k, _)| *k <= key);
        self.entries.insert(at, (key, Entry::Item(port, t.clone())));
        self.recompute(out)
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        if ts > self.frontier {
            self.frontier = ts;
        }
        if ts > self.inner_now {
            // A watermark beyond every logged input: fire it live and log
            // it so rollbacks reproduce its effects (window closes,
            // timeout emissions).
            let e = Entry::Punct(ts);
            let start = out.len();
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                &e,
                out,
            )?;
            self.emitted.extend_from_slice(&out[start..]);
            let key = (ts, u64::MAX);
            self.entries.push((key, e));
            self.last_key = key;
        }
        let proven = self
            .entries
            .iter()
            .take_while(|(k, _)| k.0 < self.frontier)
            .count();
        if proven >= COMPACT_PROVEN {
            self.compact()?;
        }
        Ok(())
    }

    fn punctuation_sensitive(&self) -> bool {
        true
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        self.inner.bind_interner(codec);
    }

    fn state_key_bytes(&self) -> usize {
        self.inner.state_key_bytes()
    }

    fn retained(&self) -> usize {
        self.inner.retained() + self.entries.len()
    }

    fn report(&self) -> OpReport {
        let mut r = OpReport::leaf(&self.name, self.retained());
        r.counters = vec![
            ("log_depth".to_string(), self.entries.len() as u64),
            ("revision".to_string(), self.revision),
            ("retractions".to_string(), self.retractions),
            ("recomputes".to_string(), self.recomputes),
        ];
        r.children = vec![self.inner.report()];
        r
    }

    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            self.stable.clone(),
            StateNode::ts(self.stable_at),
            StateNode::ts(self.stable_now),
            StateNode::ts(self.frontier),
            StateNode::U64(self.revision),
            self.entries_node(),
            StateNode::List(self.emitted.iter().cloned().map(StateNode::Tuple).collect()),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.stable = state.item(0)?.clone();
        self.stable_at = state.item(1)?.as_ts()?;
        self.stable_now = state.item(2)?.as_ts()?;
        self.frontier = state.item(3)?.as_ts()?;
        self.revision = state.item(4)?.as_u64()?;
        let mut entries = Vec::new();
        for n in state.item(5)?.as_list()? {
            let key = (n.item(1)?.as_ts()?, n.item(2)?.as_u64()?);
            let e = match n.item(0)?.as_u64()? {
                0 => Entry::Item(n.item(3)?.as_usize()?, n.item(4)?.as_tuple()?.clone()),
                1 => Entry::Punct(n.item(3)?.as_ts()?),
                k => {
                    return Err(DsmsError::ckpt(format!(
                        "unknown speculative log entry kind {k}"
                    )))
                }
            };
            entries.push((key, e));
        }
        self.entries = entries;
        self.last_key = self
            .entries
            .last()
            .map_or((Timestamp::ZERO, 0), |(k, _)| *k);
        let mut emitted = Vec::new();
        for n in state.item(6)?.as_list()? {
            emitted.push(n.as_tuple()?.clone());
        }
        // Rebuild the live inner state by replaying the log on the
        // snapshot — the same machinery rollbacks use — and trust the
        // saved output history (replay regenerates exactly it).
        self.inner.restore_state(&self.stable)?;
        self.inner_now = self.stable_now;
        let mut replayed = Vec::new();
        for (_, e) in &self.entries.clone() {
            Self::feed(
                &mut self.inner,
                &mut self.inner_now,
                self.auto_punctuate,
                e,
                &mut replayed,
            )?;
        }
        debug_assert_eq!(replayed, emitted);
        self.emitted = emitted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::ops::{Chain, Dedup, Select};
    use crate::time::Duration;
    use crate::tuple::Sign;
    use crate::value::Value;

    fn t(v: i64, secs: u64, seq: u64) -> Tuple {
        Tuple::new(vec![Value::Int(v)], Timestamp::from_secs(secs), seq)
    }

    fn gate_over_select() -> SpeculativeGate {
        let sel = Select::new(Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(0i64)));
        SpeculativeGate::new(Box::new(Chain::new(vec![Box::new(sel)])), true).unwrap()
    }

    #[test]
    fn in_order_input_passes_through_without_retractions() {
        let mut g = gate_over_select();
        let mut out = Vec::new();
        for (i, secs) in [1u64, 2, 3].iter().enumerate() {
            g.on_tuple(0, &t(1, *secs, i as u64), &mut out).unwrap();
        }
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.sign() == Sign::Insert));
        assert_eq!(g.retractions(), 0);
        assert_eq!(g.revision(), 0);
    }

    #[test]
    fn disorder_through_stateless_op_reorders_without_spurious_retractions() {
        // A select's output depends only on the tuple itself, but the
        // *history* order changes: the gate retracts the suffix that
        // moved and re-emits it in corrected order.
        let mut g = gate_over_select();
        let mut out = Vec::new();
        g.on_tuple(0, &t(1, 10, 0), &mut out).unwrap();
        g.on_tuple(0, &t(2, 5, 1), &mut out).unwrap();
        // Published: insert@10, then retract@10, insert@5, insert@10.
        assert_eq!(out.len(), 4);
        assert_eq!(out[1].sign(), Sign::Retract);
        assert_eq!(out[1].ts(), Timestamp::from_secs(10));
        assert_eq!(out[2].ts(), Timestamp::from_secs(5));
        assert_eq!(out[3].ts(), Timestamp::from_secs(10));
        assert_eq!(g.retractions(), 1);
        // Net effect (inserts minus retracts) is the in-order history.
        let mut net: Vec<Tuple> = Vec::new();
        for o in &out {
            if o.is_retraction() {
                let raw = Tuple::new(o.values().to_vec(), o.ts(), o.seq());
                let pos = net
                    .iter()
                    .rposition(|x| Tuple::new(x.values().to_vec(), x.ts(), x.seq()) == raw);
                net.remove(pos.expect("retraction must match a published tuple"));
            } else {
                net.push(o.clone());
            }
        }
        assert_eq!(net.len(), 2);
        assert_eq!(net[0].ts(), Timestamp::from_secs(5));
        assert_eq!(net[1].ts(), Timestamp::from_secs(10));
    }

    #[test]
    fn dedup_retracts_when_late_original_invalidates_speculative_pass() {
        // Window dedup: a duplicate within 2s is suppressed. Deliver the
        // *duplicate* first (it passes speculatively), then the original:
        // replay suppresses the duplicate, so the gate must retract it.
        let dd = Dedup::new(vec![Expr::col(0)], Duration::from_secs(2));
        let mut g = SpeculativeGate::new(Box::new(Chain::new(vec![Box::new(dd)])), true).unwrap();
        let mut out = Vec::new();
        g.on_tuple(0, &t(7, 10, 1), &mut out).unwrap(); // duplicate arrives first
        assert_eq!(out.len(), 1);
        out.clear();
        g.on_tuple(0, &t(7, 9, 0), &mut out).unwrap(); // original, 1s earlier
                                                       // Replay: original@9 passes, duplicate@10 suppressed. Diff:
                                                       // retract speculative @10, insert @9.
        let retracts: Vec<_> = out.iter().filter(|o| o.is_retraction()).collect();
        let inserts: Vec<_> = out.iter().filter(|o| !o.is_retraction()).collect();
        assert_eq!(retracts.len(), 1);
        assert_eq!(retracts[0].ts(), Timestamp::from_secs(10));
        assert_eq!(inserts.len(), 1);
        assert_eq!(inserts[0].ts(), Timestamp::from_secs(9));
        assert_eq!(g.revision(), 1);
        assert!(inserts[0].revision() == 1);
    }

    #[test]
    fn checkpoint_round_trips_speculative_state() {
        let dd = Dedup::new(vec![Expr::col(0)], Duration::from_secs(2));
        let mut g = SpeculativeGate::new(Box::new(Chain::new(vec![Box::new(dd)])), true).unwrap();
        let mut out = Vec::new();
        g.on_tuple(0, &t(7, 10, 1), &mut out).unwrap();
        let saved = g.save_state().unwrap();

        let dd2 = Dedup::new(vec![Expr::col(0)], Duration::from_secs(2));
        let mut g2 = SpeculativeGate::new(Box::new(Chain::new(vec![Box::new(dd2)])), true).unwrap();
        g2.restore_state(&saved).unwrap();

        // Both gates must now react identically to the late original.
        let mut a = Vec::new();
        let mut b = Vec::new();
        g.on_tuple(0, &t(7, 9, 0), &mut a).unwrap();
        g2.on_tuple(0, &t(7, 9, 0), &mut b).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().any(|o| o.is_retraction()));
    }

    #[test]
    fn compaction_drops_proven_prefix_and_preserves_behaviour() {
        let mut g = gate_over_select();
        let mut out = Vec::new();
        for i in 0..(COMPACT_PROVEN as u64 + 10) {
            g.on_tuple(0, &t(1, i + 1, i), &mut out).unwrap();
            g.on_punctuation(Timestamp::from_secs(i + 1), &mut out)
                .unwrap();
        }
        assert!(
            g.entries.len() < COMPACT_PROVEN,
            "log not compacted: {}",
            g.entries.len()
        );
        // Disorder behind the snapshot is processed in arrival position
        // (matching what a consistent run would see below the watermark),
        // not dropped.
        let before = out.len();
        g.on_tuple(0, &t(1, 2, 999), &mut out).unwrap();
        assert_eq!(out.len(), before + 1);
        assert_eq!(g.retractions(), 0);
    }
}
