//! Windowed binary stream join.
//!
//! The symmetric hash-free join every DSMS provides: each side keeps a
//! sliding window; an arrival on one side probes the other side's window
//! with the join predicate and emits concatenated rows. Footnote 3 of the
//! paper points out that a fixed-length `SEQ` is expressible this way —
//! the `naive_join` baseline builds on this operator.

use super::Operator;
use crate::ckpt::StateNode;
use crate::error::Result;
use crate::expr::Expr;
use crate::time::{Duration, Timestamp};
use crate::tuple::Tuple;
use crate::window::WindowBuffer;

/// Two-input windowed join. Output rows are `left ++ right` with event
/// time = the newer side's time (the instant the pair became known).
pub struct BinaryJoin {
    window: Duration,
    /// Predicate over the evaluation row `[left, right]`.
    pred: Expr,
    left: WindowBuffer,
    right: WindowBuffer,
}

impl BinaryJoin {
    /// Join the two inputs over a `RANGE window PRECEDING` on each side.
    pub fn new(window: Duration, pred: Expr) -> BinaryJoin {
        BinaryJoin {
            window,
            pred,
            left: WindowBuffer::new(),
            right: WindowBuffer::new(),
        }
    }

    fn emit(pred: &Expr, l: &Tuple, r: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if pred.eval_bool(&[l, r])? {
            let mut vals = Vec::with_capacity(l.arity() + r.arity());
            vals.extend_from_slice(l.values());
            vals.extend_from_slice(r.values());
            let (ts, seq) = if r.after(l) {
                (r.ts(), r.seq())
            } else {
                (l.ts(), l.seq())
            };
            out.push(Tuple::new(vals, ts, seq));
        }
        Ok(())
    }
}

impl Operator for BinaryJoin {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let bound = t.ts().saturating_sub(self.window);
        self.left.expire_before(bound);
        self.right.expire_before(bound);
        match port {
            0 => {
                for r in self.right.iter() {
                    Self::emit(&self.pred, t, r, out)?;
                }
                self.left.push(t.clone());
            }
            1 => {
                for l in self.left.iter() {
                    Self::emit(&self.pred, l, t, out)?;
                }
                self.right.push(t.clone());
            }
            _ => unreachable!("binary join has two ports"),
        }
        Ok(())
    }

    fn on_punctuation(&mut self, ts: Timestamp, _out: &mut Vec<Tuple>) -> Result<()> {
        let bound = ts.saturating_sub(self.window);
        self.left.expire_before(bound);
        self.right.expire_before(bound);
        Ok(())
    }

    // `on_tuple` re-expires both sides at the arrival's own timestamp
    // before probing, and the watermark contract guarantees no arrival is
    // older than the punctuation — so a punctuation only removes tuples
    // the next probe would have expired anyway.
    fn punctuation_sensitive(&self) -> bool {
        false
    }

    fn num_ports(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "join"
    }

    fn retained(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            self.left.save_state(),
            self.right.save_state(),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.left.restore_state(state.item(0)?)?;
        self.right.restore_state(state.item(1)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(tag: &str, secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::str(tag), Value::Ts(Timestamp::from_secs(secs))],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn equi_tag_join(window_secs: u64) -> BinaryJoin {
        BinaryJoin::new(
            Duration::from_secs(window_secs),
            Expr::eq(Expr::qcol(0, 0), Expr::qcol(1, 0)),
        )
    }

    #[test]
    fn matches_within_window() {
        let mut j = equi_tag_join(10);
        let mut out = Vec::new();
        j.on_tuple(0, &t("a", 0, 0), &mut out).unwrap();
        j.on_tuple(1, &t("a", 5, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arity(), 4);
        assert_eq!(out[0].ts(), Timestamp::from_secs(5));
    }

    #[test]
    fn expired_tuples_do_not_match() {
        let mut j = equi_tag_join(10);
        let mut out = Vec::new();
        j.on_tuple(0, &t("a", 0, 0), &mut out).unwrap();
        j.on_tuple(1, &t("a", 20, 1), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(j.retained(), 1); // only the fresh right tuple
    }

    #[test]
    fn predicate_filters_pairs() {
        let mut j = equi_tag_join(10);
        let mut out = Vec::new();
        j.on_tuple(0, &t("a", 0, 0), &mut out).unwrap();
        j.on_tuple(1, &t("b", 1, 1), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn symmetric_probing() {
        let mut j = equi_tag_join(10);
        let mut out = Vec::new();
        // Right first, then left — still pairs.
        j.on_tuple(1, &t("x", 1, 0), &mut out).unwrap();
        j.on_tuple(0, &t("x", 2, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn many_to_many_within_window() {
        let mut j = equi_tag_join(100);
        let mut out = Vec::new();
        for i in 0..3 {
            j.on_tuple(0, &t("k", i, i), &mut out).unwrap();
        }
        for i in 3..5 {
            j.on_tuple(1, &t("k", i, i), &mut out).unwrap();
        }
        assert_eq!(out.len(), 6); // 3 × 2
    }

    #[test]
    fn punctuation_expires_both_sides() {
        let mut j = equi_tag_join(10);
        let mut out = Vec::new();
        j.on_tuple(0, &t("a", 0, 0), &mut out).unwrap();
        j.on_tuple(1, &t("b", 0, 1), &mut out).unwrap();
        assert_eq!(j.retained(), 2);
        j.on_punctuation(Timestamp::from_secs(100), &mut out)
            .unwrap();
        assert_eq!(j.retained(), 0);
    }
}
