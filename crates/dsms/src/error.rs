//! Error type shared across the DSMS substrate and layers built on it.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T, E = DsmsError> = std::result::Result<T, E>;

/// All failure modes of the stream engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmsError {
    /// Schema construction or lookup failure.
    Schema(String),
    /// Unknown stream/table/function name.
    Unknown(String),
    /// Attempt to register a name twice.
    Duplicate(String),
    /// Expression evaluation failure (type error, bad arity, ...).
    Eval(String),
    /// Tuple arrived whose shape or types do not match its stream schema.
    TupleShape(String),
    /// Out-of-order arrival beyond the engine's tolerance.
    OutOfOrder(String),
    /// A watermark that regresses below the high-water mark already
    /// proven to the engine. Accepting it would un-prove order that
    /// downstream operators have acted on, so it is rejected and counted.
    StaleWatermark(String),
    /// Query construction failure (invalid plan).
    Plan(String),
    /// Parse error from the language front-end (carried through so every
    /// layer can share one error type).
    Parse(String),
    /// Checkpoint encode/decode/restore failure (corrupt buffer, version
    /// mismatch, or state-shape mismatch against the running plan).
    Checkpoint(String),
    /// An engine worker thread panicked; `detail` carries the captured
    /// panic payload so supervisors can surface the original message.
    WorkerPanicked {
        /// The panic payload (stringified), e.g. an assertion message.
        detail: String,
    },
}

impl DsmsError {
    /// Schema-category error.
    pub fn schema(msg: impl Into<String>) -> Self {
        DsmsError::Schema(msg.into())
    }
    /// Unknown-name error.
    pub fn unknown(msg: impl Into<String>) -> Self {
        DsmsError::Unknown(msg.into())
    }
    /// Duplicate-name error.
    pub fn duplicate(msg: impl Into<String>) -> Self {
        DsmsError::Duplicate(msg.into())
    }
    /// Evaluation error.
    pub fn eval(msg: impl Into<String>) -> Self {
        DsmsError::Eval(msg.into())
    }
    /// Malformed-tuple error.
    pub fn tuple(msg: impl Into<String>) -> Self {
        DsmsError::TupleShape(msg.into())
    }
    /// Planning error.
    pub fn plan(msg: impl Into<String>) -> Self {
        DsmsError::Plan(msg.into())
    }
    /// Parse error.
    pub fn parse(msg: impl Into<String>) -> Self {
        DsmsError::Parse(msg.into())
    }
    /// Stale (regressing) watermark error.
    pub fn stale_watermark(msg: impl Into<String>) -> Self {
        DsmsError::StaleWatermark(msg.into())
    }
    /// Checkpoint error.
    pub fn ckpt(msg: impl Into<String>) -> Self {
        DsmsError::Checkpoint(msg.into())
    }
    /// Worker-panic error carrying the captured payload.
    pub fn worker_panicked(detail: impl Into<String>) -> Self {
        DsmsError::WorkerPanicked {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DsmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmsError::Schema(m) => write!(f, "schema error: {m}"),
            DsmsError::Unknown(m) => write!(f, "unknown name: {m}"),
            DsmsError::Duplicate(m) => write!(f, "duplicate name: {m}"),
            DsmsError::Eval(m) => write!(f, "evaluation error: {m}"),
            DsmsError::TupleShape(m) => write!(f, "malformed tuple: {m}"),
            DsmsError::OutOfOrder(m) => write!(f, "out-of-order arrival: {m}"),
            DsmsError::StaleWatermark(m) => write!(f, "stale watermark: {m}"),
            DsmsError::Plan(m) => write!(f, "plan error: {m}"),
            DsmsError::Parse(m) => write!(f, "parse error: {m}"),
            DsmsError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            DsmsError::WorkerPanicked { detail } => {
                write!(f, "engine worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for DsmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_category() {
        assert_eq!(
            DsmsError::eval("bad arity").to_string(),
            "evaluation error: bad arity"
        );
        assert_eq!(
            DsmsError::unknown("stream s").to_string(),
            "unknown name: stream s"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DsmsError::plan("x"));
    }
}
