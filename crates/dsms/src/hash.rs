//! FNV-1a hashing for hot-path hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but pays a fixed
//! finalization cost that dominates for the short keys streaming
//! operators probe per tuple (a couple of tag/reader ids). FNV-1a is a
//! few multiplies for such keys; operator state is keyed by data the
//! planner chose, not by attacker-controlled map keys, so collision
//! hardening buys nothing here. The shard router uses the same function
//! (`shard::shard_of`) for stable key routing.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit streaming hasher.
#[derive(Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`FnvHasher`], for `HashMap::with_hasher`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_keys_hash_apart() {
        let b = FnvBuildHasher::default();
        let h1 = b.hash_one("tag1");
        let h2 = b.hash_one("tag2");
        assert_ne!(h1, h2);
        // Deterministic across builders (no random state).
        assert_eq!(h1, FnvBuildHasher::default().hash_one("tag1"));
    }
}
