//! Discrete time model shared by the whole system.
//!
//! RFID observations are timestamped at the reader with bounded clock skew;
//! the paper's semantics only require a total order on timestamps plus
//! arithmetic for window bounds. We model time as microseconds since an
//! arbitrary epoch, which keeps all window math exact (no floating point)
//! and makes simulated workloads perfectly reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, in microseconds since the stream epoch.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The smallest representable timestamp (the stream epoch).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable timestamp; used as "never expires".
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Saturating addition of a duration (clamps at `Timestamp::MAX`).
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier > self`.
    pub fn since(self, earlier: Timestamp) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span; used as "unbounded window".
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        Duration(m * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        Duration(h * 3_600 * 1_000_000)
    }

    /// Microseconds in this span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds in this span (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        if us == 0 {
            write!(f, "{secs}s")
        } else {
            write!(f, "{secs}.{us:06}s")
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        if us == 0 {
            write!(f, "{secs}s")
        } else {
            write!(f, "{secs}.{us:06}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Timestamp::from_secs(3), Timestamp(3_000_000));
        assert_eq!(Timestamp::from_millis(3), Timestamp(3_000));
        assert_eq!(Duration::from_mins(2), Duration::from_secs(120));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_secs(5).as_secs(), 5);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t + Duration::from_secs(5), Timestamp::from_secs(15));
        assert_eq!(t - Duration::from_secs(5), Timestamp::from_secs(5));
        assert_eq!(
            Timestamp::from_secs(15) - Timestamp::from_secs(10),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn saturating_ops() {
        let t = Timestamp::from_secs(1);
        assert_eq!(t.saturating_sub(Duration::from_secs(10)), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.saturating_add(Duration(1)), Timestamp::MAX);
    }

    #[test]
    fn since() {
        let a = Timestamp::from_secs(5);
        let b = Timestamp::from_secs(8);
        assert_eq!(b.since(a), Some(Duration::from_secs(3)));
        assert_eq!(a.since(b), None);
        assert_eq!(a.since(a), Some(Duration::ZERO));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Timestamp::from_secs(3),
            Timestamp::ZERO,
            Timestamp::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Timestamp::ZERO,
                Timestamp::from_millis(1),
                Timestamp::from_secs(3)
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::from_secs(7).to_string(), "7s");
        assert_eq!(Duration::from_micros(1_500_000).to_string(), "1.500000s");
    }
}
