//! Stream tuples.
//!
//! A tuple is an immutable row plus its event timestamp and a global
//! arrival sequence number. Values live behind an `Arc` so that window
//! buffers, tuple histories and match bindings can all hold the same row
//! without copying; cloning a `Tuple` is two pointer-sized copies and one
//! refcount bump.

use crate::error::{DsmsError, Result};
use crate::schema::Schema;
use crate::time::Timestamp;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Polarity of a tuple: a normal insertion, or a retraction that
/// withdraws a previously emitted tuple.
///
/// Retractions exist for *fast*-consistency queries
/// ([`crate::engine::Consistency::Fast`]): under out-of-order input they
/// emit speculatively, and when a late arrival invalidates prior output
/// the engine issues a `Retract`-signed copy of each invalidated tuple
/// followed by the corrected results. Queries at the default
/// `Consistent` level never see or produce retractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sign {
    /// A normal output tuple.
    #[default]
    Insert,
    /// Withdraws the previously emitted tuple with the same values,
    /// timestamp and sequence number.
    Retract,
}

/// One immutable stream row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Arc<[Value]>,
    ts: Timestamp,
    seq: u64,
    sign: Sign,
    /// Speculation revision that produced this tuple (0 for ordinary
    /// tuples; bumped each time a fast query recomputes after disorder).
    revision: u64,
}

impl Tuple {
    /// Build a tuple with an explicit timestamp and sequence number.
    ///
    /// The sequence number breaks timestamp ties: the *joint tuple history*
    /// of §3.1.1 of the paper is ordered by `(ts, seq)`, which makes the
    /// union of several streams a stable total order.
    pub fn new(values: Vec<Value>, ts: Timestamp, seq: u64) -> Tuple {
        Tuple {
            values: values.into(),
            ts,
            seq,
            sign: Sign::Insert,
            revision: 0,
        }
    }

    /// Build a tuple validated against `schema`, reading the timestamp out
    /// of the schema's event-time column.
    pub fn for_schema(schema: &Schema, values: Vec<Value>, seq: u64) -> Result<Tuple> {
        let ts = Self::validate(schema, &values)?;
        Ok(Tuple::new(values, ts, seq))
    }

    /// Re-validate an existing tuple against `schema` and re-sequence it,
    /// *sharing* the value buffer instead of copying the row. This is the
    /// derived-stream re-injection path: validation (arity, types, event
    /// time) is identical to [`Tuple::for_schema`], but the producing
    /// query's output buffer and the downstream stream's tuple are the
    /// same allocation.
    pub fn rebind_for_schema(schema: &Schema, t: Tuple, seq: u64) -> Result<Tuple> {
        let ts = Self::validate(schema, &t.values)?;
        Ok(Tuple {
            values: t.values,
            ts,
            seq,
            sign: t.sign,
            revision: t.revision,
        })
    }

    /// Validate a row against `schema` without consuming it, returning
    /// the event time it would carry. This is [`Tuple::for_schema`]'s
    /// validation step split out so callers that must keep rejected rows
    /// (dead-letter buffers) can validate first and construct after.
    pub fn validate_against(schema: &Schema, values: &[Value]) -> Result<Timestamp> {
        Self::validate(schema, values)
    }

    fn validate(schema: &Schema, values: &[Value]) -> Result<Timestamp> {
        if values.len() != schema.arity() {
            return Err(DsmsError::tuple(format!(
                "`{}` expects {} columns, got {}",
                schema.name,
                schema.arity(),
                values.len()
            )));
        }
        for (i, (v, c)) in values.iter().zip(&schema.columns).enumerate() {
            if !v.value_type().coercible_to(c.ty) {
                return Err(DsmsError::tuple(format!(
                    "column {i} (`{}`) of `{}` expects {}, got {}",
                    c.name,
                    schema.name,
                    c.ty,
                    v.value_type()
                )));
            }
        }
        match schema.time_column {
            Some(i) => values[i].as_ts().ok_or_else(|| {
                DsmsError::tuple(format!("time column of `{}` is NULL", schema.name))
            }),
            None => Ok(Timestamp::ZERO),
        }
    }

    /// The row values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of column `i` (panics when out of range — callers index via
    /// bound schemas, so a miss is a planner bug, not a data error).
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Value of column `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Event timestamp.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Global arrival sequence number (tie-breaker for equal timestamps).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// `(ts, seq)` — the total order used by joint tuple histories.
    pub fn order_key(&self) -> (Timestamp, u64) {
        (self.ts, self.seq)
    }

    /// Strictly-after comparison on the joint-history order.
    pub fn after(&self, other: &Tuple) -> bool {
        self.order_key() > other.order_key()
    }

    /// The tuple's polarity (insert or retract).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Speculation revision that produced this tuple (0 for ordinary,
    /// non-speculative tuples).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// `true` when this tuple withdraws a previously emitted one.
    pub fn is_retraction(&self) -> bool {
        self.sign == Sign::Retract
    }

    /// A `Retract`-signed copy of this tuple: same values, timestamp and
    /// sequence number, stamped with the speculation revision that
    /// invalidated the original.
    pub fn retraction_of(&self, revision: u64) -> Tuple {
        Tuple {
            values: self.values.clone(),
            ts: self.ts,
            seq: self.seq,
            sign: Sign::Retract,
            revision,
        }
    }

    /// A copy of this tuple stamped with a speculation revision (sign
    /// unchanged). Used when a fast query re-emits corrected output.
    pub fn at_revision(&self, revision: u64) -> Tuple {
        Tuple {
            values: self.values.clone(),
            ts: self.ts,
            seq: self.seq,
            sign: self.sign,
            revision,
        }
    }

    /// Rebuild a tuple with an explicit sign and revision — the
    /// checkpoint decoder's constructor for signed tuples.
    pub fn with_sign(
        values: Vec<Value>,
        ts: Timestamp,
        seq: u64,
        sign: Sign,
        revision: u64,
    ) -> Tuple {
        Tuple {
            values: values.into(),
            ts,
            seq,
            sign,
            revision,
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_retraction() {
            write!(f, "-")?;
        }
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")@{}", self.ts)
    }
}

/// Messages flowing through a stream: data tuples interleaved with
/// punctuations (watermarks).
///
/// A punctuation `P(t)` promises that no future tuple on the stream has
/// event time `< t`. Punctuations drive *active expiration* (§3.1.3): the
/// `EXCEPTION_SEQ` operator must detect window expiry even when no further
/// tuples arrive, so the engine emits punctuations on a heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// A watermark: no later arrival will carry an earlier event time.
    Punctuation(Timestamp),
}

impl StreamItem {
    /// The event time of this item.
    pub fn ts(&self) -> Timestamp {
        match self {
            StreamItem::Tuple(t) => t.ts(),
            StreamItem::Punctuation(t) => *t,
        }
    }

    /// The tuple, if this is a data item.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punctuation(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn readings_schema() -> Schema {
        Schema::new(
            "readings",
            vec![
                ("reader_id", ValueType::Str),
                ("tag_id", ValueType::Str),
                ("read_time", ValueType::Ts),
            ],
            Some("read_time"),
        )
        .unwrap()
    }

    #[test]
    fn for_schema_extracts_timestamp() {
        let s = readings_schema();
        let t = Tuple::for_schema(
            &s,
            vec![
                Value::str("r1"),
                Value::str("tag9"),
                Value::Ts(Timestamp::from_secs(5)),
            ],
            7,
        )
        .unwrap();
        assert_eq!(t.ts(), Timestamp::from_secs(5));
        assert_eq!(t.seq(), 7);
        assert_eq!(t.value(1).as_str(), Some("tag9"));
    }

    #[test]
    fn for_schema_rejects_wrong_arity() {
        let s = readings_schema();
        let err = Tuple::for_schema(&s, vec![Value::str("r1")], 0).unwrap_err();
        assert!(err.to_string().contains("expects 3 columns"));
    }

    #[test]
    fn for_schema_rejects_wrong_type() {
        let s = readings_schema();
        let err = Tuple::for_schema(
            &s,
            vec![Value::Int(1), Value::str("t"), Value::Ts(Timestamp::ZERO)],
            0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("expects VARCHAR"));
    }

    #[test]
    fn for_schema_rejects_null_time() {
        let s = readings_schema();
        let err = Tuple::for_schema(&s, vec![Value::str("r"), Value::str("t"), Value::Null], 0)
            .unwrap_err();
        assert!(err.to_string().contains("time column"));
    }

    #[test]
    fn order_key_breaks_ties_by_seq() {
        let a = Tuple::new(vec![], Timestamp::from_secs(1), 0);
        let b = Tuple::new(vec![], Timestamp::from_secs(1), 1);
        assert!(b.after(&a));
        assert!(!a.after(&b));
        assert!(!a.after(&a));
    }

    #[test]
    fn retraction_shares_values_and_flips_sign() {
        let t = Tuple::new(vec![Value::str("x")], Timestamp::from_secs(3), 9);
        assert_eq!(t.sign(), Sign::Insert);
        assert_eq!(t.revision(), 0);
        assert!(!t.is_retraction());
        let r = t.retraction_of(2);
        assert!(r.is_retraction());
        assert_eq!(r.revision(), 2);
        assert_eq!(r.ts(), t.ts());
        assert_eq!(r.seq(), t.seq());
        assert!(Arc::ptr_eq(&t.values, &r.values));
        assert_ne!(t, r);
        assert!(r.to_string().starts_with('-'), "{r}");
    }

    #[test]
    fn clone_is_shallow() {
        let t = Tuple::new(vec![Value::str("x")], Timestamp::ZERO, 0);
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn stream_item_accessors() {
        let t = Tuple::new(vec![], Timestamp::from_secs(2), 0);
        let item = StreamItem::Tuple(t.clone());
        assert_eq!(item.ts(), Timestamp::from_secs(2));
        assert_eq!(item.as_tuple(), Some(&t));
        let p = StreamItem::Punctuation(Timestamp::from_secs(9));
        assert_eq!(p.ts(), Timestamp::from_secs(9));
        assert_eq!(p.as_tuple(), None);
    }
}
