//! Sliding windows.
//!
//! Two families from SQL:2003 / ESL, plus the paper's extensions (§3.2):
//!
//! * `RANGE d PRECEDING` — time-based: tuples with `ts ∈ [now − d, now]`.
//! * `ROWS n PRECEDING` — count-based: the last `n + 1` tuples.
//! * `RANGE d FOLLOWING` — time *after* an anchor; the paper needs this for
//!   `EXCEPTION_SEQ ... OVER [1 HOURS FOLLOWING A1]`.
//! * `RANGE d PRECEDING AND FOLLOWING` — symmetric window around an anchor
//!   tuple, synchronized across a sub-query boundary (Example 8).
//!
//! [`WindowBuffer`] is the shared physical structure: an append-ordered
//! deque with eager front expiry. Because streams are append-only and
//! (per-stream) timestamp-ordered, expiry is always a prefix drop.

use crate::ckpt::StateNode;
use crate::error::Result;
use crate::time::{Duration, Timestamp};
use crate::tuple::Tuple;
use std::collections::VecDeque;

/// How far a window extends relative to its reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowExtent {
    /// `RANGE d PRECEDING`: covers `[anchor − d, anchor]`.
    Preceding(Duration),
    /// `RANGE d FOLLOWING`: covers `[anchor, anchor + d]`.
    Following(Duration),
    /// `RANGE d PRECEDING AND FOLLOWING`: covers `[anchor − d, anchor + d]`.
    PrecedingAndFollowing(Duration),
    /// `ROWS n PRECEDING`: the most recent `n + 1` tuples.
    Rows(usize),
    /// No bound (whole history) — used by tables and for testing.
    Unbounded,
}

impl WindowExtent {
    /// Lowest event time that can still fall inside a window anchored at
    /// `anchor` (inclusive).
    pub fn lower_bound(&self, anchor: Timestamp) -> Timestamp {
        match self {
            WindowExtent::Preceding(d) | WindowExtent::PrecedingAndFollowing(d) => {
                anchor.saturating_sub(*d)
            }
            WindowExtent::Following(_) => anchor,
            WindowExtent::Rows(_) | WindowExtent::Unbounded => Timestamp::ZERO,
        }
    }

    /// Highest event time that can still fall inside a window anchored at
    /// `anchor` (inclusive).
    pub fn upper_bound(&self, anchor: Timestamp) -> Timestamp {
        match self {
            WindowExtent::Preceding(_) | WindowExtent::Rows(_) => anchor,
            WindowExtent::Following(d) | WindowExtent::PrecedingAndFollowing(d) => {
                anchor.saturating_add(*d)
            }
            WindowExtent::Unbounded => Timestamp::MAX,
        }
    }

    /// Whether a tuple at `ts` is inside a window anchored at `anchor`.
    pub fn contains(&self, anchor: Timestamp, ts: Timestamp) -> bool {
        ts >= self.lower_bound(anchor) && ts <= self.upper_bound(anchor)
    }

    /// The latest watermark at which a window anchored at `anchor` can
    /// still gain new tuples: once stream time passes this, the window's
    /// contents are final. Used for FOLLOWING windows, whose answers may
    /// only be emitted after the future part of the window has closed.
    pub fn closes_at(&self, anchor: Timestamp) -> Timestamp {
        self.upper_bound(anchor)
    }
}

/// An append-ordered buffer of tuples with window-driven expiry.
///
/// Invariant: tuples are in nondecreasing `(ts, seq)` order (enforced by
/// the engine's per-stream ordering), so expiring the window is a prefix
/// pop. `expire_before(t)` removes everything with `ts < t`.
#[derive(Debug, Clone, Default)]
pub struct WindowBuffer {
    buf: VecDeque<Tuple>,
}

impl WindowBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tuple (must not be older than the newest buffered tuple;
    /// debug-asserted since the engine guarantees per-stream order).
    pub fn push(&mut self, t: Tuple) {
        debug_assert!(
            self.buf.back().is_none_or(|b| !b.after(&t)),
            "window buffer requires per-stream arrival order"
        );
        self.buf.push_back(t);
    }

    /// Drop every tuple with event time strictly before `bound`.
    /// Returns how many were dropped.
    pub fn expire_before(&mut self, bound: Timestamp) -> usize {
        let mut n = 0;
        while self.buf.front().is_some_and(|t| t.ts() < bound) {
            self.buf.pop_front();
            n += 1;
        }
        n
    }

    /// Keep only the most recent `n` tuples (ROWS window maintenance).
    pub fn truncate_rows(&mut self, n: usize) {
        while self.buf.len() > n {
            self.buf.pop_front();
        }
    }

    /// Iterate over buffered tuples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.buf.iter()
    }

    /// Iterate over the tuples inside the window anchored at `anchor`.
    pub fn in_window<'a>(
        &'a self,
        extent: &'a WindowExtent,
        anchor: Timestamp,
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        let lo = extent.lower_bound(anchor);
        let hi = extent.upper_bound(anchor);
        self.buf
            .iter()
            .skip_while(move |t| t.ts() < lo)
            .take_while(move |t| t.ts() <= hi)
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Oldest buffered tuple.
    pub fn front(&self) -> Option<&Tuple> {
        self.buf.front()
    }

    /// Newest buffered tuple.
    pub fn back(&self) -> Option<&Tuple> {
        self.buf.back()
    }

    /// Flatten the buffered tuples (in order) for checkpointing.
    pub fn save_state(&self) -> StateNode {
        StateNode::List(
            self.buf
                .iter()
                .map(|t| StateNode::Tuple(t.clone()))
                .collect(),
        )
    }

    /// Rebuild the buffer from a [`WindowBuffer::save_state`] tree.
    pub fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.buf.clear();
        for node in state.as_list()? {
            self.buf.push_back(node.as_tuple()?.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    #[test]
    fn extent_bounds() {
        let anchor = Timestamp::from_secs(100);
        let d = Duration::from_secs(10);
        let p = WindowExtent::Preceding(d);
        assert_eq!(p.lower_bound(anchor), Timestamp::from_secs(90));
        assert_eq!(p.upper_bound(anchor), anchor);
        let f = WindowExtent::Following(d);
        assert_eq!(f.lower_bound(anchor), anchor);
        assert_eq!(f.upper_bound(anchor), Timestamp::from_secs(110));
        let pf = WindowExtent::PrecedingAndFollowing(d);
        assert_eq!(pf.lower_bound(anchor), Timestamp::from_secs(90));
        assert_eq!(pf.upper_bound(anchor), Timestamp::from_secs(110));
        assert!(pf.contains(anchor, Timestamp::from_secs(95)));
        assert!(pf.contains(anchor, Timestamp::from_secs(105)));
        assert!(!pf.contains(anchor, Timestamp::from_secs(111)));
    }

    #[test]
    fn extent_saturates_at_epoch() {
        let p = WindowExtent::Preceding(Duration::from_secs(10));
        assert_eq!(p.lower_bound(Timestamp::from_secs(3)), Timestamp::ZERO);
    }

    #[test]
    fn buffer_expiry_is_prefix() {
        let mut b = WindowBuffer::new();
        for (i, s) in [1u64, 2, 3, 5, 8].iter().enumerate() {
            b.push(t(*s, i as u64));
        }
        assert_eq!(b.len(), 5);
        let dropped = b.expire_before(Timestamp::from_secs(3));
        assert_eq!(dropped, 2);
        assert_eq!(b.front().unwrap().ts(), Timestamp::from_secs(3));
        // Idempotent.
        assert_eq!(b.expire_before(Timestamp::from_secs(3)), 0);
    }

    #[test]
    fn buffer_rows_truncation() {
        let mut b = WindowBuffer::new();
        for i in 0..10u64 {
            b.push(t(i, i));
        }
        b.truncate_rows(3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.front().unwrap().ts(), Timestamp::from_secs(7));
    }

    #[test]
    fn in_window_selects_range() {
        let mut b = WindowBuffer::new();
        for i in 0..10u64 {
            b.push(t(i, i));
        }
        let ext = WindowExtent::PrecedingAndFollowing(Duration::from_secs(2));
        let got: Vec<u64> = b
            .in_window(&ext, Timestamp::from_secs(5))
            .map(|t| t.ts().as_micros() / 1_000_000)
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn closes_at_for_following() {
        let f = WindowExtent::Following(Duration::from_secs(60));
        assert_eq!(
            f.closes_at(Timestamp::from_secs(100)),
            Timestamp::from_secs(160)
        );
        let p = WindowExtent::Preceding(Duration::from_secs(60));
        assert_eq!(
            p.closes_at(Timestamp::from_secs(100)),
            Timestamp::from_secs(100)
        );
    }

    #[test]
    fn unbounded_contains_everything() {
        let u = WindowExtent::Unbounded;
        assert!(u.contains(Timestamp::ZERO, Timestamp::MAX));
        assert!(u.contains(Timestamp::MAX, Timestamp::ZERO));
    }
}
