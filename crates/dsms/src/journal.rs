//! Input journal: an append-only log of pushed rows.
//!
//! Fault tolerance in this engine is *checkpoint + replay*: a crashed
//! engine is reconstructed by restoring its last
//! [`EngineCheckpoint`](crate::ckpt::EngineCheckpoint) and replaying the
//! journal entries that arrived after the checkpoint's sequence
//! position. Because every entry carries the caller-assigned sequence
//! number ([`Engine::push_with_seq`](crate::engine::Engine::push_with_seq)),
//! replay reproduces the exact `(ts, seq)` order keys of the original
//! run, and the recovered engine is byte-identical to one that never
//! crashed.
//!
//! The journal is bounded in steady state by *truncation*: once a
//! checkpoint covering sequence position `s` is durable, every entry
//! with `seq <= s` is redundant and [`Journal::truncate_through`] drops
//! it. The crash-recovery tests assert that repeated
//! checkpoint/truncate cycles keep the journal from growing without
//! bound.

use crate::ckpt::{EngineCheckpoint, StateNode};
use crate::error::{DsmsError, Result};
use crate::time::Timestamp;
use crate::value::Value;
use std::collections::VecDeque;

/// One journaled arrival: the raw row as pushed, the stream it targeted
/// and the global sequence number it was stamped with.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Target stream name.
    pub stream: String,
    /// The raw row values.
    pub values: Vec<Value>,
    /// Global sequence number assigned at ingest (the replay cursor).
    pub seq: u64,
}

/// Append-only input log with prefix truncation.
///
/// Entries must be appended in non-decreasing `seq` order — the journal
/// is the serialization of one router's send order, so a regression is
/// a wiring bug and is reported as a typed error.
#[derive(Debug, Default)]
pub struct Journal {
    entries: VecDeque<JournalEntry>,
    appended: u64,
    truncated: u64,
}

impl Journal {
    /// Fresh empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append one arrival. `seq` must not regress below the newest
    /// journaled entry.
    pub fn append(
        &mut self,
        stream: impl Into<String>,
        values: Vec<Value>,
        seq: u64,
    ) -> Result<()> {
        if let Some(last) = self.entries.back() {
            if seq < last.seq {
                return Err(DsmsError::ckpt(format!(
                    "journal sequence regressed from {} to {seq}",
                    last.seq
                )));
            }
        }
        self.entries.push_back(JournalEntry {
            stream: stream.into(),
            values,
            seq,
        });
        self.appended += 1;
        Ok(())
    }

    /// Drop every entry with `seq <= through` — they are covered by a
    /// durable checkpoint and will never be replayed.
    pub fn truncate_through(&mut self, through: u64) {
        while let Some(front) = self.entries.front() {
            if front.seq <= through {
                self.entries.pop_front();
                self.truncated += 1;
            } else {
                break;
            }
        }
    }

    /// The entries with `seq > after`, oldest first — the replay tail
    /// for a checkpoint taken at sequence position `after`.
    pub fn tail_after(&self, after: u64) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.seq > after)
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever appended (truncation does not reset this).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Total entries dropped by truncation.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Serialize the retained entries through the checkpoint codec
    /// (magic, version, checksum — the same durability envelope as an
    /// engine checkpoint).
    pub fn to_bytes(&self) -> Vec<u8> {
        let root = StateNode::List(
            self.entries
                .iter()
                .map(|e| {
                    StateNode::List(vec![
                        StateNode::Str(e.stream.clone()),
                        StateNode::List(
                            e.values
                                .iter()
                                .map(|v| StateNode::Value(v.clone()))
                                .collect(),
                        ),
                        StateNode::U64(e.seq),
                    ])
                })
                .collect(),
        );
        EngineCheckpoint::new(self.appended, Timestamp::ZERO, root).to_bytes()
    }

    /// Decode a buffer produced by [`Journal::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Journal> {
        let ck = EngineCheckpoint::from_bytes(buf)?;
        let mut j = Journal::new();
        for node in ck.root.as_list()? {
            let stream = node.item(0)?.as_str()?.to_string();
            let values = node
                .item(1)?
                .as_list()?
                .iter()
                .map(|n| n.as_value().cloned())
                .collect::<Result<Vec<Value>>>()?;
            let seq = node.item(2)?.as_u64()?;
            j.append(stream, values, seq)?;
        }
        j.appended = ck.next_seq;
        j.truncated = ck.next_seq - j.entries.len() as u64;
        Ok(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    #[test]
    fn append_truncate_tail() {
        let mut j = Journal::new();
        for i in 0..10u64 {
            j.append("readings", row(i as i64), i).unwrap();
        }
        assert_eq!(j.len(), 10);
        j.truncate_through(4);
        assert_eq!(j.len(), 5);
        assert_eq!(j.truncated(), 5);
        assert_eq!(j.appended(), 10);
        let tail: Vec<u64> = j.tail_after(6).map(|e| e.seq).collect();
        assert_eq!(tail, vec![7, 8, 9]);
        // Truncating below the retained prefix is a no-op.
        j.truncate_through(2);
        assert_eq!(j.len(), 5);
    }

    #[test]
    fn sequence_regression_is_rejected() {
        let mut j = Journal::new();
        j.append("s", row(1), 5).unwrap();
        j.append("s", row(2), 5).unwrap(); // ties allowed (multi-stream fan-out)
        let err = j.append("s", row(3), 4).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn bytes_round_trip() {
        let mut j = Journal::new();
        for i in 0..6u64 {
            j.append(format!("s{}", i % 2), row(i as i64), i).unwrap();
        }
        j.truncate_through(1);
        let back = Journal::from_bytes(&j.to_bytes()).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.appended(), 6);
        assert_eq!(back.truncated(), 2);
        let a: Vec<&JournalEntry> = j.tail_after(0).collect();
        let b: Vec<&JournalEntry> = back.tail_after(0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_cycles_keep_journal_bounded() {
        // The journal-hygiene contract: appending N entries between
        // checkpoints and truncating through each checkpoint's position
        // keeps the retained length at most one cycle's worth.
        let mut j = Journal::new();
        let mut seq = 0u64;
        for _cycle in 0..50 {
            for _ in 0..20 {
                j.append("readings", row(seq as i64), seq).unwrap();
                seq += 1;
            }
            j.truncate_through(seq - 1);
            assert!(j.len() <= 20, "journal grew to {}", j.len());
        }
        assert_eq!(j.len(), 0);
        assert_eq!(j.appended(), 1000);
        assert_eq!(j.truncated(), 1000);
    }
}
