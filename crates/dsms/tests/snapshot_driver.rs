//! Interplay tests: materialized windows observed through the concurrent
//! driver, and snapshot consistency under ongoing feeds.

use eslev_dsms::prelude::*;

fn reading(ms: u64, tag: &str) -> Vec<Value> {
    vec![
        Value::str("r"),
        Value::str(tag),
        Value::Ts(Timestamp::from_millis(ms)),
    ]
}

#[test]
fn snapshot_readable_while_driver_feeds() {
    let mut e = Engine::new();
    e.create_stream(Schema::readings("readings")).unwrap();
    let snap = e.materialize("readings", WindowExtent::Rows(9)).unwrap();
    let driver = EngineDriver::spawn(e, 64).unwrap();
    let input = driver.input();
    let feeder = std::thread::spawn(move || {
        for i in 0..1_000u64 {
            input
                .push("readings", reading(i * 10, &format!("t{i}")))
                .unwrap();
        }
    });
    // Concurrent reads never see more than the ROWS bound and never a
    // torn buffer (lengths monotone within the bound).
    for _ in 0..50 {
        let rows = snap.snapshot();
        assert!(rows.len() <= 10, "rows {}", rows.len());
        assert!(rows.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }
    feeder.join().unwrap();
    driver.flush().unwrap();
    driver.stop().unwrap();
    assert_eq!(snap.len(), 10);
    assert_eq!(
        snap.snapshot().last().unwrap().value(1),
        &Value::str("t999")
    );
}

#[test]
fn multiple_windows_over_one_stream() {
    let mut e = Engine::new();
    e.create_stream(Schema::readings("readings")).unwrap();
    let by_rows = e.materialize("readings", WindowExtent::Rows(2)).unwrap();
    let by_time = e
        .materialize("readings", WindowExtent::Preceding(Duration::from_secs(1)))
        .unwrap();
    let unbounded = e.materialize("readings", WindowExtent::Unbounded).unwrap();
    for i in 0..20u64 {
        e.push("readings", reading(i * 400, &format!("t{i}")))
            .unwrap();
    }
    assert_eq!(by_rows.len(), 3);
    // 1 s window at now=7.6 s: readings at 6.8, 7.2, 7.6.
    assert_eq!(by_time.len(), 3);
    assert_eq!(unbounded.len(), 20);
}

#[test]
fn snapshot_sees_derived_streams_too() {
    let mut e = Engine::new();
    e.create_stream(Schema::readings("raw")).unwrap();
    e.create_stream(Schema::readings("clean")).unwrap();
    e.register_query(
        "dedup",
        vec!["raw"],
        Box::new(Dedup::new(vec![Expr::col(1)], Duration::from_secs(1))),
        Sink::Stream("clean".into()),
    )
    .unwrap();
    let snap = e.materialize("clean", WindowExtent::Unbounded).unwrap();
    e.push("raw", reading(0, "a")).unwrap();
    e.push("raw", reading(100, "a")).unwrap(); // duplicate
    e.push("raw", reading(5_000, "a")).unwrap();
    assert_eq!(snap.len(), 2, "materialization tracks the derived stream");
}
