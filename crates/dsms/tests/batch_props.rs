//! Property tests for the columnar batch representation: converting a
//! row batch to [`ColumnBatch`] and back must be lossless for every
//! `Value` variant (including `Null` validity and non-finite floats),
//! every sign/revision combination, and every ts/seq tie-break — the
//! row path is the oracle the columnar path must round-trip against.

use eslev_dsms::intern::{InternerRef, StrInterner};
use eslev_dsms::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// One cell: all variants, with floats drawn to include NaN and the
/// infinities (NaN breaks `PartialEq`, so comparison is by bits).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        prop_oneof![
            (-1_000_000_000i64..1_000_000_000).prop_map(|i| i as f64 * 0.001),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ]
        .prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(|s| Value::str(&s)),
        any::<bool>().prop_map(Value::Bool),
        (0u64..1 << 40).prop_map(|us| Value::Ts(Timestamp::from_micros(us))),
    ]
}

/// A batch of rows sharing one arity, with clustered timestamps (so
/// equal-ts/different-seq tie-breaks occur), mixed signs, and small
/// revision numbers. Rows are generated at the maximum arity and
/// truncated to a shared one (the vendored proptest has no
/// `prop_flat_map` to thread the arity through).
fn rows() -> impl Strategy<Value = Vec<Tuple>> {
    (
        0usize..5,
        proptest::collection::vec(
            (
                proptest::collection::vec(value(), 5),
                0u64..8,                  // ts gap (0 ⇒ tie on ts, broken by seq)
                (any::<bool>(), 0u64..3), // (retraction?, revision)
            ),
            0..40,
        ),
    )
        .prop_map(|(arity, steps)| {
            let mut ts = 0u64;
            steps
                .into_iter()
                .enumerate()
                .map(|(i, (mut vals, gap, (retract, rev)))| {
                    vals.truncate(arity);
                    ts += gap;
                    let sign = if retract { Sign::Retract } else { Sign::Insert };
                    Tuple::with_sign(vals, Timestamp::from_secs(ts), i as u64, sign, rev)
                })
                .collect()
        })
}

/// Value equality that treats NaN as equal to itself (bit comparison).
fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn tuple_eq(a: &Tuple, b: &Tuple) -> bool {
    a.arity() == b.arity()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| value_eq(x, y))
        && a.ts() == b.ts()
        && a.seq() == b.seq()
        && a.sign() == b.sign()
        && a.revision() == b.revision()
}

fn assert_round_trip(rows: &[Tuple], interner: Option<&InternerRef>) -> Result<(), TestCaseError> {
    let batch =
        ColumnBatch::from_tuples(rows, interner).expect("uniform-arity rows always convert");
    prop_assert_eq!(batch.len(), rows.len());
    let back = batch.to_tuples().expect("round trip");
    prop_assert_eq!(back.len(), rows.len());
    for (orig, got) in rows.iter().zip(&back) {
        prop_assert!(
            tuple_eq(orig, got),
            "round trip changed a tuple: {:?} -> {:?}",
            orig,
            got
        );
    }
    Ok(())
}

proptest! {
    /// Interned round trip: strings become `Sym` columns and resolve
    /// back to the same text; everything else is typed or `Mixed`.
    #[test]
    fn round_trip_with_interner_is_lossless(rows in rows()) {
        let interner: InternerRef = Arc::new(StrInterner::new());
        assert_round_trip(&rows, Some(&interner))?;
    }

    /// Without an interner, string-bearing columns fall back to the
    /// `Mixed` representation — still lossless.
    #[test]
    fn round_trip_without_interner_is_lossless(rows in rows()) {
        assert_round_trip(&rows, None)?;
    }

    /// `filter` keeps exactly the selected rows, in order, with their
    /// metadata columns (ts/seq/sign/revision) intact.
    #[test]
    fn filter_matches_row_wise_filter(rows in rows(), seed in any::<u64>()) {
        let interner: InternerRef = Arc::new(StrInterner::new());
        let Some(batch) = ColumnBatch::from_tuples(&rows, Some(&interner)) else {
            unreachable!("uniform-arity rows always convert");
        };
        let keep: Vec<bool> = (0..rows.len())
            .map(|i| (seed >> (i % 64)) & 1 == 1)
            .collect();
        let filtered = batch.filter(&keep);
        let back = filtered.to_tuples().expect("filtered round trip");
        let want: Vec<&Tuple> = rows
            .iter()
            .zip(&keep)
            .filter_map(|(t, k)| k.then_some(t))
            .collect();
        prop_assert_eq!(back.len(), want.len());
        for (orig, got) in want.iter().zip(&back) {
            prop_assert!(tuple_eq(orig, got));
        }
    }

    /// Ragged arity is a conversion refusal, never a panic or a lossy
    /// batch — the engine falls back to the row path.
    #[test]
    fn ragged_arity_declines(rows in rows(), extra in value()) {
        if rows.is_empty() {
            return Ok(()); // nothing to make ragged this case
        }
        let mut ragged = rows;
        let mut vals = ragged[0].values().to_vec();
        vals.push(extra);
        let last = ragged.last().unwrap();
        let (ts, seq) = (last.ts(), last.seq());
        ragged.push(Tuple::new(vals, ts, seq + 1));
        let interner: InternerRef = Arc::new(StrInterner::new());
        prop_assert!(ColumnBatch::from_tuples(&ragged, Some(&interner)).is_none());
    }
}
