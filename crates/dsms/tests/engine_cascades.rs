//! Engine-level integration: multi-stage cascades through derived
//! streams, cycle protection, sink validation, and disorder-tolerance
//! properties.

use eslev_dsms::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn readings_engine(streams: &[&str]) -> Engine {
    let mut e = Engine::new();
    for s in streams {
        e.create_stream(Schema::readings(*s)).unwrap();
    }
    e
}

fn reading(secs: u64, tag: &str) -> Vec<Value> {
    vec![
        Value::str("r"),
        Value::str(tag),
        Value::Ts(Timestamp::from_secs(secs)),
    ]
}

#[test]
fn three_stage_cascade() {
    // raw -> (dedup) -> clean -> (filter) -> hot -> (project) -> collect.
    let mut e = readings_engine(&["raw", "clean", "hot"]);
    e.register_query(
        "dedup",
        vec!["raw"],
        Box::new(Dedup::new(vec![Expr::col(1)], Duration::from_secs(1))),
        Sink::Stream("clean".into()),
    )
    .unwrap();
    e.register_query(
        "filter",
        vec!["clean"],
        Box::new(Select::new(Expr::eq(Expr::col(1), Expr::lit("hot-tag")))),
        Sink::Stream("hot".into()),
    )
    .unwrap();
    let (_, out) = e
        .register_collected(
            "proj",
            vec!["hot"],
            Box::new(Project::new(vec![Expr::col(1), Expr::col(2)])),
        )
        .unwrap();
    for (s, tag) in [
        (0u64, "hot-tag"),
        (0, "cold"),
        (10, "hot-tag"),
        (10, "hot-tag"),
    ] {
        // Same-second duplicates collapse at stage 1.
        e.push("raw", reading(s, tag)).unwrap();
    }
    let rows = out.take();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.arity() == 2));
}

#[test]
fn self_cycle_is_caught_not_hung() {
    // A query that echoes a stream into itself must hit the cascade
    // guard, not loop forever.
    let mut e = readings_engine(&["loopy"]);
    e.register_query(
        "echo",
        vec!["loopy"],
        Box::new(Select::new(Expr::lit(true))),
        Sink::Stream("loopy".into()),
    )
    .unwrap();
    let err = e.push("loopy", reading(1, "t")).unwrap_err();
    assert!(err.to_string().contains("cyclic"), "{err}");
}

#[test]
fn fan_out_one_stream_many_queries() {
    let mut e = readings_engine(&["raw"]);
    let mut outs = Vec::new();
    for i in 0..10 {
        let (_, c) = e
            .register_collected(
                format!("q{i}"),
                vec!["raw"],
                Box::new(Select::new(Expr::lit(true))),
            )
            .unwrap();
        outs.push(c);
    }
    e.push("raw", reading(1, "t")).unwrap();
    assert!(outs.iter().all(|c| c.len() == 1));
    let stats = e.query_stats();
    assert_eq!(stats.len(), 10);
    assert!(stats.iter().all(|s| s.emitted == 1 && s.active));
}

#[test]
fn table_sink_validates_against_table_schema() {
    let mut e = readings_engine(&["raw"]);
    let schema = Arc::new(Schema::new("narrow", vec![("tag", ValueType::Str)], None).unwrap());
    e.create_table(schema).unwrap();
    e.register_query(
        "persist",
        vec!["raw"],
        Box::new(Select::new(Expr::lit(true))),
        Sink::Table("narrow".into()),
    )
    .unwrap();
    let err = e.push("raw", reading(1, "t")).unwrap_err();
    assert!(err.to_string().contains("columns"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Disorder tolerance: any feed whose displacement stays within the
    /// slack produces exactly the sorted feed's output.
    #[test]
    fn reorder_equals_sorted(
        gaps in proptest::collection::vec(0u64..5, 1..60),
        swaps in proptest::collection::vec((0usize..59, 0usize..59), 0..30),
    ) {
        // Build an increasing base feed (100 ms steps scaled by gaps).
        let mut ts = 0u64;
        let mut base: Vec<u64> = Vec::new();
        for g in &gaps {
            ts += 100 + g * 10;
            base.push(ts);
        }
        // Apply swaps, then keep only shuffles the 500 ms slack can
        // absorb: at every arrival, the tuple must be within slack of
        // the running maximum (otherwise the engine rightfully rejects).
        let mut shuffled = base.clone();
        for (a, b) in swaps {
            let (a, b) = (a % shuffled.len(), b % shuffled.len());
            let (lo, hi) = (a.min(b), a.max(b));
            if shuffled[hi].saturating_sub(shuffled[lo]) < 500 {
                shuffled.swap(lo, hi);
            }
        }
        let mut running_max = 0u64;
        let valid = shuffled.iter().all(|&ms| {
            running_max = running_max.max(ms);
            running_max - ms <= 500
        });
        if !valid {
            shuffled = base.clone();
            shuffled.sort_unstable();
        }
        let run = |feed: &[u64], tolerant: bool| -> Vec<u64> {
            let mut e = readings_engine(&["raw"]);
            if tolerant {
                e.set_disorder_tolerance("raw", Duration::from_millis(500)).unwrap();
            }
            let (_, out) = e
                .register_collected(
                    "all",
                    vec!["raw"],
                    Box::new(Select::new(Expr::lit(true))),
                )
                .unwrap();
            for ms in feed {
                e.push(
                    "raw",
                    vec![
                        Value::str("r"),
                        Value::str("t"),
                        Value::Ts(Timestamp::from_millis(*ms)),
                    ],
                )
                .unwrap();
            }
            e.flush_disorder().unwrap();
            out.take().iter().map(|t| t.ts().as_micros()).collect()
        };
        let mut sorted = base.clone();
        sorted.sort_unstable();
        prop_assert_eq!(run(&shuffled, true), run(&sorted, false));
    }
}
