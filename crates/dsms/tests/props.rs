//! Property-based tests for the DSMS substrate invariants.

use eslev_dsms::prelude::*;
use proptest::prelude::*;

fn tuples(len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0u64..5, -10i64..10), 0..len).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .enumerate()
            .map(|(i, (gap, v))| {
                ts += gap;
                Tuple::new(vec![Value::Int(v)], Timestamp::from_secs(ts), i as u64)
            })
            .collect()
    })
}

proptest! {
    /// The window buffer never retains a tuple older than the expiry
    /// bound, and never drops one inside it.
    #[test]
    fn window_buffer_expiry_is_exact(ts_list in tuples(100), bound_secs in 0u64..120) {
        let mut buf = WindowBuffer::new();
        for t in &ts_list {
            buf.push(t.clone());
        }
        let bound = Timestamp::from_secs(bound_secs);
        let dropped = buf.expire_before(bound);
        let expect_kept = ts_list.iter().filter(|t| t.ts() >= bound).count();
        prop_assert_eq!(buf.len(), expect_kept);
        prop_assert_eq!(dropped, ts_list.len() - expect_kept);
        prop_assert!(buf.iter().all(|t| t.ts() >= bound));
    }

    /// in_window returns exactly the tuples inside the extent.
    #[test]
    fn in_window_is_exact(ts_list in tuples(80), anchor in 0u64..120, d in 0u64..30) {
        let mut buf = WindowBuffer::new();
        for t in &ts_list {
            buf.push(t.clone());
        }
        let ext = WindowExtent::PrecedingAndFollowing(Duration::from_secs(d));
        let anchor = Timestamp::from_secs(anchor);
        let got: Vec<u64> = buf.in_window(&ext, anchor).map(|t| t.seq()).collect();
        let want: Vec<u64> = ts_list
            .iter()
            .filter(|t| ext.contains(anchor, t.ts()))
            .map(|t| t.seq())
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Dedup output contains no two same-key tuples within the window,
    /// and passes a tuple iff the NOT EXISTS formulation would.
    #[test]
    fn dedup_matches_not_exists_semantics(
        readings in proptest::collection::vec((0u64..3, 0usize..3), 0..80),
        window_secs in 1u64..5,
    ) {
        let window = Duration::from_secs(window_secs);
        let mut d = Dedup::new(vec![Expr::col(0)], window);
        let mut ts = 0u64;
        let mut all: Vec<Tuple> = Vec::new();
        let mut out = Vec::new();
        for (i, (gap, key)) in readings.iter().enumerate() {
            ts += gap;
            let t = Tuple::new(
                vec![Value::Int(*key as i64)],
                Timestamp::from_secs(ts),
                i as u64,
            );
            // Reference: does any earlier same-key reading fall within
            // [t - window, t)?  (NOT EXISTS over the raw stream.)
            let dup = all.iter().any(|p| {
                p.value(0) == t.value(0)
                    && p.ts() >= t.ts().saturating_sub(window)
            });
            let before = out.len();
            d.on_tuple(0, &t, &mut out).unwrap();
            let emitted = out.len() > before;
            prop_assert_eq!(emitted, !dup, "dedup disagrees with NOT EXISTS at seq {}", i);
            all.push(t);
        }
    }

    /// Windowed SUM with retraction equals recomputation from scratch.
    #[test]
    fn sliding_sum_equals_recompute(
        vals in proptest::collection::vec((0u64..4, -100i64..100), 0..60),
        window_secs in 1u64..10,
    ) {
        let reg = AggregateRegistry::new();
        let window = Duration::from_secs(window_secs);
        let mut agg = WindowAggregate::new(
            vec![],
            vec![AggSpec { agg: reg.get("sum").unwrap(), arg: Expr::col(0) }],
            Some(AggWindow::Range(window)),
            Emission::PerArrival,
        );
        let mut ts = 0u64;
        let mut history: Vec<(u64, i64)> = Vec::new();
        let mut out = Vec::new();
        for (i, (gap, v)) in vals.iter().enumerate() {
            ts += gap;
            history.push((ts, *v));
            let t = Tuple::new(vec![Value::Int(*v)], Timestamp::from_secs(ts), i as u64);
            out.clear();
            agg.on_tuple(0, &t, &mut out).unwrap();
            let expect: i64 = history
                .iter()
                .filter(|(hts, _)| Timestamp::from_secs(*hts) >= Timestamp::from_secs(ts).saturating_sub(window))
                .map(|(_, v)| v)
                .sum();
            prop_assert_eq!(out[0].value(0), &Value::Int(expect));
        }
    }

    /// LIKE compilation agrees with a straightforward regex-free oracle
    /// on %-only patterns: contains/starts/ends semantics.
    #[test]
    fn like_oracle(s in "[a-c]{0,8}", prefix in "[a-c]{0,3}", suffix in "[a-c]{0,3}") {
        // %X% , X% , %X
        let contains = LikePattern::compile(&format!("%{prefix}%"));
        prop_assert_eq!(contains.matches(&s), s.contains(&prefix));
        let starts = LikePattern::compile(&format!("{prefix}%"));
        prop_assert_eq!(starts.matches(&s), s.starts_with(&prefix));
        let ends = LikePattern::compile(&format!("%{suffix}"));
        prop_assert_eq!(ends.matches(&s), s.ends_with(&suffix));
    }

    /// Expression evaluation is deterministic and three-valued logic
    /// never panics on NULL-heavy rows.
    #[test]
    fn expr_eval_total_on_nulls(
        a in prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int)],
        b in prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int)],
    ) {
        let t = Tuple::new(vec![a, b], Timestamp::ZERO, 0);
        let exprs = [
            Expr::eq(Expr::col(0), Expr::col(1)),
            Expr::bin(BinOp::Lt, Expr::col(0), Expr::col(1)),
            Expr::and(
                Expr::eq(Expr::col(0), Expr::col(1)),
                Expr::bin(BinOp::Ge, Expr::col(1), Expr::lit(0i64)),
            ),
            Expr::IsNull(Box::new(Expr::col(0))),
        ];
        for e in &exprs {
            let v1 = e.eval(&[&t]).unwrap();
            let v2 = e.eval(&[&t]).unwrap();
            prop_assert_eq!(v1, v2);
            // WHERE semantics never error for these shapes.
            e.eval_bool(&[&t]).unwrap();
        }
    }

    /// WindowExists (NOT EXISTS, ± window) agrees with a brute-force
    /// oracle over the full feed.
    #[test]
    fn window_not_exists_oracle(
        feed in proptest::collection::vec((0u64..4, any::<bool>()), 0..50),
        tau in 1u64..5,
    ) {
        let tau_d = Duration::from_secs(tau);
        let mut op = WindowExists::new(
            SemiJoinKind::NotExists,
            WindowExtent::PrecedingAndFollowing(tau_d),
            // inner must be a person.
            Expr::eq(Expr::qcol(1, 0), Expr::lit("person")),
            Some(Expr::eq(Expr::col(0), Expr::lit("item"))),
        );
        let mut ts = 0u64;
        let tuples: Vec<Tuple> = feed
            .iter()
            .enumerate()
            .map(|(i, (gap, is_person))| {
                ts += gap + 1; // strictly increasing
                Tuple::new(
                    vec![Value::str(if *is_person { "person" } else { "item" }),
                         Value::Int(i as i64)],
                    Timestamp::from_secs(ts),
                    i as u64,
                )
            })
            .collect();
        let mut out = Vec::new();
        for t in &tuples {
            op.on_tuple(0, t, &mut out).unwrap();
            op.on_tuple(1, t, &mut out).unwrap();
        }
        let horizon = tuples.last().map(|t| t.ts()).unwrap_or(Timestamp::ZERO)
            + tau_d + Duration::from_secs(1);
        op.on_punctuation(horizon, &mut out).unwrap();

        let expected: Vec<i64> = tuples
            .iter()
            .filter(|t| t.value(0) == &Value::str("item"))
            .filter(|item| {
                !tuples.iter().any(|p| {
                    p.value(0) == &Value::str("person")
                        && p.ts() >= item.ts().saturating_sub(tau_d)
                        && p.ts() <= item.ts() + tau_d
                })
            })
            .map(|t| t.value(1).as_int().unwrap())
            .collect();
        let mut got: Vec<i64> = out.iter().map(|t| t.value(1).as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expected = expected;
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}

// --------------------------------------------- shared-execution churn

/// One step of a random register / feed / deregister interleaving.
#[derive(Debug, Clone)]
enum Churn {
    Register(usize),
    Feed { gap: u64, tag: u8 },
    Deregister(usize),
}

fn churn_steps(len: usize) -> impl Strategy<Value = Vec<Churn>> {
    proptest::collection::vec((0u8..4, 0usize..8, 0u64..3, 0u8..4), 0..len).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, pick, gap, tag)| match kind {
                0 => Churn::Register(pick),
                1 | 2 => Churn::Feed { gap, tag },
                _ => Churn::Deregister(pick),
            })
            .collect()
    })
}

/// The query pool: 8 variants over 4 shared cores (dedup on the tag
/// column within a per-group window); variants 4..8 add a per-query
/// residual projection on top of the same cores.
fn churn_core(variant: usize) -> (u64, String, Box<dyn Operator>) {
    let group = (variant % 4) as u64;
    let canon = format!("dedup tag within {}s", group + 1);
    let op: Box<dyn Operator> = Box::new(Dedup::new(
        vec![Expr::col(1)],
        Duration::from_secs(group + 1),
    ));
    (group, canon, op)
}

fn churn_residual(variant: usize) -> Option<Box<dyn Operator>> {
    (variant >= 4).then(|| {
        Box::new(Chain::new(vec![
            Box::new(Project::new(vec![Expr::col(1), Expr::col(2)])) as Box<dyn Operator>,
        ])) as Box<dyn Operator>
    })
}

/// The same variant as one independent (non-shared) physical chain.
fn churn_independent(variant: usize) -> Box<dyn Operator> {
    let (_, _, core) = churn_core(variant);
    match churn_residual(variant) {
        Some(res) => Box::new(Chain::new(vec![core, res])),
        None => core,
    }
}

fn churn_rows(c: &Collector) -> Vec<(Vec<Value>, Timestamp)> {
    c.take()
        .into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of register / feed / deregister over a pool
    /// of 8 shared-execution query variants: every instance's output is
    /// byte-identical to a fresh non-shared engine replaying exactly
    /// the rows that arrived while the instance was live.
    #[test]
    fn shared_churn_matches_fresh_replay(steps in churn_steps(60)) {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("raw")).unwrap();
        e.set_shared_execution(true);

        struct Instance {
            variant: usize,
            id: QueryId,
            out: Collector,
            fed: Vec<(u64, u8)>,
            live: bool,
        }
        let mut instances: Vec<Instance> = Vec::new();
        let mut ts = 0u64;
        for step in &steps {
            match step {
                Churn::Register(pick) => {
                    let variant = *pick;
                    let (fp, canon, core) = churn_core(variant);
                    let out = Collector::new();
                    let id = e
                        .register_shared(
                            format!("v{variant}#{}", instances.len()),
                            vec!["raw"],
                            fp,
                            &canon,
                            &canon,
                            core,
                            churn_residual(variant),
                            Sink::Collect(out.clone()),
                        )
                        .unwrap();
                    instances.push(Instance { variant, id, out, fed: Vec::new(), live: true });
                }
                Churn::Feed { gap, tag } => {
                    ts += gap;
                    e.push(
                        "raw",
                        vec![
                            Value::str("r"),
                            Value::str(format!("tag-{tag}")),
                            Value::Ts(Timestamp::from_secs(ts)),
                        ],
                    )
                    .unwrap();
                    for inst in instances.iter_mut().filter(|i| i.live) {
                        inst.fed.push((ts, *tag));
                    }
                }
                Churn::Deregister(pick) => {
                    let live: Vec<usize> = instances
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| i.live)
                        .map(|(n, _)| n)
                        .collect();
                    if !live.is_empty() {
                        let n = live[pick % live.len()];
                        e.deregister_query(instances[n].id);
                        instances[n].live = false;
                    }
                }
            }
        }

        // Replay each instance's private view on a fresh engine with an
        // independent chain and compare outputs exactly.
        for inst in &instances {
            let mut fresh = Engine::new();
            fresh.create_stream(Schema::readings("raw")).unwrap();
            let (_, out) = fresh
                .register_collected(
                    "replay",
                    vec!["raw"],
                    churn_independent(inst.variant),
                )
                .unwrap();
            for (secs, tag) in &inst.fed {
                fresh
                    .push(
                        "raw",
                        vec![
                            Value::str("r"),
                            Value::str(format!("tag-{tag}")),
                            Value::Ts(Timestamp::from_secs(*secs)),
                        ],
                    )
                    .unwrap();
            }
            prop_assert_eq!(
                churn_rows(&inst.out),
                churn_rows(&out),
                "variant {} (id {:?}) diverged from fresh replay",
                inst.variant,
                inst.id
            );
        }
    }
}
