//! Property tests for the shard router (vendored proptest stub —
//! deterministic cases, no shrinking).
//!
//! Three invariants from the sharding design:
//! 1. shard assignment is a pure function of the key columns — stable
//!    across calls, processes and runs, and blind to non-key columns;
//! 2. permuting producer interleavings never changes a key's output
//!    subsequence through a [`ShardedEngine`];
//! 3. the watermark aggregator never advances past the minimum shard
//!    watermark.

use eslev_dsms::prelude::*;
use proptest::prelude::*;

fn reading(tag: &str, reader: &str, secs: u64) -> Vec<Value> {
    vec![
        Value::str(reader),
        Value::str(tag),
        Value::Ts(Timestamp::from_secs(secs)),
    ]
}

/// Independent FNV-1a over the router's hash input layout (each key
/// column's display text followed by a 0xff separator) — a golden
/// reimplementation that pins the router to its published hash, so the
/// assignment stays stable across releases, not just across calls.
fn golden_shard(keys: &[&str], shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for k in keys {
        for b in k.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Purity and stability: assignment depends only on the key columns
    /// and matches the pinned FNV-1a 64 reference.
    #[test]
    fn shard_assignment_is_pure(
        tag in "tag-[0-9a-f]{1,12}",
        reader_a in "[a-z]{1,8}",
        reader_b in "[a-z]{1,8}",
        secs in 0u64..100_000,
        shards in 1usize..9,
    ) {
        let a = reading(&tag, &reader_a, secs);
        let b = reading(&tag, &reader_b, secs.wrapping_mul(7) % 100_000);
        let key = vec![1usize];
        let sa = shard_of(&a, &key, shards);
        prop_assert!(sa < shards, "assignment in range");
        prop_assert_eq!(sa, shard_of(&a, &key, shards), "repeat call is identical");
        prop_assert_eq!(sa, shard_of(&b, &key, shards), "non-key columns are ignored");
        prop_assert_eq!(sa, golden_shard(&[&tag], shards), "matches pinned FNV-1a");
    }

    /// Routing an interleaving and a per-key-sorted permutation of the
    /// same workload yields the same per-key output subsequence — the
    /// router serializes each key onto one shard, so cross-key shuffles
    /// cannot reorder a key's own tuples.
    #[test]
    fn interleavings_preserve_per_key_sequences(
        ops in proptest::collection::vec((0u8..4, 0u32..1000), 1..60),
        shards in 1usize..6,
    ) {
        // Interleaving A: as generated. Interleaving B: stable-sorted by
        // key (pure cross-key permutation; per-key order untouched).
        let mut sorted = ops.clone();
        sorted.sort_by_key(|(k, _)| *k);
        let mut per_key_outputs: Vec<Vec<Vec<(u8, u32)>>> = Vec::new();
        for feed in [&ops, &sorted] {
            let mut se = ShardedEngine::build(shards, 128, ShardSpec::new(), |e| {
                e.create_stream(Schema::readings("readings"))?;
                let (_, out) = e.register_collected(
                    "all",
                    vec!["readings"],
                    Box::new(Select::new(Expr::lit(true))),
                )?;
                Ok(vec![out])
            })
            .expect("build");
            for (slot, (key, payload)) in feed.iter().enumerate() {
                se.push(
                    "readings",
                    reading(&format!("k{key}"), &payload.to_string(), slot as u64),
                )
                .expect("route");
            }
            se.flush().expect("flush");
            let merged = se.take_output(0).expect("slot");
            se.stop().expect("stop");
            // Project the merged stream onto per-key subsequences.
            let mut by_key: Vec<Vec<(u8, u32)>> = vec![Vec::new(); 4];
            for t in merged {
                let tag = t.value(1).as_str().expect("tag").to_string();
                let key: u8 = tag[1..].parse().expect("key digit");
                let payload: u32 = t.value(0).as_str().expect("payload").parse().expect("u32");
                by_key[key as usize].push((key, payload));
            }
            per_key_outputs.push(by_key);
        }
        // Both interleavings match each other and the input projection.
        let mut want: Vec<Vec<(u8, u32)>> = vec![Vec::new(); 4];
        for (k, p) in &ops {
            want[*k as usize].push((*k, *p));
        }
        prop_assert_eq!(&per_key_outputs[0], &want, "interleaving A projects the input");
        prop_assert_eq!(&per_key_outputs[1], &want, "interleaving B projects the input");
    }

    /// The low-water mark is always exactly the minimum shard watermark,
    /// never past it, and monotone.
    #[test]
    fn watermark_never_passes_minimum(
        ops in proptest::collection::vec((0usize..5, 0u64..10_000), 1..80),
        shards in 1usize..6,
    ) {
        let mut agg = WatermarkAggregator::new(shards);
        let mut model = vec![0u64; shards];
        let mut last_low = agg.low_water();
        for (shard, secs) in ops {
            let shard = shard % shards;
            let ts = Timestamp::from_secs(secs);
            agg.advance(shard, ts);
            model[shard] = model[shard].max(ts.as_micros());
            let low = agg.low_water();
            let min = *model.iter().min().expect("non-empty");
            prop_assert!(
                low.as_micros() <= min,
                "low water {low} past the minimum shard watermark"
            );
            prop_assert_eq!(low, Timestamp::from_micros(min), "low water is the minimum");
            prop_assert!(low >= last_low, "low water is monotone");
            prop_assert_eq!(agg.mark(shard), Timestamp::from_micros(model[shard]));
            last_low = low;
        }
        prop_assert!(agg.high_water() >= agg.low_water());
    }
}
