//! Seeded out-of-order perturbation for replay feeds.
//!
//! The scenario generators emit globally time-ordered feeds — the shape a
//! well-behaved RFID middleware layer would deliver. Real deployments are
//! messier: per-reader buffering, batched uploads, and network retries
//! reorder observations by a bounded amount. This module simulates that
//! *bounded disorder* deterministically so the engine's reorder buffer and
//! speculative/consistent emission paths can be exercised end to end.
//!
//! The model: each event-time instant draws a delivery delay in
//! `[0, max_delay]` from a seeded hash of its timestamp, and the feed is
//! stably re-sorted by *arrival time* (`ts + delay`). Two invariants follow:
//!
//! 1. **Bounded**: no tuple arrives more than `max_delay` after a tuple
//!    with a later event time, so a reorder slack of `max_delay` is always
//!    sufficient to restore order with zero late drops.
//! 2. **Tie-preserving**: the delay is keyed by the timestamp alone (not
//!    the row), so equal-timestamp tuples share one delay and the stable
//!    sort keeps their original relative order. The engine breaks
//!    timestamp ties by arrival sequence, so a disordered replay restored
//!    through the reorder buffer reproduces the in-order run *byte for
//!    byte* — which is exactly what the differential tests assert.

use eslev_dsms::time::{Duration, Timestamp};
use eslev_dsms::value::Value;

use crate::reading::FeedItem;

/// splitmix64 finalizer — full-avalanche 64-bit mixer, good enough to
/// decorrelate adjacent timestamps without carrying RNG state.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Deterministic delivery delay for the event-time instant `ts`.
///
/// Keyed by `(seed, ts)` only — every tuple stamped `ts` gets the same
/// delay, which is what preserves equal-timestamp arrival order.
pub fn delay_for(seed: u64, ts: Timestamp, max_delay: Duration) -> Duration {
    if max_delay.as_micros() == 0 {
        return Duration::from_micros(0);
    }
    Duration::from_micros(
        mix(seed ^ ts.as_micros().wrapping_mul(0x9e37_79b9_7f4a_7c15))
            % (max_delay.as_micros() + 1),
    )
}

/// Stably sort `items` by simulated arrival time, producing a feed with
/// bounded disorder (see module docs). `max_delay == 0` is the identity.
pub fn perturb(items: Vec<FeedItem>, seed: u64, max_delay: Duration) -> Vec<FeedItem> {
    let mut keyed: Vec<(Timestamp, usize, FeedItem)> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let arrival =
                item.reading
                    .ts
                    .saturating_add(delay_for(seed, item.reading.ts, max_delay));
            (arrival, i, item)
        })
        .collect();
    keyed.sort_by_key(|(arrival, i, _)| (*arrival, *i));
    keyed.into_iter().map(|(_, _, item)| item).collect()
}

/// [`perturb`] for raw engine rows: the event time is the first
/// [`Value::Ts`] column in each row. Rows without a timestamp column keep
/// their position's original timestamp slot at `Timestamp::from_micros(0)`
/// (delay 0 for seed purposes) so they stay near the front.
pub fn perturb_rows(
    rows: Vec<(String, Vec<Value>)>,
    seed: u64,
    max_delay: Duration,
) -> Vec<(String, Vec<Value>)> {
    let mut keyed: Vec<(Timestamp, usize, (String, Vec<Value>))> = rows
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            let ts = row
                .1
                .iter()
                .find_map(|v| match v {
                    Value::Ts(t) => Some(*t),
                    _ => None,
                })
                .unwrap_or(Timestamp::from_micros(0));
            let arrival = ts.saturating_add(delay_for(seed, ts, max_delay));
            (arrival, i, row)
        })
        .collect();
    keyed.sort_by_key(|(arrival, i, _)| (*arrival, *i));
    keyed.into_iter().map(|(_, _, row)| row).collect()
}

/// How far the perturbed feed strays from event-time order: the maximum
/// over all positions of `running_max_ts - ts` — i.e. the smallest reorder
/// slack that admits every tuple with zero late drops.
pub fn observed_disorder(items: &[FeedItem]) -> Duration {
    let mut max_seen = Timestamp::from_micros(0);
    let mut worst = 0u64;
    for item in items {
        let ts = item.reading.ts;
        if ts > max_seen {
            max_seen = ts;
        } else {
            worst = worst.max(max_seen.as_micros() - ts.as_micros());
        }
    }
    Duration::from_micros(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::Reading;

    fn feed(n: u64) -> Vec<FeedItem> {
        (0..n)
            .map(|i| FeedItem {
                stream: "readings".into(),
                reading: Reading::new("r1", format!("t{i}"), Timestamp::from_millis(i * 250)),
            })
            .collect()
    }

    #[test]
    fn zero_delay_is_identity() {
        let items = feed(50);
        let out = perturb(items.clone(), 7, Duration::from_micros(0));
        assert_eq!(out, items);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let items = feed(400);
        let a = perturb(items.clone(), 42, Duration::from_secs(2));
        let b = perturb(items.clone(), 42, Duration::from_secs(2));
        assert_eq!(a, b, "same seed must reproduce the same arrival order");
        assert_ne!(a, items, "a 2s delay over 250ms spacing must reorder");
        assert!(observed_disorder(&a) <= Duration::from_secs(2));

        let c = perturb(items, 43, Duration::from_secs(2));
        assert_ne!(a, c, "different seeds should disagree somewhere");
    }

    #[test]
    fn perturbation_is_a_permutation() {
        let items = feed(300);
        let mut orig: Vec<String> = items.iter().map(|i| i.reading.tag.clone()).collect();
        let mut got: Vec<String> = perturb(items, 9, Duration::from_secs(4))
            .iter()
            .map(|i| i.reading.tag.clone())
            .collect();
        orig.sort();
        got.sort();
        assert_eq!(orig, got);
    }

    #[test]
    fn equal_timestamps_keep_relative_order() {
        let mut items = Vec::new();
        for burst in 0..40u64 {
            for k in 0..3u64 {
                items.push(FeedItem {
                    stream: "readings".into(),
                    reading: Reading::new(
                        "r1",
                        format!("b{burst}k{k}"),
                        Timestamp::from_secs(burst),
                    ),
                });
            }
        }
        let out = perturb(items, 5, Duration::from_secs(3));
        // Within each timestamp, k must still run 0,1,2.
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for item in &out {
            let ts = item.reading.ts.as_micros();
            let k: u64 = item.reading.tag.split('k').nth(1).unwrap().parse().unwrap();
            if let Some(prev) = last.insert(ts, k) {
                assert!(prev < k, "tie order broken at ts={ts}: {prev} then {k}");
            }
        }
    }

    #[test]
    fn perturb_rows_matches_perturb() {
        let items = feed(200);
        let rows: Vec<(String, Vec<Value>)> = items
            .iter()
            .map(|i| (i.stream.clone(), i.reading.to_values()))
            .collect();
        let out_items = perturb(items, 11, Duration::from_secs(1));
        let out_rows = perturb_rows(rows, 11, Duration::from_secs(1));
        for (item, (stream, values)) in out_items.iter().zip(&out_rows) {
            assert_eq!(&item.stream, stream);
            assert_eq!(&item.reading.to_values(), values);
        }
    }
}
