//! Example 1 workload: duplicate-heavy raw readings.
//!
//! Simulates tags passing a gate reader at a configurable rate. Each
//! physical presence yields a geometric burst of duplicate reads (chained
//! within the reader's re-read period), so the correct cleaned output is
//! exactly one reading per presence — the generator reports that count as
//! ground truth.

use crate::reader::{ReaderProfile, SimReader};
use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Number of physical tag presences to simulate.
    pub presences: usize,
    /// Number of distinct tags cycling past the reader.
    pub tags: usize,
    /// Mean gap between consecutive presences.
    pub mean_gap: Duration,
    /// Probability of each additional duplicate read.
    pub duplicate_prob: f64,
    /// Gap between chained duplicates (must be < the dedup window for the
    /// duplicates to be suppressible).
    pub reread_period: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            presences: 1000,
            tags: 50,
            mean_gap: Duration::from_secs(2),
            duplicate_prob: 0.5,
            reread_period: Duration::from_millis(300),
            seed: 1,
        }
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct DedupWorkload {
    /// Time-ordered raw readings, duplicates included.
    pub readings: Vec<Reading>,
    /// Number of physical presences (the expected cleaned count).
    pub unique_presences: usize,
}

/// Generate the workload.
///
/// Distinct tags never collide within a window (presences of the *same*
/// tag are spaced by at least twice the re-read period times the expected
/// chain length), so the ground truth is exact.
pub fn generate(cfg: &DedupConfig) -> DedupWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut reader = SimReader::new(
        "gate-reader",
        ReaderProfile {
            duplicate_prob: cfg.duplicate_prob,
            miss_prob: 0.0,
            reread_period: cfg.reread_period,
            jitter: Duration::ZERO,
        },
        cfg.seed,
    );
    let mut readings = Vec::new();
    let mut t = Timestamp::from_secs(1);
    // Round-robin tags so same-tag presences are far apart: with `tags`
    // tags and mean_gap spacing, same-tag spacing ≈ tags × mean_gap.
    for i in 0..cfg.presences {
        let tag = format!("tag-{}", i % cfg.tags.max(1));
        readings.extend(reader.observe(&tag, t));
        let jitter_us = rng.gen_range(0..=cfg.mean_gap.as_micros());
        t += Duration::from_micros(cfg.mean_gap.as_micros() / 2 + jitter_us);
    }
    readings.sort_by_key(|r| r.ts);
    DedupWorkload {
        readings,
        unique_presences: cfg.presences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_duplicates_and_truth() {
        let w = generate(&DedupConfig {
            presences: 500,
            duplicate_prob: 0.5,
            ..DedupConfig::default()
        });
        assert_eq!(w.unique_presences, 500);
        assert!(
            w.readings.len() > 700,
            "p=0.5 should roughly double reads, got {}",
            w.readings.len()
        );
        assert!(w.readings.windows(2).all(|p| p[0].ts <= p[1].ts));
    }

    #[test]
    fn zero_duplicate_prob_is_exact() {
        let w = generate(&DedupConfig {
            presences: 100,
            duplicate_prob: 0.0,
            ..DedupConfig::default()
        });
        assert_eq!(w.readings.len(), 100);
    }

    #[test]
    fn deterministic() {
        let cfg = DedupConfig::default();
        assert_eq!(generate(&cfg).readings, generate(&cfg).readings);
    }

    #[test]
    fn same_tag_presences_are_window_separated() {
        let cfg = DedupConfig::default();
        let w = generate(&cfg);
        // For every pair of same-tag readings, the gap is either within
        // the duplicate chain (≤ a few re-read periods) or much larger
        // than the 1 s window — nothing ambiguous in between.
        let mut by_tag: std::collections::HashMap<&str, Vec<Timestamp>> = Default::default();
        for r in &w.readings {
            by_tag.entry(r.tag.as_str()).or_default().push(r.ts);
        }
        for times in by_tag.values() {
            for p in times.windows(2) {
                let gap = p[1] - p[0];
                assert!(
                    gap <= Duration::from_millis(300) || gap > Duration::from_secs(1),
                    "ambiguous gap {gap}"
                );
            }
        }
    }
}
