//! Example 6 workload: the four-checkpoint quality-control line.
//!
//! Every product passes RFID readers C1 → C2 → C3 → C4 with random
//! per-stage delays; a configurable fraction drops out mid-line (fails a
//! check and leaves). Ground truth is the set of products that completed
//! all four checks. Also provides the literal §3.1.1 worked history
//! `[t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]` as a fixture.

use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of checkpoints on the line.
pub const STAGES: usize = 4;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct QcConfig {
    /// Number of products entering the line.
    pub products: usize,
    /// Gap between consecutive product entries.
    pub entry_period: Duration,
    /// Per-stage transit delay: uniform in `stage_delay`.
    pub stage_delay: (Duration, Duration),
    /// Probability a product drops out after each stage.
    pub dropout_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QcConfig {
    fn default() -> Self {
        QcConfig {
            products: 200,
            entry_period: Duration::from_secs(2),
            stage_delay: (Duration::from_secs(5), Duration::from_secs(30)),
            dropout_prob: 0.05,
            seed: 1,
        }
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct QcWorkload {
    /// Per-checkpoint reading feeds (`feeds[i]` = stream Ci+1), each
    /// time-ordered.
    pub feeds: [Vec<Reading>; STAGES],
    /// Tags that completed all four checks, with their completion times.
    pub completed: Vec<(String, Timestamp)>,
    /// End-to-end spans of completed products (for window sweeps: a
    /// window shorter than a product's span must reject it).
    pub spans: Vec<Duration>,
}

/// Generate the workload.
pub fn generate(cfg: &QcConfig) -> QcWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut feeds: [Vec<Reading>; STAGES] = Default::default();
    let mut completed = Vec::new();
    let mut spans = Vec::new();
    for p in 0..cfg.products {
        let tag = format!("prod-{p}");
        let start = Timestamp::from_secs(1)
            + Duration::from_micros(p as u64 * cfg.entry_period.as_micros());
        let mut t = start;
        let mut done = 0;
        for (stage, feed) in feeds.iter_mut().enumerate() {
            feed.push(Reading::new(format!("C{}", stage + 1), &tag, t));
            done += 1;
            if stage + 1 < STAGES {
                if rng.gen_bool(cfg.dropout_prob) {
                    break;
                }
                let lo = cfg.stage_delay.0.as_micros();
                let hi = cfg.stage_delay.1.as_micros().max(lo + 1);
                t += Duration::from_micros(rng.gen_range(lo..hi));
            }
        }
        if done == STAGES {
            completed.push((tag, t));
            spans.push(t - start);
        }
    }
    for feed in &mut feeds {
        feed.sort_by_key(|r| r.ts);
    }
    QcWorkload {
        feeds,
        completed,
        spans,
    }
}

/// The worked joint history of §3.1.1 as `(port, reading)` pairs:
/// `[t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]`, all for one tag.
pub fn worked_history() -> Vec<(usize, Reading)> {
    let spec: [(usize, u64); 7] = [(0, 1), (0, 2), (1, 3), (2, 4), (2, 5), (1, 6), (3, 7)];
    spec.iter()
        .map(|(port, secs)| {
            (
                *port,
                Reading::new(
                    format!("C{}", port + 1),
                    "prod-x",
                    Timestamp::from_secs(*secs),
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_truth_consistent() {
        let cfg = QcConfig::default();
        let w = generate(&cfg);
        // Every completed tag appears exactly once in each feed.
        for (tag, _) in &w.completed {
            for feed in &w.feeds {
                assert_eq!(feed.iter().filter(|r| &r.tag == tag).count(), 1);
            }
        }
        // Dropouts are visible: feed sizes strictly decrease in
        // expectation with 5% dropout over 200 products.
        assert_eq!(w.feeds[0].len(), 200);
        assert!(w.feeds[3].len() < 200);
        assert_eq!(w.feeds[3].len(), w.completed.len());
        assert_eq!(w.spans.len(), w.completed.len());
    }

    #[test]
    fn zero_dropout_completes_all() {
        let w = generate(&QcConfig {
            dropout_prob: 0.0,
            products: 50,
            ..QcConfig::default()
        });
        assert_eq!(w.completed.len(), 50);
    }

    #[test]
    fn stage_order_per_product() {
        let w = generate(&QcConfig::default());
        for (tag, _) in &w.completed {
            let times: Vec<Timestamp> = w
                .feeds
                .iter()
                .map(|f| f.iter().find(|r| &r.tag == tag).unwrap().ts)
                .collect();
            assert!(times.windows(2).all(|p| p[0] < p[1]), "stages ordered");
        }
    }

    #[test]
    fn spans_within_configured_bounds() {
        let cfg = QcConfig::default();
        let w = generate(&cfg);
        for s in &w.spans {
            assert!(*s >= Duration::from_secs(15)); // 3 × 5 s minimum
            assert!(*s <= Duration::from_secs(90)); // 3 × 30 s maximum
        }
    }

    #[test]
    fn worked_history_shape() {
        let h = worked_history();
        assert_eq!(h.len(), 7);
        assert_eq!(h[0].1.reader, "C1");
        assert_eq!(h[6].0, 3);
        assert_eq!(h[6].1.ts, Timestamp::from_secs(7));
    }

    #[test]
    fn deterministic() {
        let cfg = QcConfig::default();
        let (a, b) = (generate(&cfg), generate(&cfg));
        assert_eq!(a.feeds[0], b.feeds[0]);
        assert_eq!(a.completed, b.completed);
    }
}
