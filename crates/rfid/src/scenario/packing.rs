//! Figure 1 / Examples 4 & 7 workload: warehouse packing.
//!
//! Reader `r1` scans products being packed; reader `r2` scans packing
//! cases. Products of one case are read in a burst (consecutive gaps
//! ≤ `t1`); the case is read within `t0` of the last product; the next
//! case's products may start before the previous case is read (the paper
//! explicitly allows this overlap — Figure 1(b)). Ground truth is the
//! exact product set of each case.

use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct PackingConfig {
    /// Number of cases to pack.
    pub cases: usize,
    /// Products per case: uniform in `products_per_case`.
    pub products_per_case: (usize, usize),
    /// Threshold `t1`: intra-burst gaps are drawn well below it.
    pub t1: Duration,
    /// Threshold `t0`: case read lands within it after the last product.
    pub t0: Duration,
    /// Fraction of `t1` that intra-burst gaps may reach (0.0–1.0); raising
    /// it toward 1.0 stresses the threshold (experiment E4's noise sweep).
    pub gap_tightness: f64,
    /// Gap between one case's read and the next burst's first product
    /// (must exceed `t1` so bursts are separable).
    pub inter_case_gap: Duration,
    /// Whether the next case's products may start before the previous
    /// case is read (Figure 1(b)'s overlap).
    pub overlap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            cases: 100,
            products_per_case: (2, 10),
            t1: Duration::from_secs(1),
            t0: Duration::from_secs(5),
            gap_tightness: 0.6,
            inter_case_gap: Duration::from_secs(4),
            overlap: false,
            seed: 1,
        }
    }
}

/// Ground truth for one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseTruth {
    /// The case's tag id.
    pub case_tag: String,
    /// Product tag ids packed into it, in read order.
    pub product_tags: Vec<String>,
    /// When the case was read.
    pub case_ts: Timestamp,
}

/// Generated workload.
#[derive(Debug)]
pub struct PackingWorkload {
    /// Product readings (reader r1), time-ordered.
    pub products: Vec<Reading>,
    /// Case readings (reader r2), time-ordered.
    pub cases: Vec<Reading>,
    /// Per-case ground truth, in case-read order.
    pub truth: Vec<CaseTruth>,
}

/// Generate the workload.
pub fn generate(cfg: &PackingConfig) -> PackingWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut products = Vec::new();
    let mut cases = Vec::new();
    let mut truth = Vec::new();
    let mut t = Timestamp::from_secs(1);
    let gap_cap = ((cfg.t1.as_micros() as f64) * cfg.gap_tightness.clamp(0.0, 1.0)) as u64;
    for c in 0..cfg.cases {
        let count = rng.gen_range(
            cfg.products_per_case.0..=cfg.products_per_case.1.max(cfg.products_per_case.0),
        );
        let mut tags = Vec::with_capacity(count);
        let mut last_product_ts = t;
        for p in 0..count {
            if p > 0 {
                t += Duration::from_micros(rng.gen_range(1..=gap_cap.max(1)));
            }
            let tag = format!("prod-{c}-{p}");
            products.push(Reading::new("r1", &tag, t));
            tags.push(tag);
            last_product_ts = t;
        }
        // Case read within t0 of the last product. Case reads must stay
        // mutually ordered (CHRONICLE pairs the earliest unconsumed burst
        // with the next case read, so reordered cases would mispair —
        // genuinely ambiguous data we choose not to generate).
        let case_delay = rng.gen_range(1..=cfg.t0.as_micros().max(2) / 2);
        let mut case_ts = last_product_ts + Duration::from_micros(case_delay);
        if let Some(prev) = cases.last() {
            let prev: &Reading = prev;
            if case_ts <= prev.ts {
                case_ts = prev.ts + Duration::from_micros(1);
            }
        }
        debug_assert!(case_ts - last_product_ts <= cfg.t0);
        let case_tag = format!("case-{c}");
        cases.push(Reading::new("r2", &case_tag, case_ts));
        truth.push(CaseTruth {
            case_tag,
            product_tags: tags,
            case_ts,
        });
        // The next burst must start > t1 after this burst's last product
        // so bursts are separable. With overlap enabled it may begin
        // before the case read (Figure 1(b)).
        t = if cfg.overlap {
            last_product_ts
                + cfg.t1
                + Duration::from_micros(rng.gen_range(1..=cfg.t1.as_micros().max(2)))
        } else {
            case_ts + cfg.inter_case_gap
        };
    }
    products.sort_by_key(|r| r.ts);
    cases.sort_by_key(|r| r.ts);
    PackingWorkload {
        products,
        cases,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_thresholds(cfg: &PackingConfig, w: &PackingWorkload) {
        // Intra-burst gaps ≤ t1; case within t0 of last product; bursts
        // separated by > t1.
        for truth in &w.truth {
            let times: Vec<Timestamp> = truth
                .product_tags
                .iter()
                .map(|tag| {
                    w.products
                        .iter()
                        .find(|r| &r.tag == tag)
                        .expect("truth tags exist")
                        .ts
                })
                .collect();
            for pair in times.windows(2) {
                assert!(pair[1] - pair[0] <= cfg.t1, "burst gap exceeds t1");
            }
            let last = *times.last().unwrap();
            assert!(truth.case_ts - last <= cfg.t0, "case outside t0");
        }
        for pair in w.truth.windows(2) {
            let prev_last = w
                .products
                .iter()
                .find(|r| r.tag == *pair[0].product_tags.last().unwrap())
                .unwrap()
                .ts;
            let next_first = w
                .products
                .iter()
                .find(|r| r.tag == pair[1].product_tags[0])
                .unwrap()
                .ts;
            assert!(next_first - prev_last > cfg.t1, "bursts not separated");
        }
    }

    #[test]
    fn thresholds_hold_without_overlap() {
        let cfg = PackingConfig::default();
        let w = generate(&cfg);
        assert_eq!(w.truth.len(), 100);
        assert_eq!(w.cases.len(), 100);
        check_thresholds(&cfg, &w);
    }

    #[test]
    fn thresholds_hold_with_overlap() {
        let cfg = PackingConfig {
            overlap: true,
            cases: 50,
            ..PackingConfig::default()
        };
        let w = generate(&cfg);
        check_thresholds(&cfg, &w);
        // Overlap actually happens: some burst starts before the prior
        // case read.
        let mut overlapped = false;
        for pair in w.truth.windows(2) {
            let next_first = w
                .products
                .iter()
                .find(|r| r.tag == pair[1].product_tags[0])
                .unwrap()
                .ts;
            if next_first < pair[0].case_ts {
                overlapped = true;
            }
        }
        assert!(
            overlapped,
            "overlap config should interleave bursts and cases"
        );
    }

    #[test]
    fn product_counts_in_range() {
        let cfg = PackingConfig {
            products_per_case: (3, 3),
            cases: 10,
            ..PackingConfig::default()
        };
        let w = generate(&cfg);
        assert!(w.truth.iter().all(|t| t.product_tags.len() == 3));
        assert_eq!(w.products.len(), 30);
    }

    #[test]
    fn deterministic() {
        let cfg = PackingConfig::default();
        let (a, b) = (generate(&cfg), generate(&cfg));
        assert_eq!(a.products, b.products);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.truth, b.truth);
    }
}
