//! Example 3 workload: EPC populations for pattern-based aggregation.
//!
//! Generates reading streams whose tag ids are dotted EPCs drawn from a
//! mix of companies/products/serials, with a controllable fraction
//! matching a target pattern (default the paper's `20.*.[5000-9999]`).
//! Ground truth is the exact match count.

use crate::epc::Epc;
use crate::epc_pattern::{EpcPattern, FieldPattern};
use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct EpcConfig {
    /// Number of readings.
    pub readings: usize,
    /// Fraction of readings that must match the target pattern.
    pub match_fraction: f64,
    /// The target pattern (defaults to the paper's). Must not be
    /// `*.*.*` — a pattern matching everything has no complement to draw
    /// non-matching EPCs from.
    pub pattern: EpcPattern,
    /// Gap between consecutive readings.
    pub period: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EpcConfig {
    fn default() -> Self {
        EpcConfig {
            readings: 10_000,
            match_fraction: 0.3,
            pattern: "20.*.[5000-9999]".parse().expect("static pattern"),
            period: Duration::from_millis(10),
            seed: 1,
        }
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct EpcWorkload {
    /// Time-ordered readings with EPC tag ids.
    pub readings: Vec<Reading>,
    /// Exact number of readings matching the pattern.
    pub matching: usize,
}

/// Draw a field value satisfying `p`.
fn draw_in(rng: &mut StdRng, p: FieldPattern, default_hi: u64) -> u64 {
    match p {
        FieldPattern::Exact(x) => x,
        FieldPattern::Any => rng.gen_range(1..default_hi),
        FieldPattern::Range(lo, hi) => rng.gen_range(lo..=hi),
    }
}

/// Draw a field value violating `p`; `None` when `p` is `Any`.
fn draw_out(rng: &mut StdRng, p: FieldPattern, default_hi: u64) -> Option<u64> {
    match p {
        FieldPattern::Any => None,
        FieldPattern::Exact(x) => {
            let mut v = rng.gen_range(0..default_hi);
            if v == x {
                v = x + 1;
            }
            Some(v)
        }
        FieldPattern::Range(lo, hi) => {
            // Below or above the range, whichever exists.
            let below = lo > 0;
            let above = hi < u64::MAX / 2;
            Some(if below && (!above || rng.gen_bool(0.5)) {
                rng.gen_range(0..lo)
            } else {
                rng.gen_range(hi + 1..=hi + default_hi)
            })
        }
    }
}

/// Generate the workload. Matching EPCs draw every field inside the
/// pattern; non-matching EPCs violate at least one non-wildcard field.
pub fn generate(cfg: &EpcConfig) -> EpcWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut readings = Vec::with_capacity(cfg.readings);
    let mut matching = 0;
    let mut t = Timestamp::from_secs(1);
    let fields = [cfg.pattern.company, cfg.pattern.product, cfg.pattern.serial];
    let violatable: Vec<usize> = (0..3)
        .filter(|&i| !matches!(fields[i], FieldPattern::Any))
        .collect();
    assert!(
        !violatable.is_empty(),
        "pattern `{}` matches every EPC; no complement to draw from",
        cfg.pattern
    );
    for _ in 0..cfg.readings {
        let is_match = rng.gen_bool(cfg.match_fraction);
        let mut vals = [0u64; 3];
        if is_match {
            matching += 1;
            for (i, f) in fields.iter().enumerate() {
                vals[i] = draw_in(&mut rng, *f, 100);
            }
        } else {
            // Start inside the pattern, then force one field out.
            for (i, f) in fields.iter().enumerate() {
                vals[i] = draw_in(&mut rng, *f, 100);
            }
            let flip = violatable[rng.gen_range(0..violatable.len())];
            vals[flip] =
                draw_out(&mut rng, fields[flip], 1000).expect("violatable field is not Any");
        }
        let epc = Epc::new(vals[0] as u32, vals[1] as u32, vals[2]);
        debug_assert_eq!(cfg.pattern.matches(&epc), is_match, "epc {epc}");
        readings.push(Reading::new("agg-reader", epc.to_string(), t));
        t += cfg.period;
    }
    EpcWorkload { readings, matching }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_pattern_exactly() {
        let cfg = EpcConfig {
            readings: 2000,
            ..EpcConfig::default()
        };
        let w = generate(&cfg);
        let recount = w
            .readings
            .iter()
            .filter(|r| cfg.pattern.matches_str(&r.tag))
            .count();
        assert_eq!(recount, w.matching);
        let frac = w.matching as f64 / w.readings.len() as f64;
        assert!((0.25..=0.35).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn custom_patterns_respected() {
        let cfg = EpcConfig {
            readings: 1000,
            pattern: "7.[3-9].*".parse().unwrap(),
            match_fraction: 0.5,
            ..EpcConfig::default()
        };
        let w = generate(&cfg);
        let recount = w
            .readings
            .iter()
            .filter(|r| cfg.pattern.matches_str(&r.tag))
            .count();
        assert_eq!(recount, w.matching);
        assert!(w.matching > 300 && w.matching < 700);
    }

    #[test]
    fn extreme_fractions() {
        let all = generate(&EpcConfig {
            readings: 100,
            match_fraction: 1.0,
            ..EpcConfig::default()
        });
        assert_eq!(all.matching, 100);
        let none = generate(&EpcConfig {
            readings: 100,
            match_fraction: 0.0,
            ..EpcConfig::default()
        });
        assert_eq!(none.matching, 0);
    }

    #[test]
    #[should_panic(expected = "matches every EPC")]
    fn rejects_universal_pattern() {
        generate(&EpcConfig {
            pattern: "*.*.*".parse().unwrap(),
            ..EpcConfig::default()
        });
    }

    #[test]
    fn deterministic() {
        let cfg = EpcConfig::default();
        assert_eq!(generate(&cfg).readings, generate(&cfg).readings);
    }
}
