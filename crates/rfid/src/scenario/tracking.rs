//! Example 2 workload: object movement tracking.
//!
//! Tagged objects sit at warehouse locations and are re-read
//! periodically; occasionally an object moves. The continuous query of
//! Example 2 must insert a row into `object_movement` *only when the
//! location changes* — the generator reports the exact number of changes
//! (including each object's first appearance) as ground truth.

use eslev_dsms::time::{Duration, Timestamp};
use eslev_dsms::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// Number of tagged objects.
    pub objects: usize,
    /// Number of distinct locations.
    pub locations: usize,
    /// Readings per object (periodic re-reads).
    pub readings_per_object: usize,
    /// Probability that a reading finds the object at a new location.
    pub move_prob: f64,
    /// Gap between an object's consecutive readings.
    pub read_period: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            objects: 20,
            locations: 8,
            readings_per_object: 200,
            move_prob: 0.1,
            read_period: Duration::from_secs(5),
            seed: 1,
        }
    }
}

/// One row of the paper's `tag_locations(readerid, tid, tagtime, loc)`
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationReading {
    /// Reader at the location.
    pub reader: String,
    /// Object tag.
    pub tag: String,
    /// Observation time.
    pub ts: Timestamp,
    /// Location name.
    pub location: String,
}

impl LocationReading {
    /// Row for the `tag_locations` schema.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::str(&self.reader),
            Value::str(&self.tag),
            Value::Ts(self.ts),
            Value::str(&self.location),
        ]
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct TrackingWorkload {
    /// Time-ordered location readings.
    pub readings: Vec<LocationReading>,
    /// Location transitions (counting each object's first reading) — the
    /// intent Example 2 describes in prose.
    pub movements: usize,
    /// Distinct `(tag, location)` pairs — what Example 2's literal
    /// `NOT EXISTS (... WHERE tagid = tid AND location = loc)` query
    /// inserts: an object returning to a previously-visited location does
    /// NOT produce a new row under the paper's SQL.
    pub distinct_pairs: usize,
}

/// Generate the workload.
pub fn generate(cfg: &TrackingConfig) -> TrackingWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut readings = Vec::new();
    let mut movements = 0;
    for o in 0..cfg.objects {
        let tag = format!("obj-{o}");
        let mut loc = rng.gen_range(0..cfg.locations.max(1));
        // Stagger objects so the merged feed interleaves.
        let mut t = Timestamp::from_micros(1 + o as u64 * 1000);
        movements += 1; // first appearance inserts a row
        for i in 0..cfg.readings_per_object {
            if i > 0 && rng.gen_bool(cfg.move_prob) {
                // Move to a different location (guaranteed change).
                let next = (loc + rng.gen_range(1..cfg.locations.max(2))) % cfg.locations.max(1);
                if next != loc {
                    loc = next;
                    movements += 1;
                }
            }
            readings.push(LocationReading {
                reader: format!("loc-reader-{loc}"),
                tag: tag.clone(),
                ts: t,
                location: format!("loc-{loc}"),
            });
            t += cfg.read_period;
        }
    }
    readings.sort_by_key(|r| r.ts);
    let distinct_pairs = readings
        .iter()
        .map(|r| (r.tag.as_str(), r.location.as_str()))
        .collect::<std::collections::HashSet<_>>()
        .len();
    TrackingWorkload {
        readings,
        movements,
        distinct_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_count_matches_transitions() {
        let w = generate(&TrackingConfig::default());
        // Recompute truth from the data itself.
        let mut last: std::collections::HashMap<&str, &str> = Default::default();
        let mut seen_moves = 0;
        let mut ordered = w.readings.clone();
        ordered.sort_by(|a, b| (a.tag.as_str(), a.ts).cmp(&(b.tag.as_str(), b.ts)));
        for r in &ordered {
            if last.insert(&r.tag, &r.location) != Some(r.location.as_str()) {
                seen_moves += 1;
            }
        }
        assert_eq!(seen_moves, w.movements);
    }

    #[test]
    fn distinct_pairs_bounded_by_movements() {
        let w = generate(&TrackingConfig::default());
        // Revisits make pairs ≤ transitions; both exceed object count.
        assert!(w.distinct_pairs <= w.movements);
        assert!(w.distinct_pairs >= 20);
        let cfg = TrackingConfig::default();
        // With 8 locations and 200 readings at 10% moves, revisits are
        // near-certain: strictly fewer pairs than transitions.
        assert!(w.distinct_pairs < w.movements, "cfg {cfg:?}");
    }

    #[test]
    fn move_probability_scales_movements() {
        let lo = generate(&TrackingConfig {
            move_prob: 0.01,
            ..TrackingConfig::default()
        });
        let hi = generate(&TrackingConfig {
            move_prob: 0.5,
            ..TrackingConfig::default()
        });
        assert!(hi.movements > lo.movements * 5);
        assert_eq!(lo.readings.len(), hi.readings.len());
    }

    #[test]
    fn feed_is_time_ordered() {
        let w = generate(&TrackingConfig::default());
        assert!(w.readings.windows(2).all(|p| p[0].ts <= p[1].ts));
    }

    #[test]
    fn deterministic() {
        let cfg = TrackingConfig::default();
        assert_eq!(generate(&cfg).readings, generate(&cfg).readings);
    }
}
