//! Scenario workload generators — one per experiment of the paper's
//! worked examples, each with explicit ground truth so the experiments
//! can score precision/recall, not just throughput.
//!
//! | Module | Paper source | Shape |
//! |---|---|---|
//! | [`dedup`] | Example 1 | duplicate-heavy raw readings |
//! | [`tracking`] | Example 2 | tag movement across locations |
//! | [`vitals`] | §2.1 | RFID-associated sensor streams (blood pressure) |
//! | [`epc_population`] | Example 3 | EPC populations for pattern aggregation |
//! | [`packing`] | Fig. 1, Examples 4/7 | product bursts then a packing case |
//! | [`qc_line`] | Example 6 | four-checkpoint quality-control line |
//! | [`clinic`] | Example 5 | A→B→C workflows with injected violations |
//! | [`door`] | Example 8 | door exits with authorized/theft truth |
//!
//! All generators are deterministic in their seed.

pub mod clinic;
pub mod dedup;
pub mod door;
pub mod epc_population;
pub mod packing;
pub mod qc_line;
pub mod tracking;
pub mod vitals;
