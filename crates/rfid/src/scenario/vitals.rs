//! §2.1 sensor workload: patient vital signs associated with RFID
//! identification.
//!
//! "We may need to ... monitor the max/min blood pressure of a patient
//! throughout the day. (The blood pressure itself is not RFID data, but
//! it can be sensor data that are associated with the RFID
//! identifications.)" — the generator produces per-patient blood-pressure
//! streams with injected hypertensive episodes as ground truth.

use eslev_dsms::time::{Duration, Timestamp};
use eslev_dsms::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sensor reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitalsReading {
    /// Patient's wristband tag.
    pub patient: String,
    /// Systolic blood pressure (mmHg).
    pub bp: i64,
    /// Measurement time.
    pub ts: Timestamp,
}

impl VitalsReading {
    /// Row for a `vitals(patient VARCHAR, bp INT, t TIMESTAMP)` stream.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::str(&self.patient),
            Value::Int(self.bp),
            Value::Ts(self.ts),
        ]
    }
}

/// A ground-truth hypertensive episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// Which patient.
    pub patient: String,
    /// First reading above the threshold.
    pub start: Timestamp,
    /// Readings in the episode.
    pub readings: usize,
    /// Peak pressure reached.
    pub peak: i64,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct VitalsConfig {
    /// Number of patients.
    pub patients: usize,
    /// Readings per patient.
    pub readings_per_patient: usize,
    /// Gap between a patient's consecutive readings.
    pub period: Duration,
    /// Baseline systolic pressure range (uniform).
    pub baseline: (i64, i64),
    /// Episode threshold: readings ≥ this count as hypertensive.
    pub threshold: i64,
    /// Probability a reading starts an episode.
    pub episode_prob: f64,
    /// Episode length range (readings).
    pub episode_len: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for VitalsConfig {
    fn default() -> Self {
        VitalsConfig {
            patients: 5,
            readings_per_patient: 500,
            period: Duration::from_secs(60),
            baseline: (100, 135),
            threshold: 160,
            episode_prob: 0.01,
            episode_len: (3, 8),
            seed: 1,
        }
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct VitalsWorkload {
    /// Time-ordered readings across all patients.
    pub readings: Vec<VitalsReading>,
    /// Ground-truth episodes, in start order.
    pub episodes: Vec<Episode>,
}

/// Generate the workload.
pub fn generate(cfg: &VitalsConfig) -> VitalsWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut readings = Vec::new();
    let mut episodes = Vec::new();
    for p in 0..cfg.patients {
        let patient = format!("patient-{p}");
        // Stagger patients so the merged feed interleaves.
        let mut t = Timestamp::from_secs(1) + Duration::from_secs(7 * p as u64);
        let mut i = 0;
        while i < cfg.readings_per_patient {
            if rng.gen_bool(cfg.episode_prob) && i + cfg.episode_len.1 < cfg.readings_per_patient {
                // An episode: pressures above threshold, then recovery.
                let len = rng.gen_range(cfg.episode_len.0..=cfg.episode_len.1);
                let mut peak = 0;
                let start = t;
                for _ in 0..len {
                    let bp = rng.gen_range(cfg.threshold..cfg.threshold + 40);
                    peak = peak.max(bp);
                    readings.push(VitalsReading {
                        patient: patient.clone(),
                        bp,
                        ts: t,
                    });
                    t += cfg.period;
                    i += 1;
                }
                episodes.push(Episode {
                    patient: patient.clone(),
                    start,
                    readings: len,
                    peak,
                });
            } else {
                readings.push(VitalsReading {
                    patient: patient.clone(),
                    bp: rng.gen_range(cfg.baseline.0..=cfg.baseline.1),
                    ts: t,
                });
                t += cfg.period;
                i += 1;
            }
        }
    }
    readings.sort_by_key(|r| r.ts);
    episodes.sort_by_key(|e| e.start);
    VitalsWorkload { readings, episodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_are_exactly_the_above_threshold_runs() {
        let cfg = VitalsConfig::default();
        let w = generate(&cfg);
        // Recount per patient: consecutive ≥-threshold runs.
        let mut recount = 0;
        for p in 0..cfg.patients {
            let patient = format!("patient-{p}");
            let mut in_run = false;
            for r in w.readings.iter().filter(|r| r.patient == patient) {
                let high = r.bp >= cfg.threshold;
                if high && !in_run {
                    recount += 1;
                }
                in_run = high;
            }
        }
        assert_eq!(recount, w.episodes.len());
        assert!(!w.episodes.is_empty(), "default config produces episodes");
        // Baseline readings never cross the threshold.
        assert!(w
            .episodes
            .iter()
            .all(|e| e.peak >= cfg.threshold && e.readings >= cfg.episode_len.0));
    }

    #[test]
    fn feed_ordered_and_deterministic() {
        let cfg = VitalsConfig::default();
        let w = generate(&cfg);
        assert!(w.readings.windows(2).all(|p| p[0].ts <= p[1].ts));
        assert_eq!(w.readings, generate(&cfg).readings);
    }

    #[test]
    fn per_patient_counts() {
        let cfg = VitalsConfig {
            patients: 3,
            readings_per_patient: 100,
            ..VitalsConfig::default()
        };
        let w = generate(&cfg);
        for p in 0..3 {
            let patient = format!("patient-{p}");
            assert_eq!(
                w.readings.iter().filter(|r| r.patient == patient).count(),
                100
            );
        }
    }
}
