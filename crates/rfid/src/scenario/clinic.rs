//! Example 5 workload: the clinic-laboratory workflow.
//!
//! A staff member's wrist-band reader detects operations A → B → C on lab
//! equipment; each test must run the operations in order and finish
//! within a time limit. The generator emits a joint feed of operations
//! with injected violations — wrong order, wrong start, timeout — and the
//! per-test ground truth the EXCEPTION_SEQ experiment scores against.

use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of operations in the workflow (A, B, C).
pub const OPS: usize = 3;

/// What a generated test run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A → B → C within the limit.
    Normal,
    /// A correct prefix, then the wrong next operation (e.g. A then C).
    WrongOrder,
    /// The run begins with an operation other than A.
    WrongStart,
    /// A correct prefix that never completes within the limit.
    Timeout,
}

/// Ground truth for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTruth {
    /// The run's kind.
    pub kind: RunKind,
    /// Sequence Completion Level the run stalls at (equals [`OPS`] for
    /// normal runs).
    pub completion_level: usize,
    /// When the run's outcome is decidable (last arrival, or window
    /// expiry for timeouts).
    pub decidable_at: Timestamp,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ClinicConfig {
    /// Number of test runs.
    pub runs: usize,
    /// Workflow deadline (the paper's 1 hour).
    pub limit: Duration,
    /// Gap between operations inside a run: uniform within this range
    /// (kept well inside the limit for normal runs).
    pub op_gap: (Duration, Duration),
    /// Idle gap between runs (also how long past the limit a timeout run
    /// stays silent).
    pub inter_run_gap: Duration,
    /// Probability of each violation kind (rest are normal).
    pub wrong_order_prob: f64,
    /// Probability of a wrong-start run.
    pub wrong_start_prob: f64,
    /// Probability of a timeout run.
    pub timeout_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClinicConfig {
    fn default() -> Self {
        ClinicConfig {
            runs: 100,
            limit: Duration::from_hours(1),
            op_gap: (Duration::from_mins(2), Duration::from_mins(15)),
            inter_run_gap: Duration::from_hours(2),
            wrong_order_prob: 0.1,
            wrong_start_prob: 0.05,
            timeout_prob: 0.1,
            seed: 1,
        }
    }
}

/// Generated workload: a joint feed of `(port, reading)` pairs — port 0 =
/// operation A's equipment, 1 = B, 2 = C — plus per-run ground truth.
#[derive(Debug)]
pub struct ClinicWorkload {
    /// The joint feed, time-ordered.
    pub feed: Vec<(usize, Reading)>,
    /// Ground truth per run, in run order.
    pub truth: Vec<RunTruth>,
    /// Total violations (runs that are not Normal).
    pub violations: usize,
}

/// Generate the workload.
pub fn generate(cfg: &ClinicConfig) -> ClinicWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut feed = Vec::new();
    let mut truth = Vec::new();
    let mut t = Timestamp::from_secs(60);
    let equipment = ["equip-A", "equip-B", "equip-C"];
    let gap = {
        let lo = cfg.op_gap.0.as_micros();
        let hi = cfg.op_gap.1.as_micros().max(lo + 1);
        move |rng: &mut StdRng| Duration::from_micros(rng.gen_range(lo..hi))
    };
    for run in 0..cfg.runs {
        let staff = format!("staff-{}", run % 5);
        let roll: f64 = rng.gen();
        let kind = if roll < cfg.wrong_order_prob {
            RunKind::WrongOrder
        } else if roll < cfg.wrong_order_prob + cfg.wrong_start_prob {
            RunKind::WrongStart
        } else if roll < cfg.wrong_order_prob + cfg.wrong_start_prob + cfg.timeout_prob {
            RunKind::Timeout
        } else {
            RunKind::Normal
        };
        let push = |feed: &mut Vec<(usize, Reading)>, port: usize, ts: Timestamp| {
            feed.push((port, Reading::new(&staff, equipment[port], ts)));
        };
        let start = t;
        match kind {
            RunKind::Normal => {
                push(&mut feed, 0, t);
                for port in 1..OPS {
                    t += gap(&mut rng);
                    push(&mut feed, port, t);
                }
                truth.push(RunTruth {
                    kind,
                    completion_level: OPS,
                    decidable_at: t,
                });
            }
            RunKind::WrongOrder => {
                // Correct prefix of length 1 or 2, then a wrong op.
                let prefix = rng.gen_range(1..OPS);
                push(&mut feed, 0, t);
                for port in 1..prefix {
                    t += gap(&mut rng);
                    push(&mut feed, port, t);
                }
                t += gap(&mut rng);
                // The wrong operation: anything but the expected one and
                // not A (A would silently restart rather than violate).
                let wrong = if prefix == 1 { 2 } else { 1 };
                push(&mut feed, wrong, t);
                truth.push(RunTruth {
                    kind,
                    completion_level: prefix,
                    decidable_at: t,
                });
            }
            RunKind::WrongStart => {
                let port = rng.gen_range(1..OPS);
                push(&mut feed, port, t);
                truth.push(RunTruth {
                    kind,
                    completion_level: 0,
                    decidable_at: t,
                });
            }
            RunKind::Timeout => {
                let prefix = rng.gen_range(1..OPS);
                push(&mut feed, 0, t);
                for port in 1..prefix {
                    t += gap(&mut rng);
                    push(&mut feed, port, t);
                }
                // Nothing more until past the deadline.
                truth.push(RunTruth {
                    kind,
                    completion_level: prefix,
                    decidable_at: start + cfg.limit,
                });
            }
        }
        t = start + cfg.limit + cfg.inter_run_gap;
    }
    let violations = truth.iter().filter(|r| r.kind != RunKind::Normal).count();
    ClinicWorkload {
        feed,
        truth,
        violations,
    }
}

/// Generate `staff` independent, time-overlapping copies of the workload
/// merged into one feed — the realistic form of Example 5, where several
/// staff members run tests concurrently and the detector must keep them
/// apart by partitioning on the staff id (`A1.staff = A2.staff = ...`).
///
/// Each reading's `reader` field carries a unique staff id; per-staff
/// ground truth is concatenated (total violations = sum over staff).
pub fn generate_concurrent(cfg: &ClinicConfig, staff: usize) -> ClinicWorkload {
    let mut feed: Vec<(usize, Reading)> = Vec::new();
    let mut truth = Vec::new();
    let mut violations = 0;
    for s in 0..staff.max(1) {
        let sub = generate(&ClinicConfig {
            seed: cfg
                .seed
                .wrapping_add(s as u64)
                .wrapping_mul(0x9E3779B97F4A7C15 | 1),
            ..cfg.clone()
        });
        let offset = Duration::from_mins(7 * s as u64); // interleave staff
        for (port, r) in sub.feed {
            feed.push((
                port,
                Reading::new(format!("staff-{s}"), r.tag, r.ts + offset),
            ));
        }
        truth.extend(sub.truth);
        violations += sub.violations;
    }
    feed.sort_by_key(|(_, r)| r.ts);
    ClinicWorkload {
        feed,
        truth,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_adds_up() {
        let w = generate(&ClinicConfig::default());
        assert_eq!(w.truth.len(), 100);
        let normals = w.truth.iter().filter(|r| r.kind == RunKind::Normal).count();
        assert_eq!(normals + w.violations, 100);
        assert!(
            w.violations >= 10,
            "expected ~25 violations, got {}",
            w.violations
        );
    }

    #[test]
    fn all_violations_when_forced() {
        let w = generate(&ClinicConfig {
            wrong_order_prob: 1.0,
            wrong_start_prob: 0.0,
            timeout_prob: 0.0,
            runs: 20,
            ..ClinicConfig::default()
        });
        assert!(w.truth.iter().all(|r| r.kind == RunKind::WrongOrder));
        assert!(w
            .truth
            .iter()
            .all(|r| r.completion_level >= 1 && r.completion_level < OPS));
    }

    #[test]
    fn normal_runs_fit_the_limit() {
        let cfg = ClinicConfig::default();
        let w = generate(&cfg);
        // Max normal span = 2 × 15 min < 1 h.
        for (i, r) in w.truth.iter().enumerate() {
            if r.kind == RunKind::Normal {
                assert_eq!(r.completion_level, OPS, "run {i}");
            }
        }
    }

    #[test]
    fn feed_is_time_ordered_and_runs_dont_overlap() {
        let w = generate(&ClinicConfig::default());
        assert!(w.feed.windows(2).all(|p| p[0].1.ts <= p[1].1.ts));
    }

    #[test]
    fn timeout_runs_have_late_decision() {
        let cfg = ClinicConfig {
            timeout_prob: 1.0,
            wrong_order_prob: 0.0,
            wrong_start_prob: 0.0,
            runs: 5,
            ..ClinicConfig::default()
        };
        let w = generate(&cfg);
        for r in &w.truth {
            assert_eq!(r.kind, RunKind::Timeout);
            // Decidable exactly at window expiry.
            assert!(r.decidable_at >= Timestamp::from_secs(60) + cfg.limit);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = ClinicConfig::default();
        assert_eq!(generate(&cfg).feed, generate(&cfg).feed);
    }

    #[test]
    fn concurrent_staff_interleave() {
        let cfg = ClinicConfig {
            runs: 20,
            ..ClinicConfig::default()
        };
        let w = generate_concurrent(&cfg, 4);
        assert_eq!(w.truth.len(), 80);
        // Globally time-ordered...
        assert!(w.feed.windows(2).all(|p| p[0].1.ts <= p[1].1.ts));
        // ...with at least one point where staff feeds actually overlap
        // (adjacent readings from different staff).
        assert!(w.feed.windows(2).any(|p| p[0].1.reader != p[1].1.reader));
        // Violations sum over staff.
        let per_staff = generate(&ClinicConfig {
            seed: cfg.seed.wrapping_mul(0x9E3779B97F4A7C15 | 1),
            ..cfg.clone()
        });
        assert!(w.violations >= per_staff.violations);
    }
}
