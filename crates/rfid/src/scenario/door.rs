//! Example 8 workload: door security (theft detection).
//!
//! A door reader sees items and people leave. An item exit is legitimate
//! when some person is detected within ±τ of it; otherwise it is a
//! potential theft and must raise an alert. The generator emits the
//! single `tag_readings(tagid, tagtype, tagtime)` feed and the exact set
//! of theft items.

use eslev_dsms::time::{Duration, Timestamp};
use eslev_dsms::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One reading of the `tag_readings(tagid, tagtype, tagtime)` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoorReading {
    /// Tag id.
    pub tag: String,
    /// `"person"` or `"item"`.
    pub tagtype: &'static str,
    /// Observation time.
    pub ts: Timestamp,
}

impl DoorReading {
    /// Row for the `tag_readings` schema.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::str(&self.tag),
            Value::str(self.tagtype),
            Value::Ts(self.ts),
        ]
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DoorConfig {
    /// Number of item exits.
    pub item_exits: usize,
    /// The ±τ window (the paper's 1 minute).
    pub tau: Duration,
    /// Fraction of item exits that are thefts (no person within ±τ).
    pub theft_fraction: f64,
    /// Gap between exit events (must exceed 2τ so events are separable).
    pub event_gap: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DoorConfig {
    fn default() -> Self {
        DoorConfig {
            item_exits: 200,
            tau: Duration::from_mins(1),
            theft_fraction: 0.1,
            event_gap: Duration::from_mins(5),
            seed: 1,
        }
    }
}

/// Generated workload.
#[derive(Debug)]
pub struct DoorWorkload {
    /// The merged feed, time-ordered.
    pub readings: Vec<DoorReading>,
    /// Item tags that are thefts (no person within ±τ).
    pub thefts: Vec<String>,
}

/// Generate the workload. Legitimate exits place a person uniformly
/// within ±τ (before or after) of the item; thefts guarantee no person
/// within ±τ.
pub fn generate(cfg: &DoorConfig) -> DoorWorkload {
    assert!(
        cfg.event_gap > cfg.tau + cfg.tau,
        "event gap must exceed 2τ so exits are separable"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut readings = Vec::new();
    let mut thefts = Vec::new();
    let mut t = Timestamp::from_secs(1) + cfg.event_gap;
    for i in 0..cfg.item_exits {
        let item_tag = format!("item-{i}");
        let is_theft = rng.gen_bool(cfg.theft_fraction);
        readings.push(DoorReading {
            tag: item_tag.clone(),
            tagtype: "item",
            ts: t,
        });
        if is_theft {
            thefts.push(item_tag);
        } else {
            // Person within ±τ (never exactly on the boundary).
            let tau = cfg.tau.as_micros();
            let offset = rng.gen_range(1..tau) as i64 * if rng.gen_bool(0.5) { 1 } else { -1 };
            let pts = if offset >= 0 {
                t + Duration::from_micros(offset as u64)
            } else {
                t - Duration::from_micros((-offset) as u64)
            };
            readings.push(DoorReading {
                tag: format!("person-{i}"),
                tagtype: "person",
                ts: pts,
            });
        }
        t += cfg.event_gap;
    }
    readings.sort_by_key(|r| r.ts);
    DoorWorkload { readings, thefts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recompute_thefts(cfg: &DoorConfig, w: &DoorWorkload) -> Vec<String> {
        let persons: Vec<Timestamp> = w
            .readings
            .iter()
            .filter(|r| r.tagtype == "person")
            .map(|r| r.ts)
            .collect();
        w.readings
            .iter()
            .filter(|r| r.tagtype == "item")
            .filter(|item| {
                !persons
                    .iter()
                    .any(|p| *p >= item.ts.saturating_sub(cfg.tau) && *p <= item.ts + cfg.tau)
            })
            .map(|r| r.tag.clone())
            .collect()
    }

    #[test]
    fn truth_matches_window_definition() {
        let cfg = DoorConfig::default();
        let w = generate(&cfg);
        assert_eq!(recompute_thefts(&cfg, &w), w.thefts);
        assert!(!w.thefts.is_empty());
        assert!(w.thefts.len() < 50);
    }

    #[test]
    fn all_theft_and_no_theft() {
        let all = generate(&DoorConfig {
            theft_fraction: 1.0,
            item_exits: 30,
            ..DoorConfig::default()
        });
        assert_eq!(all.thefts.len(), 30);
        let none = generate(&DoorConfig {
            theft_fraction: 0.0,
            item_exits: 30,
            ..DoorConfig::default()
        });
        assert!(none.thefts.is_empty());
    }

    #[test]
    #[should_panic(expected = "event gap must exceed")]
    fn rejects_ambiguous_spacing() {
        generate(&DoorConfig {
            event_gap: Duration::from_secs(90),
            ..DoorConfig::default()
        });
    }

    #[test]
    fn feed_time_ordered_and_deterministic() {
        let cfg = DoorConfig::default();
        let w = generate(&cfg);
        assert!(w.readings.windows(2).all(|p| p[0].ts <= p[1].ts));
        assert_eq!(w.readings, generate(&cfg).readings);
    }
}
