//! # eslev-rfid — the RFID substrate
//!
//! Everything the paper's experiments need from the physical world,
//! simulated deterministically: EPC identifiers and ALE patterns
//! (`20.*.[5000-9999]`), noisy readers (duplicates, misses, jitter), and
//! one seeded workload generator per paper scenario — each with explicit
//! ground truth so experiments measure correctness, not just speed.
//!
//! The paper used live RFID deployments; the generators replace them with
//! synthetic feeds whose *statistical shape* (burst gaps, duplication,
//! interleaving, violation mixes) is what the queries actually consume —
//! see DESIGN.md §2 for the substitution argument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disorder;
pub mod epc;
pub mod epc_pattern;
pub mod reader;
pub mod reading;
pub mod replay;
pub mod scenario;

/// One-stop imports for the RFID substrate.
pub mod prelude {
    pub use crate::disorder::{delay_for, observed_disorder, perturb, perturb_rows};
    pub use crate::epc::{register_epc_udfs, Epc};
    pub use crate::epc_pattern::{register_epc_match_udf, EpcPattern, FieldPattern};
    pub use crate::reader::{ReaderProfile, SimReader};
    pub use crate::reading::{merge_feeds, FeedItem, Reading};
    pub use crate::replay::{replay, ReplayOptions, ReplayStats};
}
