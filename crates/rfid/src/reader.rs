//! Simulated RFID reader.
//!
//! Physical readers are noisy: they re-read tags that linger in the RF
//! field (duplicates — the reason Example 1 exists), miss reads entirely,
//! and timestamp with jitter. [`SimReader`] models those three effects
//! with a seeded RNG so every experiment is reproducible.

use crate::reading::Reading;
use eslev_dsms::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise profile of a simulated reader.
#[derive(Debug, Clone, Copy)]
pub struct ReaderProfile {
    /// Probability that a physical presence produces an extra (duplicate)
    /// read; applied repeatedly, so duplicates chain geometrically.
    pub duplicate_prob: f64,
    /// Probability a physical presence is missed entirely.
    pub miss_prob: f64,
    /// Gap between chained duplicate reads.
    pub reread_period: Duration,
    /// Max absolute timestamp jitter applied to each read.
    pub jitter: Duration,
}

impl Default for ReaderProfile {
    fn default() -> Self {
        ReaderProfile {
            duplicate_prob: 0.3,
            miss_prob: 0.02,
            reread_period: Duration::from_millis(200),
            jitter: Duration::from_millis(20),
        }
    }
}

impl ReaderProfile {
    /// A noiseless profile (exactly one read per presence, no jitter).
    pub fn ideal() -> ReaderProfile {
        ReaderProfile {
            duplicate_prob: 0.0,
            miss_prob: 0.0,
            reread_period: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }
}

/// A deterministic simulated reader.
pub struct SimReader {
    /// Reader identifier reported in readings.
    pub id: String,
    profile: ReaderProfile,
    rng: StdRng,
}

impl SimReader {
    /// Build a reader with its own RNG stream derived from `seed`.
    pub fn new(id: impl Into<String>, profile: ReaderProfile, seed: u64) -> SimReader {
        let id = id.into();
        // Mix the id into the seed so same-seed readers differ.
        let mix = id.bytes().fold(seed, |acc, b| {
            acc.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
        });
        SimReader {
            id,
            profile,
            rng: StdRng::seed_from_u64(mix),
        }
    }

    fn jittered(&mut self, ts: Timestamp) -> Timestamp {
        let j = self.profile.jitter.as_micros();
        if j == 0 {
            return ts;
        }
        let offset = self.rng.gen_range(0..=2 * j) as i64 - j as i64;
        if offset >= 0 {
            ts.saturating_add(Duration::from_micros(offset as u64))
        } else {
            ts.saturating_sub(Duration::from_micros((-offset) as u64))
        }
    }

    /// Observe a tag physically present at `ts`: zero (missed) or more
    /// (duplicated) readings, in time order.
    pub fn observe(&mut self, tag: &str, ts: Timestamp) -> Vec<Reading> {
        if self.rng.gen_bool(self.profile.miss_prob) {
            return Vec::new();
        }
        let first = self.jittered(ts);
        let mut reads = vec![Reading::new(&self.id, tag, first)];
        let mut t = ts;
        while self.rng.gen_bool(self.profile.duplicate_prob) {
            t = t.saturating_add(self.profile.reread_period);
            let jt = self.jittered(t);
            reads.push(Reading::new(&self.id, tag, jt));
        }
        reads.sort_by_key(|r| r.ts);
        reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_reader_is_exact() {
        let mut r = SimReader::new("r1", ReaderProfile::ideal(), 42);
        let reads = r.observe("tag", Timestamp::from_secs(5));
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].ts, Timestamp::from_secs(5));
        assert_eq!(reads[0].reader, "r1");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut r = SimReader::new("r1", ReaderProfile::default(), 7);
            (0..100)
                .flat_map(|i| r.observe("t", Timestamp::from_secs(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_seed_different_ids_diverge() {
        let collect = |id: &str| {
            let mut r = SimReader::new(
                id,
                ReaderProfile {
                    duplicate_prob: 0.5,
                    ..ReaderProfile::default()
                },
                7,
            );
            (0..50)
                .map(|i| r.observe("t", Timestamp::from_secs(i)).len())
                .collect::<Vec<_>>()
        };
        assert_ne!(collect("a"), collect("b"));
    }

    #[test]
    fn duplicate_rate_tracks_probability() {
        let mut r = SimReader::new(
            "r1",
            ReaderProfile {
                duplicate_prob: 0.5,
                miss_prob: 0.0,
                reread_period: Duration::from_millis(100),
                jitter: Duration::ZERO,
            },
            1,
        );
        let total: usize = (0..2000)
            .map(|i| r.observe("t", Timestamp::from_secs(i)).len())
            .sum();
        // Geometric with p=0.5 → mean 2 reads per presence.
        let mean = total as f64 / 2000.0;
        assert!((1.8..=2.2).contains(&mean), "mean reads {mean}");
    }

    #[test]
    fn miss_rate_tracks_probability() {
        let mut r = SimReader::new(
            "r1",
            ReaderProfile {
                duplicate_prob: 0.0,
                miss_prob: 0.2,
                reread_period: Duration::ZERO,
                jitter: Duration::ZERO,
            },
            1,
        );
        let missed = (0..2000)
            .filter(|i| r.observe("t", Timestamp::from_secs(*i)).is_empty())
            .count();
        let rate = missed as f64 / 2000.0;
        assert!((0.15..=0.25).contains(&rate), "miss rate {rate}");
    }

    #[test]
    fn reads_are_time_ordered() {
        let mut r = SimReader::new(
            "r1",
            ReaderProfile {
                duplicate_prob: 0.7,
                miss_prob: 0.0,
                reread_period: Duration::from_millis(50),
                jitter: Duration::from_millis(40),
            },
            3,
        );
        for i in 0..200 {
            let reads = r.observe("t", Timestamp::from_secs(i));
            assert!(reads.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }
}
