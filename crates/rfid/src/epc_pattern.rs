//! ALE-style EPC patterns — `20.*.[5000-9999]`.
//!
//! The ALE standard (and Example 3 of the paper) filters and aggregates
//! readings by EPC patterns: each dotted field is an exact number, a `*`
//! wildcard, or an inclusive `[lo-hi]` range. The paper implements this
//! with `LIKE` plus the `extract_serial` UDF; we provide both that path
//! (see `register_epc_udfs`) and a compiled matcher — experiment E3
//! compares them.

use crate::epc::Epc;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::FunctionRegistry;
use eslev_dsms::value::Value;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// One field of an EPC pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldPattern {
    /// Exact value.
    Exact(u64),
    /// `*` — any value.
    Any,
    /// `[lo-hi]` — inclusive range.
    Range(u64, u64),
}

impl FieldPattern {
    fn matches(&self, v: u64) -> bool {
        match self {
            FieldPattern::Exact(x) => v == *x,
            FieldPattern::Any => true,
            FieldPattern::Range(lo, hi) => (*lo..=*hi).contains(&v),
        }
    }
}

impl fmt::Display for FieldPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldPattern::Exact(x) => write!(f, "{x}"),
            FieldPattern::Any => write!(f, "*"),
            FieldPattern::Range(lo, hi) => write!(f, "[{lo}-{hi}]"),
        }
    }
}

/// A compiled three-field EPC pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcPattern {
    /// Company field.
    pub company: FieldPattern,
    /// Product field.
    pub product: FieldPattern,
    /// Serial field.
    pub serial: FieldPattern,
}

impl EpcPattern {
    /// Whether a parsed EPC matches.
    pub fn matches(&self, e: &Epc) -> bool {
        self.company.matches(e.company as u64)
            && self.product.matches(e.product as u64)
            && self.serial.matches(e.serial)
    }

    /// Whether a dotted EPC string matches (non-EPC strings never match).
    pub fn matches_str(&self, s: &str) -> bool {
        s.parse::<Epc>().map(|e| self.matches(&e)).unwrap_or(false)
    }
}

impl fmt::Display for EpcPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.company, self.product, self.serial)
    }
}

fn parse_field(s: &str, whole: &str) -> Result<FieldPattern> {
    if s == "*" {
        return Ok(FieldPattern::Any);
    }
    if let Some(body) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let (lo, hi) = body.split_once('-').ok_or_else(|| {
            DsmsError::parse(format!("range `{s}` in pattern `{whole}` needs lo-hi"))
        })?;
        let lo: u64 = lo
            .trim()
            .parse()
            .map_err(|_| DsmsError::parse(format!("bad range start in `{whole}`")))?;
        let hi: u64 = hi
            .trim()
            .parse()
            .map_err(|_| DsmsError::parse(format!("bad range end in `{whole}`")))?;
        if lo > hi {
            return Err(DsmsError::parse(format!(
                "empty range [{lo}-{hi}] in `{whole}`"
            )));
        }
        return Ok(FieldPattern::Range(lo, hi));
    }
    s.parse()
        .map(FieldPattern::Exact)
        .map_err(|_| DsmsError::parse(format!("bad field `{s}` in pattern `{whole}`")))
}

impl FromStr for EpcPattern {
    type Err = DsmsError;

    fn from_str(s: &str) -> Result<EpcPattern> {
        let fields: Vec<&str> = s.split('.').collect();
        if fields.len() != 3 {
            return Err(DsmsError::parse(format!(
                "EPC pattern `{s}` must have three dot-separated fields"
            )));
        }
        Ok(EpcPattern {
            company: parse_field(fields[0], s)?,
            product: parse_field(fields[1], s)?,
            serial: parse_field(fields[2], s)?,
        })
    }
}

/// Register `epc_match(pattern, epc) -> BOOLEAN` so queries can use
/// compiled patterns directly (the fast path of experiment E3). The
/// pattern argument is parsed per call when dynamic; the planner folds
/// constant patterns at plan time via [`EpcPattern::from_str`].
pub fn register_epc_match_udf(reg: &mut FunctionRegistry) {
    reg.register(
        "epc_match",
        Arc::new(|args: &[Value]| {
            let (pat, epc) = match args {
                [Value::Str(p), Value::Str(e)] => (p, e),
                _ => {
                    return Err(DsmsError::eval(
                        "epc_match expects (pattern VARCHAR, epc VARCHAR)",
                    ))
                }
            };
            let pat: EpcPattern = pat.parse()?;
            Ok(Value::Bool(pat.matches_str(epc)))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_pattern() {
        // 20.*.[5000-9999] from the ALE example in §1 and Example 3.
        let p: EpcPattern = "20.*.[5000-9999]".parse().unwrap();
        assert_eq!(p.company, FieldPattern::Exact(20));
        assert_eq!(p.product, FieldPattern::Any);
        assert_eq!(p.serial, FieldPattern::Range(5000, 9999));
        assert_eq!(p.to_string(), "20.*.[5000-9999]");
    }

    #[test]
    fn matching_semantics() {
        let p: EpcPattern = "20.*.[5000-9999]".parse().unwrap();
        assert!(p.matches_str("20.17.5000"));
        assert!(p.matches_str("20.1.9999"));
        assert!(p.matches_str("20.999.7500"));
        assert!(!p.matches_str("21.17.7500")); // wrong company
        assert!(!p.matches_str("20.17.4999")); // below range
        assert!(!p.matches_str("20.17.10000")); // above range
        assert!(!p.matches_str("garbage"));
    }

    #[test]
    fn exact_and_any_fields() {
        let p: EpcPattern = "*.*.*".parse().unwrap();
        assert!(p.matches_str("1.2.3"));
        let p: EpcPattern = "1.2.3".parse().unwrap();
        assert!(p.matches_str("1.2.3"));
        assert!(!p.matches_str("1.2.4"));
    }

    #[test]
    fn parse_errors() {
        assert!("20.*".parse::<EpcPattern>().is_err());
        assert!("20.*.[9999-5000]".parse::<EpcPattern>().is_err());
        assert!("20.*.[x-y]".parse::<EpcPattern>().is_err());
        assert!("20.*.[5000]".parse::<EpcPattern>().is_err());
        assert!("20.foo.3".parse::<EpcPattern>().is_err());
    }

    #[test]
    fn range_bounds_inclusive() {
        let p: EpcPattern = "*.*.[10-10]".parse().unwrap();
        assert!(p.matches_str("1.1.10"));
        assert!(!p.matches_str("1.1.9"));
        assert!(!p.matches_str("1.1.11"));
    }

    #[test]
    fn udf_matches() {
        let mut reg = FunctionRegistry::new();
        register_epc_match_udf(&mut reg);
        let f = reg.get("epc_match").unwrap();
        assert_eq!(
            f(&[Value::str("20.*.[5000-9999]"), Value::str("20.3.6000")]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            f(&[Value::str("20.*.[5000-9999]"), Value::str("9.3.6000")]).unwrap(),
            Value::Bool(false)
        );
        assert!(f(&[Value::Int(1), Value::Int(2)]).is_err());
    }
}
