//! Electronic Product Code identifiers.
//!
//! The paper (Example 3) uses dotted EPCs of the form
//! `company.productcode.serialnumber` — e.g. `20.17.5001` — and a UDF
//! `extract_serial` that pulls the serial out as an integer. This module
//! provides the codec, a compact binary encoding (for wire/storage
//! simulations), and the UDF registrations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::FunctionRegistry;
use eslev_dsms::value::Value;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A parsed EPC: `company.product.serial`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Epc {
    /// Company (EPC manager) number.
    pub company: u32,
    /// Product (object-class) code.
    pub product: u32,
    /// Serial number.
    pub serial: u64,
}

impl Epc {
    /// Construct from parts.
    pub fn new(company: u32, product: u32, serial: u64) -> Epc {
        Epc {
            company,
            product,
            serial,
        }
    }

    /// Compact binary encoding (4 + 4 + 8 bytes, big-endian) — the shape
    /// a reader's wire protocol would carry.
    pub fn to_bytes(self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(self.company);
        b.put_u32(self.product);
        b.put_u64(self.serial);
        b.freeze()
    }

    /// Decode the binary encoding.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Epc> {
        if bytes.len() != 16 {
            return Err(DsmsError::tuple(format!(
                "EPC binary encoding is 16 bytes, got {}",
                bytes.len()
            )));
        }
        Ok(Epc {
            company: bytes.get_u32(),
            product: bytes.get_u32(),
            serial: bytes.get_u64(),
        })
    }
}

impl fmt::Display for Epc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.company, self.product, self.serial)
    }
}

impl FromStr for Epc {
    type Err = DsmsError;

    fn from_str(s: &str) -> Result<Epc> {
        let mut it = s.split('.');
        let (c, p, n) = (it.next(), it.next(), it.next());
        if it.next().is_some() {
            return Err(DsmsError::tuple(format!("EPC `{s}` has too many fields")));
        }
        match (c, p, n) {
            (Some(c), Some(p), Some(n)) => Ok(Epc {
                company: c
                    .parse()
                    .map_err(|_| DsmsError::tuple(format!("bad company in EPC `{s}`")))?,
                product: p
                    .parse()
                    .map_err(|_| DsmsError::tuple(format!("bad product in EPC `{s}`")))?,
                serial: n
                    .parse()
                    .map_err(|_| DsmsError::tuple(format!("bad serial in EPC `{s}`")))?,
            }),
            _ => Err(DsmsError::tuple(format!(
                "EPC `{s}` must be company.product.serial"
            ))),
        }
    }
}

/// Register the paper's EPC UDFs into a function registry:
///
/// * `extract_serial(epc) -> INT` (Example 3),
/// * `extract_company(epc) -> INT`,
/// * `extract_product(epc) -> INT`.
pub fn register_epc_udfs(reg: &mut FunctionRegistry) {
    fn part(args: &[Value], pick: impl Fn(&Epc) -> i64, name: &str) -> Result<Value> {
        let s = args
            .first()
            .and_then(|v| v.as_str())
            .ok_or_else(|| DsmsError::eval(format!("{name} expects one string argument")))?;
        let epc: Epc = s.parse()?;
        Ok(Value::Int(pick(&epc)))
    }
    reg.register(
        "extract_serial",
        Arc::new(|args| part(args, |e| e.serial as i64, "extract_serial")),
    );
    reg.register(
        "extract_company",
        Arc::new(|args| part(args, |e| e.company as i64, "extract_company")),
    );
    reg.register(
        "extract_product",
        Arc::new(|args| part(args, |e| e.product as i64, "extract_product")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_format_round_trip() {
        let e: Epc = "20.17.5001".parse().unwrap();
        assert_eq!(e, Epc::new(20, 17, 5001));
        assert_eq!(e.to_string(), "20.17.5001");
    }

    #[test]
    fn parse_errors() {
        assert!("20.17".parse::<Epc>().is_err());
        assert!("20.17.1.2".parse::<Epc>().is_err());
        assert!("x.17.1".parse::<Epc>().is_err());
        assert!("20.y.1".parse::<Epc>().is_err());
        assert!("20.17.z".parse::<Epc>().is_err());
        assert!("".parse::<Epc>().is_err());
    }

    #[test]
    fn binary_round_trip() {
        let e = Epc::new(u32::MAX, 0, u64::MAX);
        let b = e.to_bytes();
        assert_eq!(b.len(), 16);
        assert_eq!(Epc::from_bytes(b).unwrap(), e);
        assert!(Epc::from_bytes(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn udfs_extract_parts() {
        let mut reg = FunctionRegistry::new();
        register_epc_udfs(&mut reg);
        let f = reg.get("extract_serial").unwrap();
        assert_eq!(f(&[Value::str("20.17.5001")]).unwrap(), Value::Int(5001));
        let f = reg.get("extract_company").unwrap();
        assert_eq!(f(&[Value::str("20.17.5001")]).unwrap(), Value::Int(20));
        let f = reg.get("extract_product").unwrap();
        assert_eq!(f(&[Value::str("20.17.5001")]).unwrap(), Value::Int(17));
        // Errors surface cleanly.
        let f = reg.get("extract_serial").unwrap();
        assert!(f(&[Value::Int(3)]).is_err());
        assert!(f(&[Value::str("oops")]).is_err());
    }
}
