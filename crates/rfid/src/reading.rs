//! The common RFID observation record and feed helpers.
//!
//! Every scenario generator produces [`Reading`]s — the paper's primitive
//! event: `(reader EPC, tag id, observation timestamp)` — optionally with
//! extra columns (tag type, location). Helpers convert readings to engine
//! rows and merge per-reader feeds into one globally time-ordered feed,
//! which is what a real RFID middleware layer hands the DSMS.

use eslev_dsms::time::Timestamp;
use eslev_dsms::value::Value;
use serde::{Deserialize, Serialize};

/// One tag observation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reading {
    /// Observing reader's identifier.
    pub reader: String,
    /// Observed tag id (dotted EPC or symbolic).
    pub tag: String,
    /// Observation time.
    pub ts: Timestamp,
}

impl Reading {
    /// Construct a reading.
    pub fn new(reader: impl Into<String>, tag: impl Into<String>, ts: Timestamp) -> Reading {
        Reading {
            reader: reader.into(),
            tag: tag.into(),
            ts,
        }
    }

    /// Row for the canonical `readings(reader_id, tag_id, read_time)`
    /// stream schema.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::str(&self.reader),
            Value::str(&self.tag),
            Value::Ts(self.ts),
        ]
    }
}

/// A reading destined for a named stream — the unit the workload
/// replayers feed the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedItem {
    /// Target stream name.
    pub stream: String,
    /// The observation.
    pub reading: Reading,
}

/// Merge several streams' readings into one globally time-ordered feed,
/// breaking timestamp ties by `(stream, position)` so replays are
/// deterministic.
pub fn merge_feeds(feeds: Vec<(String, Vec<Reading>)>) -> Vec<FeedItem> {
    let mut items: Vec<(usize, usize, FeedItem)> = Vec::new();
    for (fi, (stream, readings)) in feeds.into_iter().enumerate() {
        for (ri, reading) in readings.into_iter().enumerate() {
            items.push((
                fi,
                ri,
                FeedItem {
                    stream: stream.clone(),
                    reading,
                },
            ));
        }
    }
    items.sort_by_key(|(fi, ri, item)| (item.reading.ts, *fi, *ri));
    items.into_iter().map(|(_, _, item)| item).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_values_shape() {
        let r = Reading::new("r1", "20.1.5", Timestamp::from_secs(3));
        let v = r.to_values();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], Value::str("20.1.5"));
        assert_eq!(v[2], Value::Ts(Timestamp::from_secs(3)));
    }

    #[test]
    fn merge_is_time_ordered_and_deterministic() {
        let a = vec![
            Reading::new("r1", "t1", Timestamp::from_secs(1)),
            Reading::new("r1", "t2", Timestamp::from_secs(5)),
        ];
        let b = vec![
            Reading::new("r2", "u1", Timestamp::from_secs(2)),
            Reading::new("r2", "u2", Timestamp::from_secs(5)),
        ];
        let merged = merge_feeds(vec![("s1".into(), a), ("s2".into(), b)]);
        let tags: Vec<&str> = merged.iter().map(|i| i.reading.tag.as_str()).collect();
        // Tie at t=5 broken by feed order: s1 before s2.
        assert_eq!(tags, vec!["t1", "u1", "t2", "u2"]);
        assert_eq!(merged[1].stream, "s2");
    }
}
