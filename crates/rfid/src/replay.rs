//! Workload replay: feed a merged reading feed into an engine with
//! heartbeat punctuations — the simulation-side equivalent of the ESL
//! system timer that drives *active expiration*.
//!
//! Every example and experiment does the same three things: push the
//! feed in time order, punctuate periodically so window expiry fires
//! during silent stretches, and punctuate once past the end so trailing
//! windows close. [`replay`] packages that.

use crate::reading::FeedItem;
use eslev_dsms::engine::Engine;
use eslev_dsms::error::Result;
use eslev_dsms::time::{Duration, Timestamp};

/// Replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Inject `advance_to` punctuations at this simulated interval even
    /// when no readings arrive (`None` = rely on per-tuple watermarks).
    pub heartbeat: Option<Duration>,
    /// After the last reading, advance this far past it so trailing
    /// windows and deadlines resolve (`None` = stop at the last reading).
    pub drain_horizon: Option<Duration>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            heartbeat: Some(Duration::from_secs(1)),
            drain_horizon: Some(Duration::from_hours(2)),
        }
    }
}

/// Replay statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayStats {
    /// Tuples pushed.
    pub pushed: usize,
    /// Explicit punctuations injected.
    pub punctuations: usize,
    /// Event time of the last reading.
    pub last_ts: Timestamp,
}

/// Push `items` (already time-ordered) into `engine` per the options.
pub fn replay(
    engine: &mut Engine,
    items: &[FeedItem],
    opts: &ReplayOptions,
) -> Result<ReplayStats> {
    let mut punctuations = 0;
    let mut next_beat = opts
        .heartbeat
        .map(|hb| items.first().map(|i| i.reading.ts + hb));
    let mut last_ts = Timestamp::ZERO;
    for item in items {
        if let Some(Some(beat)) = next_beat.as_mut() {
            let hb = opts.heartbeat.expect("beat implies heartbeat");
            while *beat < item.reading.ts {
                engine.advance_to(*beat)?;
                punctuations += 1;
                *beat += hb;
            }
        }
        engine.push(&item.stream, item.reading.to_values())?;
        last_ts = item.reading.ts;
    }
    if let Some(h) = opts.drain_horizon {
        engine.advance_to(last_ts + h)?;
        punctuations += 1;
    }
    Ok(ReplayStats {
        pushed: items.len(),
        punctuations,
        last_ts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::{merge_feeds, Reading};
    use eslev_dsms::prelude::*;

    fn feed() -> Vec<FeedItem> {
        merge_feeds(vec![(
            "readings".to_string(),
            (0..5u64)
                .map(|i| Reading::new("r", format!("t{i}"), Timestamp::from_secs(i * 10)))
                .collect(),
        )])
    }

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.create_stream(Schema::readings("readings")).unwrap();
        e
    }

    #[test]
    fn pushes_everything_and_drains() {
        let mut e = engine();
        let stats = replay(&mut e, &feed(), &ReplayOptions::default()).unwrap();
        assert_eq!(stats.pushed, 5);
        assert_eq!(stats.last_ts, Timestamp::from_secs(40));
        assert_eq!(e.stream_pushed("readings").unwrap(), 5);
        // Drained 2 h past the end.
        assert_eq!(e.now(), Timestamp::from_secs(40) + Duration::from_hours(2));
    }

    #[test]
    fn heartbeats_fill_silent_gaps() {
        let mut e = engine();
        let stats = replay(
            &mut e,
            &feed(),
            &ReplayOptions {
                heartbeat: Some(Duration::from_secs(1)),
                drain_horizon: None,
            },
        )
        .unwrap();
        // Four 10 s gaps → ~9 beats each (the beat landing on the next
        // reading's timestamp is subsumed by its watermark).
        assert!(stats.punctuations >= 36, "beats {}", stats.punctuations);
        assert_eq!(e.now(), Timestamp::from_secs(40));
    }

    #[test]
    fn no_heartbeat_no_extra_punctuation() {
        let mut e = engine();
        let stats = replay(
            &mut e,
            &feed(),
            &ReplayOptions {
                heartbeat: None,
                drain_horizon: None,
            },
        )
        .unwrap();
        assert_eq!(stats.punctuations, 0);
    }

    #[test]
    fn empty_feed_is_fine() {
        let mut e = engine();
        let stats = replay(&mut e, &[], &ReplayOptions::default()).unwrap();
        assert_eq!(stats.pushed, 0);
    }
}
