//! RECENT-mode corner cases: star elements interacting with FOLLOWING
//! windows, replacement semantics under windows, and chain freshness.

use eslev_core::prelude::*;
use eslev_dsms::prelude::{Duration, Timestamp, Tuple, Value};

fn t(secs: u64, seq: u64) -> Tuple {
    Tuple::new(
        vec![Value::Int(secs as i64)],
        Timestamp::from_secs(secs),
        seq,
    )
}

fn detect(pat: SeqPattern, feed: &[(usize, u64)]) -> Vec<SeqMatch> {
    let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut out = Vec::new();
    for (i, (port, secs)) in feed.iter().enumerate() {
        for o in d.on_tuple(*port, &t(*secs, i as u64)).unwrap() {
            if let DetectorOutput::Match(m) = o {
                out.push(m);
            }
        }
    }
    out
}

/// SEQ(A*, B) OVER [10 s FOLLOWING A] under RECENT: the window starts at
/// the group's first tuple, so a long burst can push its own closure out
/// of the window.
#[test]
fn following_window_anchored_at_star_start() {
    let pat = SeqPattern::new(
        vec![Element::star(0), Element::new(1)],
        Some(EventWindow::following(Duration::from_secs(10), 0)),
        PairingMode::Recent,
    )
    .unwrap();
    // Burst starting at t=0; B at t=9 is in-window.
    let m = detect(pat.clone(), &[(0, 0), (0, 4), (0, 8), (1, 9)]);
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].binding(0).count(), 3);
    // Same burst but B at t=11: outside 10 s of the group start.
    let m = detect(pat, &[(0, 0), (0, 4), (0, 8), (1, 11)]);
    assert!(m.is_empty());
}

/// Replacement under a PRECEDING window: a stale A chain is replaced by
/// a fresh one, and only the fresh one completes.
#[test]
fn replacement_respects_window() {
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::new(1)],
        Some(EventWindow::preceding(Duration::from_secs(5), 1)),
        PairingMode::Recent,
    )
    .unwrap();
    let m = detect(
        pat,
        &[
            (0, 0),  // stale A
            (0, 20), // fresh A replaces it
            (1, 23), // B: within 5 s of fresh A only
        ],
    );
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].binding(0).first().ts(), Timestamp::from_secs(20));
}

/// A RECENT chain is frozen per completion: later replacements of early
/// positions never rewrite history, even with stars in the middle.
#[test]
fn star_chain_freshness() {
    // SEQ(A, B*, C).
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::star(1), Element::new(2)],
        None,
        PairingMode::Recent,
    )
    .unwrap();
    let m = detect(
        pat,
        &[
            (0, 1), // A@1
            (1, 2), // B@2
            (1, 3), // B@3
            (0, 4), // A@4 replaces latest[0] — but B-group keeps parent A@1
            (2, 5), // C closes: chain must be (A@1, B@2..3, C@5)
        ],
    );
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].binding(0).first().ts(), Timestamp::from_secs(1));
    assert_eq!(m[0].binding(1).count(), 2);
    assert_eq!(m[0].binding(2).first().ts(), Timestamp::from_secs(5));
}

/// After a gap-broken star group restarts under RECENT, the new group
/// chains against the *current* most recent predecessor.
#[test]
fn star_restart_uses_current_parent() {
    let pat = SeqPattern::new(
        vec![
            Element::new(0),
            Element::star(1).with_star_gap(Duration::from_secs(2)),
            Element::new(2),
        ],
        None,
        PairingMode::Recent,
    )
    .unwrap();
    let m = detect(
        pat,
        &[
            (0, 1),  // A@1
            (1, 2),  // B@2 (group 1)
            (0, 10), // fresh A@10
            (1, 11), // B@11: gap from B@2 is 9 s > 2 s → new group, parent A@10
            (2, 12), // C closes with the fresh chain
        ],
    );
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].binding(0).first().ts(), Timestamp::from_secs(10));
    assert_eq!(m[0].binding(1).count(), 1);
}
