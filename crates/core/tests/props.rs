//! Property-based tests for the temporal-operator invariants.

use eslev_core::prelude::*;
use eslev_dsms::prelude::{Duration, Timestamp, Tuple, Value};
use proptest::prelude::*;

/// A random joint history over `ports` streams: increasing timestamps
/// with occasional ties, port chosen per entry.
fn history(ports: usize, len: usize) -> impl Strategy<Value = Vec<(usize, Tuple)>> {
    proptest::collection::vec((0..ports, 0u64..4), 0..len).prop_map(|steps| {
        let mut out = Vec::with_capacity(steps.len());
        let mut ts = 0u64;
        for (i, (port, gap)) in steps.into_iter().enumerate() {
            ts += gap; // gap 0 => timestamp tie, broken by seq
            out.push((
                port,
                Tuple::new(
                    vec![Value::Int(ts as i64)],
                    Timestamp::from_secs(ts),
                    i as u64,
                ),
            ));
        }
        out
    })
}

fn pattern(ports: usize, mode: PairingMode, star_first: bool) -> SeqPattern {
    let mut elements: Vec<Element> = (0..ports).map(Element::new).collect();
    if star_first {
        elements[0] = Element::star(0);
    }
    SeqPattern::new(elements, None, mode).unwrap()
}

fn run_detector(pat: SeqPattern, feed: &[(usize, Tuple)]) -> (Vec<SeqMatch>, usize) {
    let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut matches = Vec::new();
    for (port, t) in feed {
        for o in d.on_tuple(*port, t).unwrap() {
            if let DetectorOutput::Match(m) = o {
                matches.push(m);
            }
        }
    }
    let retained = d.retained();
    (matches, retained)
}

proptest! {
    /// Every match's tuples are strictly increasing in (ts, seq) and the
    /// bindings appear in pattern order, in every mode.
    #[test]
    fn matches_are_strictly_ordered(
        feed in history(3, 60),
        mode_idx in 0usize..4,
        star in any::<bool>(),
    ) {
        let mode = PairingMode::ALL[mode_idx];
        let (matches, _) = run_detector(pattern(3, mode, star), &feed);
        for m in &matches {
            let tuples: Vec<&Tuple> = m
                .bindings
                .iter()
                .flat_map(|b| b.tuples().iter())
                .collect();
            for w in tuples.windows(2) {
                prop_assert!(w[1].after(w[0]), "match not strictly ordered: {m}");
            }
            prop_assert_eq!(m.bindings.len(), 3);
        }
    }

    /// RECENT and CONSECUTIVE retain O(pattern) history; CONSECUTIVE at
    /// most one partial run.
    #[test]
    fn bounded_history_modes(feed in history(3, 120)) {
        let (_, recent) = run_detector(pattern(3, PairingMode::Recent, false), &feed);
        prop_assert!(recent <= 6, "RECENT retained {recent}");
        let (_, consec) = run_detector(pattern(3, PairingMode::Consecutive, false), &feed);
        prop_assert!(consec <= 2, "CONSECUTIVE retained {consec}");
    }

    /// CHRONICLE: every tuple participates in at most one match
    /// (identified by its global sequence number).
    #[test]
    fn chronicle_single_participation(feed in history(3, 80), star in any::<bool>()) {
        let (matches, _) = run_detector(pattern(3, PairingMode::Chronicle, star), &feed);
        let mut seen = std::collections::HashSet::new();
        for m in &matches {
            for b in &m.bindings {
                for t in b.tuples() {
                    prop_assert!(seen.insert(t.seq()), "tuple reused across matches");
                }
            }
        }
    }

    /// RECENT and CHRONICLE each produce a subset of UNRESTRICTED's
    /// matches (same pattern, same feed) for star-free patterns.
    #[test]
    fn restricted_modes_are_subsets(feed in history(2, 40)) {
        let key = |m: &SeqMatch| -> Vec<u64> {
            m.bindings.iter().flat_map(|b| b.tuples().iter().map(|t| t.seq())).collect()
        };
        let (unr, _) = run_detector(pattern(2, PairingMode::Unrestricted, false), &feed);
        let all: std::collections::HashSet<Vec<u64>> = unr.iter().map(key).collect();
        for mode in [PairingMode::Recent, PairingMode::Chronicle, PairingMode::Consecutive] {
            let (ms, _) = run_detector(pattern(2, mode, false), &feed);
            for m in &ms {
                prop_assert!(all.contains(&key(m)), "{mode} emitted a non-UNRESTRICTED match");
            }
        }
    }

    /// CONSECUTIVE matches are adjacent on the joint history: the match's
    /// tuples are exactly a contiguous slice of the feed.
    #[test]
    fn consecutive_matches_are_contiguous(feed in history(3, 60)) {
        let (matches, _) = run_detector(pattern(3, PairingMode::Consecutive, false), &feed);
        let seqs: Vec<u64> = feed.iter().map(|(_, t)| t.seq()).collect();
        for m in &matches {
            let used: Vec<u64> = m
                .bindings
                .iter()
                .flat_map(|b| b.tuples().iter().map(|t| t.seq()))
                .collect();
            let start = seqs.iter().position(|s| *s == used[0]).unwrap();
            prop_assert_eq!(&seqs[start..start + used.len()], &used[..]);
        }
    }

    /// Windowed detection never emits a match violating its window, and
    /// punctuation purges everything once the stream goes quiet.
    #[test]
    fn windows_are_respected(feed in history(2, 60), dur_secs in 1u64..20) {
        let dur = Duration::from_secs(dur_secs);
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::preceding(dur, 1)),
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
        for (port, t) in &feed {
            for o in d.on_tuple(*port, t).unwrap() {
                if let DetectorOutput::Match(m) = o {
                    prop_assert!(m.span() <= dur, "match span {} > window {dur}", m.span());
                }
            }
        }
        let horizon = feed.last().map(|(_, t)| t.ts()).unwrap_or(Timestamp::ZERO)
            + dur + Duration::from_secs(1);
        d.on_punctuation(horizon).unwrap();
        prop_assert_eq!(d.retained(), 0);
    }

    /// Star groups obey their gap constraint and longest-match: within a
    /// group consecutive gaps are ≤ the bound, and the tuple right before
    /// the group (same port) is either absent or gap-violating.
    #[test]
    fn star_longest_match(feed in history(2, 60), gap_secs in 1u64..5) {
        let gap = Duration::from_secs(gap_secs);
        let pat = SeqPattern::new(
            vec![Element::star(0).with_star_gap(gap), Element::new(1)],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let (matches, _) = run_detector(pat, &feed);
        for m in &matches {
            let group = m.binding(0).tuples();
            for w in group.windows(2) {
                prop_assert!(w[1].ts() - w[0].ts() <= gap);
            }
            // Longest match: the port-0 tuple immediately before the
            // group start (if any, and unconsumed) must be gap-violating.
            let first = group.first().unwrap();
            let prior = feed
                .iter()
                .filter(|(p, t)| *p == 0 && t.seq() < first.seq())
                .map(|(_, t)| t)
                .next_back();
            if let Some(p) = prior {
                // Either consumed by an earlier match or out of gap.
                let consumed_earlier = matches
                    .iter()
                    .take_while(|mm| mm.ts() <= m.ts())
                    .any(|mm| mm.binding(0).tuples().iter().any(|t| t.seq() == p.seq()));
                prop_assert!(
                    consumed_earlier || first.ts() - p.ts() > gap,
                    "group is not maximal"
                );
            }
        }
    }

    /// EXCEPTION_SEQ partitions arrivals: per partition-free feed, each
    /// tuple causes at most one exception, and completion+exception
    /// levels are within bounds.
    #[test]
    fn exception_levels_bounded(feed in history(3, 60)) {
        let pat = pattern(3, PairingMode::Consecutive, false);
        let mut d = Detector::new(DetectorConfig::exception(pat)).unwrap();
        for (port, t) in &feed {
            let outs = d.on_tuple(*port, t).unwrap();
            let exceptions: Vec<_> = outs.iter().filter(|o| o.as_exception().is_some()).collect();
            prop_assert!(exceptions.len() <= 1, "multiple exceptions for one tuple");
            for o in outs {
                if let DetectorOutput::Exception(e) = o {
                    prop_assert!(e.level >= 1 && e.level <= 3);
                    prop_assert_eq!(e.partial.len(), e.completion_level());
                }
            }
        }
    }
}

/// Brute-force reference for star-free UNRESTRICTED SEQ: every strictly
/// increasing index combination whose ports match the pattern.
fn reference_unrestricted(feed: &[(usize, Tuple)], ports: usize) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let n = feed.len();
    fn rec(
        feed: &[(usize, Tuple)],
        ports: usize,
        depth: usize,
        start: usize,
        acc: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
    ) {
        if depth == ports {
            out.push(acc.clone());
            return;
        }
        for i in start..feed.len() {
            if feed[i].0 == depth {
                acc.push(feed[i].1.seq());
                rec(feed, ports, depth + 1, i + 1, acc, out);
                acc.pop();
            }
        }
    }
    let mut acc = Vec::new();
    rec(feed, ports, 0, 0, &mut acc, &mut out);
    let _ = n;
    out
}

proptest! {
    /// The UNRESTRICTED engine agrees exactly with the brute-force
    /// enumeration over the full history (small feeds).
    #[test]
    fn unrestricted_matches_brute_force(feed in history(3, 18)) {
        let (matches, _) = run_detector(pattern(3, PairingMode::Unrestricted, false), &feed);
        let mut got: Vec<Vec<u64>> = matches
            .iter()
            .map(|m| m.bindings.iter().map(|b| b.first().seq()).collect())
            .collect();
        got.sort();
        let mut want = reference_unrestricted(&feed, 3);
        want.sort();
        prop_assert_eq!(got, want);
    }
}
