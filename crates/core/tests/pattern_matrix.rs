//! Matrix tests across pattern shapes, modes and windows — including the
//! §3.1.2 multi-star pattern `SEQ(A*, B, C*, D)` that footnote 4's
//! multi-return rule excludes but plain detection must support.

use eslev_core::prelude::*;
use eslev_dsms::expr::Expr;
use eslev_dsms::prelude::{Duration, Timestamp, Tuple, Value};

fn t(secs: u64, seq: u64) -> Tuple {
    Tuple::new(
        vec![Value::Int(secs as i64)],
        Timestamp::from_secs(secs),
        seq,
    )
}

fn run(pat: SeqPattern, feed: &[(usize, u64)]) -> (Vec<SeqMatch>, usize) {
    let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut out = Vec::new();
    for (i, (port, secs)) in feed.iter().enumerate() {
        for o in d.on_tuple(*port, &t(*secs, i as u64)).unwrap() {
            if let DetectorOutput::Match(m) = o {
                out.push(m);
            }
        }
    }
    let retained = d.retained();
    (out, retained)
}

/// §3.1.2: "SEQ(A*, B, C*, D) says that the operator returns true if some
/// A tuples are followed by exactly one B tuple, and followed by some C
/// tuples, and finally followed by one D tuple."
#[test]
fn two_star_pattern_all_modes() {
    let feed: Vec<(usize, u64)> = vec![
        (0, 1), // A
        (0, 2), // A
        (1, 3), // B
        (2, 4), // C
        (2, 5), // C
        (2, 6), // C
        (3, 7), // D
    ];
    for mode in [
        PairingMode::Unrestricted,
        PairingMode::Chronicle,
        PairingMode::Consecutive,
    ] {
        let pat = SeqPattern::new(
            vec![
                Element::star(0),
                Element::new(1),
                Element::star(2),
                Element::new(3),
            ],
            None,
            mode,
        )
        .unwrap();
        let (matches, _) = run(pat, &feed);
        assert_eq!(matches.len(), 1, "{mode}");
        let m = &matches[0];
        assert_eq!(m.binding(0).count(), 2, "{mode}: A* group");
        assert_eq!(m.binding(1).count(), 1, "{mode}: exactly one B");
        assert_eq!(m.binding(2).count(), 3, "{mode}: C* group");
        assert_eq!(m.binding(3).count(), 1, "{mode}: one D");
    }
}

/// The same pattern under RECENT: groups accumulate on the latest chain.
#[test]
fn two_star_pattern_recent() {
    let pat = SeqPattern::new(
        vec![
            Element::star(0),
            Element::new(1),
            Element::star(2),
            Element::new(3),
        ],
        None,
        PairingMode::Recent,
    )
    .unwrap();
    let feed: Vec<(usize, u64)> = vec![(0, 1), (1, 2), (2, 3), (2, 4), (3, 5)];
    let (matches, retained) = run(pat, &feed);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].binding(2).count(), 2);
    assert!(retained <= 10);
}

/// A star that never gets its closing element emits nothing (one-or-more
/// but not standalone), in every mode.
#[test]
fn unclosed_star_never_fires() {
    for mode in PairingMode::ALL {
        let pat = SeqPattern::new(vec![Element::star(0), Element::new(1)], None, mode).unwrap();
        let feed: Vec<(usize, u64)> = (1..20).map(|i| (0usize, i)).collect();
        let (matches, _) = run(pat, &feed);
        assert!(matches.is_empty(), "{mode}");
    }
}

/// Windows combined with partitioning: per-tag QC detection where slow
/// products fall out of the 30 s window.
#[test]
fn window_and_partition_interact() {
    let pat = SeqPattern::new(
        (0..3).map(Element::new).collect(),
        Some(EventWindow::preceding(Duration::from_secs(30), 2)),
        PairingMode::Recent,
    )
    .unwrap();
    let cfg = DetectorConfig::seq(pat).with_partition(vec![Expr::col(0); 3]);
    let mut d = Detector::new(cfg).unwrap();
    let reading = |tag: &str, secs: u64, seq: u64| {
        Tuple::new(vec![Value::str(tag)], Timestamp::from_secs(secs), seq)
    };
    let mut matches = 0;
    // fast: 0 → 10 → 20 (within 30 s); slow: 0 → 10 → 50 (outside).
    let feed = [
        ("fast", 0usize, 0u64),
        ("slow", 0, 1),
        ("fast", 1, 10),
        ("slow", 1, 10),
        ("fast", 2, 20),
        ("slow", 2, 50),
    ];
    for (i, (tag, port, secs)) in feed.iter().enumerate() {
        matches += d
            .on_tuple(*port, &reading(tag, *secs, i as u64))
            .unwrap()
            .iter()
            .filter(|o| o.as_match().is_some())
            .count();
    }
    assert_eq!(matches, 1, "only the fast product completes in-window");
}

/// FOLLOWING window anchored mid-pattern (the §3.1.3 note that the
/// anchor "can not be specified using an equivalent PRECEDING
/// construct"): SEQ(A, B, C) OVER [10 s FOLLOWING B].
#[test]
fn following_window_mid_anchor() {
    let pat = SeqPattern::new(
        (0..3).map(Element::new).collect(),
        Some(EventWindow::following(Duration::from_secs(10), 1)),
        PairingMode::Recent,
    )
    .unwrap();
    // A may be arbitrarily old; only B→C is bounded.
    let ok: Vec<(usize, u64)> = vec![(0, 1), (1, 100), (2, 109)];
    let (m, _) = run(pat.clone(), &ok);
    assert_eq!(m.len(), 1, "old A is fine; B→C within 10 s");
    let late: Vec<(usize, u64)> = vec![(0, 1), (1, 100), (2, 111)];
    let (m, _) = run(pat, &late);
    assert!(m.is_empty(), "C more than 10 s after B violates the window");
}

/// Punctuation-driven purge across every mode: after quiescence beyond
/// the window, no state survives.
#[test]
fn quiescent_purge_matrix() {
    for mode in PairingMode::ALL {
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            Some(EventWindow::preceding(Duration::from_secs(10), 2)),
            mode,
        )
        .unwrap();
        let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
        d.on_tuple(0, &t(0, 0)).unwrap();
        d.on_tuple(1, &t(1, 1)).unwrap();
        d.on_punctuation(Timestamp::from_secs(100)).unwrap();
        assert_eq!(d.retained(), 0, "{mode}");
        assert_eq!(d.partitions(), 0, "{mode}");
    }
}

/// Element predicates combine with modes: only hot readings participate.
#[test]
fn element_predicates_filter_participants() {
    use eslev_dsms::expr::BinOp;
    let hot = Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(100i64));
    let pat = SeqPattern::new(
        vec![Element::star(0).with_predicate(hot), Element::new(1)],
        None,
        PairingMode::Consecutive,
    )
    .unwrap();
    let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let v = |val: i64, secs: u64, seq: u64| {
        Tuple::new(vec![Value::Int(val)], Timestamp::from_secs(secs), seq)
    };
    // Cold reading on port 0 breaks the consecutive run.
    d.on_tuple(0, &v(150, 1, 0)).unwrap();
    d.on_tuple(0, &v(50, 2, 1)).unwrap(); // cold: breaks
    d.on_tuple(0, &v(120, 3, 2)).unwrap();
    d.on_tuple(0, &v(130, 4, 3)).unwrap();
    let out = d.on_tuple(1, &v(0, 5, 4)).unwrap();
    let m = out[0].as_match().unwrap();
    assert_eq!(m.binding(0).count(), 2, "only the post-break hot run");
}

/// Timestamp ties (same second, different arrival) stay deterministic:
/// the joint order is (ts, seq).
#[test]
fn simultaneous_readings_are_ordered_by_arrival() {
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::new(1)],
        None,
        PairingMode::Chronicle,
    )
    .unwrap();
    let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
    // B arrives first at t=5, then A at t=5: A cannot precede B.
    d.on_tuple(1, &t(5, 0)).unwrap();
    let out = d.on_tuple(0, &t(5, 1)).unwrap();
    assert!(out.is_empty());
    // Next B (later arrival) pairs with that A.
    let out = d.on_tuple(1, &t(5, 2)).unwrap();
    assert_eq!(out.len(), 1);
}
