//! Adapter that plugs a [`Detector`] into the DSMS engine as a query
//! operator, so `SEQ`/`EXCEPTION_SEQ` predicates execute inside ordinary
//! continuous queries (the whole point of the paper: one system for both
//! SQL stream processing and temporal events).
//!
//! The projection closure turns each detector output into zero or more
//! output tuples — this is where the planner realizes the SELECT list,
//! including star aggregates (`FIRST`, `LAST`, `COUNT`) and the
//! multi-return expansion of footnote 4 (one row per star participant).

use crate::binding::DetectorOutput;
use crate::detector::Detector;
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::Result;
use eslev_dsms::key::KeyCodec;
use eslev_dsms::obs::Histogram;
use eslev_dsms::ops::{OpReport, Operator};
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// 1-in-64 wall-clock sampling, matching the engine and `Chain` stages.
const WALL_SAMPLE_MASK: u64 = 63;

/// Maps detector outputs to result rows.
pub type OutputProjection = Box<dyn Fn(&DetectorOutput) -> Result<Vec<Tuple>> + Send>;

/// A detector wrapped as a DSMS operator.
pub struct DetectorOp {
    detector: Detector,
    project: OutputProjection,
    tuples_in: u64,
    tuples_out: u64,
    batches: u64,
    wall: Histogram,
}

impl DetectorOp {
    /// Wrap `detector`; `project` renders each output.
    pub fn new(detector: Detector, project: OutputProjection) -> DetectorOp {
        DetectorOp {
            detector,
            project,
            tuples_in: 0,
            tuples_out: 0,
            batches: 0,
            wall: Histogram::new(),
        }
    }

    /// Shared access to the wrapped detector (stats).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    fn render(&self, outs: Vec<DetectorOutput>, sink: &mut Vec<Tuple>) -> Result<()> {
        for o in outs {
            sink.extend((self.project)(&o)?);
        }
        Ok(())
    }
}

impl Operator for DetectorOp {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        self.process_batch(port, std::slice::from_ref(t), out)
    }

    fn process_batch(&mut self, port: usize, batch: &[Tuple], out: &mut Vec<Tuple>) -> Result<()> {
        // Same sampling rule as `Chain` stages: sample when the batch
        // starts on or crosses a 1-in-64 tuple ordinal, so the rate is
        // independent of batch size.
        let before = out.len();
        let len = batch.len() as u64;
        let sampled = self.tuples_in & WALL_SAMPLE_MASK == 0
            || (self.tuples_in >> 6) != ((self.tuples_in + len) >> 6);
        self.tuples_in += len;
        self.batches += 1;
        let started = sampled.then(std::time::Instant::now);
        for t in batch {
            let outs = self.detector.on_tuple(port, t)?;
            self.render(outs, out)?;
        }
        if let Some(s) = started {
            self.wall.record_duration(s.elapsed());
        }
        self.tuples_out += (out.len() - before) as u64;
        Ok(())
    }

    fn on_punctuation(&mut self, ts: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        let before = out.len();
        let outs = self.detector.on_punctuation(ts)?;
        self.render(outs, out)?;
        self.tuples_out += (out.len() - before) as u64;
        Ok(())
    }

    fn num_ports(&self) -> usize {
        self.detector.num_ports()
    }

    fn name(&self) -> &str {
        "seq-detector"
    }

    fn bind_interner(&mut self, codec: &KeyCodec) {
        self.detector.bind_codec(codec);
    }

    fn state_key_bytes(&self) -> usize {
        self.detector.state_key_bytes()
    }

    fn retained(&self) -> usize {
        self.detector.retained()
    }

    fn report(&self) -> OpReport {
        let d = &self.detector;
        let mut r = OpReport::leaf(self.name(), d.retained());
        r.tuples_in = self.tuples_in;
        r.tuples_out = self.tuples_out;
        r.batches = self.batches;
        r.state_bytes = d.state_key_bytes();
        r.wall_ns = Some(self.wall.snapshot());
        r.counters = vec![
            ("matches".to_string(), d.matches_emitted()),
            ("exceptions".to_string(), d.exceptions_emitted()),
            ("partitions".to_string(), d.partitions() as u64),
            ("partitions_created".to_string(), d.partitions_created()),
            ("prunes".to_string(), d.prunes()),
        ];
        r
    }

    fn save_state(&self) -> Result<StateNode> {
        self.detector.save_state()
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.detector.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, SeqPattern};
    use eslev_dsms::prelude::*;

    /// End-to-end: Example 7's containment query inside the engine —
    /// products and cases as streams, match rows into a collector.
    #[test]
    fn containment_inside_engine() {
        let mut engine = Engine::new();
        engine.create_stream(Schema::readings("r1")).unwrap();
        engine.create_stream(Schema::readings("r2")).unwrap();

        let pattern = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let detector = Detector::new(DetectorConfig::seq(pattern)).unwrap();
        // SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
        let op = DetectorOp::new(
            detector,
            Box::new(|o| {
                let m = o.as_match().expect("SEQ emits matches only");
                let star = m.binding(0);
                let case = m.binding(1).first();
                Ok(vec![Tuple::new(
                    vec![
                        Value::Ts(star.first().ts()),
                        Value::Int(star.count() as i64),
                        case.value(1).clone(),
                        Value::Ts(case.ts()),
                    ],
                    m.ts(),
                    case.seq(),
                )])
            }),
        );
        let (_, out) = engine
            .register_collected("containment", vec!["r1", "r2"], Box::new(op))
            .unwrap();

        let reading = |ms: u64, tag: &str| {
            vec![
                Value::str("rdr"),
                Value::str(tag),
                Value::Ts(Timestamp::from_millis(ms)),
            ]
        };
        for (ms, tag) in [(0u64, "p1"), (400, "p2"), (800, "p3")] {
            engine.push("r1", reading(ms, tag)).unwrap();
        }
        engine.push("r2", reading(2000, "case9")).unwrap();

        let rows = out.take();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value(0), &Value::Ts(Timestamp::ZERO));
        assert_eq!(rows[0].value(1), &Value::Int(3));
        assert_eq!(rows[0].value(2), &Value::str("case9"));
    }

    /// Footnote 4: one output row per star participant.
    #[test]
    fn multi_return_expansion() {
        let pattern = SeqPattern::new(
            vec![Element::star(0), Element::new(1)],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let detector = Detector::new(DetectorConfig::seq(pattern)).unwrap();
        let mut op = DetectorOp::new(
            detector,
            Box::new(|o| {
                let m = o.as_match().expect("match");
                let case = m.binding(1).first().clone();
                Ok(m.binding(0)
                    .tuples()
                    .iter()
                    .map(|p| {
                        Tuple::new(
                            vec![p.value(1).clone(), case.value(1).clone()],
                            m.ts(),
                            p.seq(),
                        )
                    })
                    .collect())
            }),
        );
        let mut out = Vec::new();
        let reading = |secs: u64, tag: &str, seq: u64| {
            Tuple::new(
                vec![
                    Value::str("rdr"),
                    Value::str(tag),
                    Value::Ts(Timestamp::from_secs(secs)),
                ],
                Timestamp::from_secs(secs),
                seq,
            )
        };
        op.on_tuple(0, &reading(0, "p1", 0), &mut out).unwrap();
        op.on_tuple(0, &reading(1, "p2", 1), &mut out).unwrap();
        op.on_tuple(1, &reading(2, "case", 2), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(0), &Value::str("p1"));
        assert_eq!(out[1].value(0), &Value::str("p2"));
        assert_eq!(out[0].value(1), &Value::str("case"));
        // Runtime stats: 3 tuples in (one batch each), 2 rows out, and
        // the first invocation is always wall-sampled.
        let r = op.report();
        assert_eq!(r.tuples_in, 3);
        assert_eq!(r.tuples_out, 2);
        assert_eq!(r.batches, 3);
        assert!(r.wall_ns.as_ref().unwrap().count >= 1);
    }
}
